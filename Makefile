PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint obs-check docs-check bench

verify: lint obs-check
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) tools/lint.py

obs-check:
	$(PYTHON) -m repro.obs.selfcheck

docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_examples.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_bench_scaling.py benchmarks/test_bench_churn.py
