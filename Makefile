PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify docs-check bench

verify:
	$(PYTHON) -m pytest -x -q

docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_examples.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_bench_scaling.py benchmarks/test_bench_churn.py
