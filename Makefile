PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint obs-check serve-check cli-check docs-check bench bench-quick

verify: lint obs-check serve-check cli-check
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) tools/lint.py

obs-check:
	$(PYTHON) -m repro.obs.selfcheck

# The HTTP tier's end-to-end smoke: boots a server on an ephemeral
# port and drives query -> mutate -> re-query -> paginate, admission
# overflow, migration, and the dead-letter/audit path.
serve-check:
	$(PYTHON) -m pytest -x -q tests/test_serve_http.py

# The CLI battery: differential piped-vs-in-process equivalence, the
# NDJSON codec fuzz suite, and the golden record fixtures.
cli-check:
	$(PYTHON) -m pytest -x -q tests/test_cli_pipeline.py tests/test_cli_codec.py

docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_examples.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_bench_scaling.py benchmarks/test_bench_churn.py benchmarks/test_bench_cli.py

# The 402-tier engine comparison only: skips the 1000-service serving
# tiers and the 10k/30k big tiers (BENCH_FULL=1 on `make bench` adds 30k).
bench-quick:
	BENCH_QUICK=1 $(PYTHON) -m pytest -q benchmarks/test_bench_scaling.py
