PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint docs-check bench

verify: lint
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) tools/lint.py

docs-check:
	$(PYTHON) -m pytest -q tests/test_docs_examples.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_bench_scaling.py benchmarks/test_bench_churn.py
