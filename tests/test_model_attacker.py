"""Unit tests for attacker profiles."""

from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI


class TestBaselineProfile:
    def test_baseline_satisfies_phone_and_sms(self):
        innate = AttackerProfile.baseline().innately_satisfiable()
        assert CF.CELLPHONE_NUMBER in innate
        assert CF.SMS_CODE in innate

    def test_baseline_cannot_social_engineer_innately(self):
        """Customer service needs a dossier, not a standing capability."""
        innate = AttackerProfile.baseline().innately_satisfiable()
        assert CF.CUSTOMER_SERVICE not in innate

    def test_baseline_can_intercept(self):
        assert AttackerProfile.baseline().can_intercept_sms()


class TestPassiveObserver:
    def test_observer_satisfies_nothing(self):
        assert AttackerProfile.passive_observer().innately_satisfiable() == frozenset()


class TestSMSRequiresPhoneKnowledge:
    def test_interception_without_phone_number_is_useless(self):
        """You cannot filter for a victim whose number you don't know."""
        profile = AttackerProfile(
            capabilities=frozenset({AttackerCapability.SMS_INTERCEPTION}),
            known_info=frozenset(),
        )
        innate = profile.innately_satisfiable()
        assert CF.SMS_CODE not in innate


class TestSEDatabaseProfile:
    def test_se_profile_knows_name_and_address(self):
        innate = AttackerProfile.with_se_database().innately_satisfiable()
        assert CF.REAL_NAME in innate
        assert CF.ADDRESS in innate

    def test_se_profile_has_social_engineering(self):
        profile = AttackerProfile.with_se_database()
        assert AttackerCapability.SOCIAL_ENGINEERING in profile.capabilities


class TestProfileTransforms:
    def test_with_known_info_extends(self):
        profile = AttackerProfile.baseline().with_known_info(
            [PI.CITIZEN_ID]
        )
        assert CF.CITIZEN_ID in profile.innately_satisfiable()

    def test_without_capability_removes(self):
        profile = AttackerProfile.baseline().without_capability(
            AttackerCapability.SMS_INTERCEPTION
        )
        assert not profile.can_intercept_sms()
        assert CF.SMS_CODE not in profile.innately_satisfiable()

    def test_transforms_do_not_mutate_original(self):
        base = AttackerProfile.baseline()
        base.without_capability(AttackerCapability.SMS_INTERCEPTION)
        assert base.can_intercept_sms()
