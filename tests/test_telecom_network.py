"""Unit tests for the GSM network: cells, phones, delivery, radiation."""

import pytest

from repro.telecom.cipher import CipherSuite
from repro.telecom.events import PagingEvent, SMSBurstEvent, decode_pdu, encode_pdu
from repro.telecom.network import GSMNetwork, RadioTech
from repro.telecom.numbers import SubscriberDirectory
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence


@pytest.fixture()
def network():
    net = GSMNetwork(clock=Clock(), seeds=SeedSequence(5))
    net.add_cell("cell-A", arfcns=(512, 514), cipher=CipherSuite.A5_0)
    net.add_cell("cell-B", arfcns=(600,), cipher=CipherSuite.A5_1)
    return net


class TestTopology:
    def test_duplicate_cell_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_cell("cell-A")

    def test_cell_without_arfcns_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_cell("cell-X", arfcns=())

    def test_duplicate_arfcns_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_cell("cell-X", arfcns=(1, 1))

    def test_provision_into_unknown_cell_rejected(self, network):
        with pytest.raises(KeyError):
            network.provision_phone("138", "nowhere")

    def test_double_provision_rejected(self, network):
        network.provision_phone("138", "cell-A")
        with pytest.raises(ValueError):
            network.provision_phone("138", "cell-A")

    def test_move_phone(self, network):
        network.provision_phone("138", "cell-A")
        network.move_phone("138", "cell-B")
        assert network.phone("138").cell_id == "cell-B"
        assert network.phones_in_cell("cell-B")[0].msisdn == "138"


class TestSubscriberDirectory:
    def test_provision_is_idempotent(self):
        directory = SubscriberDirectory()
        a = directory.provision("138")
        b = directory.provision("138")
        assert a is b
        assert directory.subscriber_count == 1

    def test_imsi_lookup(self):
        directory = SubscriberDirectory()
        record = directory.provision("138")
        assert directory.by_imsi(record.imsi).msisdn == "138"

    def test_tmsi_rotation(self):
        directory = SubscriberDirectory()
        record = directory.provision("138")
        old = record.tmsi
        new = directory.rotate_tmsi("138")
        assert new != old
        assert directory.by_msisdn("138").tmsi == new


class TestJammingAndTech:
    def test_lte_phone_downgrades_under_jamming(self, network):
        network.provision_phone("138", "cell-A", preferred_tech=RadioTech.LTE)
        assert network.effective_tech("138") is RadioTech.LTE
        network.set_cell_jammed("cell-A", True)
        assert network.effective_tech("138") is RadioTech.GSM
        network.set_cell_jammed("cell-A", False)
        assert network.effective_tech("138") is RadioTech.LTE

    def test_gsm_incapable_phone_stays_lte(self, network):
        network.provision_phone(
            "138", "cell-A", preferred_tech=RadioTech.LTE, gsm_capable=False
        )
        network.set_cell_jammed("cell-A", True)
        assert network.effective_tech("138") is RadioTech.LTE

    def test_jamming_unknown_cell_rejected(self, network):
        with pytest.raises(KeyError):
            network.set_cell_jammed("nowhere", True)


class TestDelivery:
    def test_gsm_delivery_radiates_paging_and_burst(self, network):
        network.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        events = []
        network.bus.subscribe(events.append)
        network.deliver_sms("138", "your code is 1234", sender="svc")
        kinds = [type(e) for e in events]
        assert kinds == [PagingEvent, SMSBurstEvent]
        burst = events[1]
        assert burst.cell_id == "cell-A"
        assert burst.arfcn in (512, 514)

    def test_a50_burst_is_plaintext(self, network):
        network.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        events = []
        network.bus.subscribe(events.append)
        network.deliver_sms("138", "hello", sender="svc")
        burst = events[1]
        assert decode_pdu(burst.ciphertext) == ("svc", "hello")

    def test_a51_burst_is_encrypted(self, network):
        network.provision_phone("139", "cell-B", preferred_tech=RadioTech.GSM)
        events = []
        network.bus.subscribe(events.append)
        network.deliver_sms("139", "hello", sender="svc")
        burst = events[1]
        with pytest.raises(ValueError):
            decode_pdu(burst.ciphertext)

    def test_lte_delivery_does_not_radiate_gsm(self, network):
        network.provision_phone("138", "cell-A", preferred_tech=RadioTech.LTE)
        events = []
        network.bus.subscribe(events.append)
        network.deliver_sms("138", "hello", sender="svc")
        assert events == []

    def test_unprovisioned_number_is_undeliverable(self, network):
        network.deliver_sms("000", "hello", sender="svc")
        assert network.undeliverable == (("000", "hello"),)

    def test_interceptor_swallows_delivery(self, network):
        network.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        stolen = []
        network.set_interceptor("138", lambda sender, text: stolen.append(text))
        events = []
        network.bus.subscribe(events.append)
        network.deliver_sms("138", "secret", sender="svc")
        assert stolen == ["secret"]
        assert events == []  # nothing radiates; the victim sees nothing

    def test_clear_interceptor_restores_delivery(self, network):
        network.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        network.set_interceptor("138", lambda s, t: None)
        network.clear_interceptor("138")
        assert not network.is_intercepted("138")
        events = []
        network.bus.subscribe(events.append)
        network.deliver_sms("138", "x", sender="svc")
        assert len(events) == 2


class TestPDU:
    def test_roundtrip(self):
        sender, text = "svc", "your code is 123456"
        assert decode_pdu(encode_pdu(sender, text)) == (sender, text)

    def test_text_with_separators_survives(self):
        sender, text = "svc", "a|b|c"
        assert decode_pdu(encode_pdu(sender, text)) == (sender, text)

    def test_invalid_framing_rejected(self):
        with pytest.raises(ValueError):
            decode_pdu(b"garbage")
