"""Differential equivalence suite for the ``repro`` CLI.

Pipelines run as **real subprocess pipes** (``bash -o pipefail``), and
their NDJSON output is asserted bit-for-bit equal to an in-process
:class:`~repro.api.service.AnalysisService` answering the same batch
through the same record-emission layer -- the canonical encoding in
:mod:`repro.cli.records` makes "same records" the same bytes.

The suite also pins the process-level contracts: ``... | head`` exits 0
with no traceback, malformed input produces the documented ``error``
record and exit 65, errors propagate through downstream stages with
their original exit code, and a ``--url`` pipeline against a live
``repro.serve`` tier emits byte-identical result records.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.service import AnalysisService
from repro.catalog import CatalogBuilder, CatalogSpec
from repro.cli.records import dump_record
from repro.cli.session_io import (
    meta_record,
    mutation_record,
    profile_records,
    receipt_record,
)
from repro.cli.stream_query import QuerySpec, records_for
from repro.dynamic.churn import MutationStream
from repro.utils.serialization import mutation_from_dict, mutation_to_dict

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures"

SERVICES = 25
SEED = 2021


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _pipeline(command: str, stdin: str = "") -> subprocess.CompletedProcess:
    """Run one shell pipeline under ``pipefail`` with the repo on path."""
    return subprocess.run(
        ["bash", "-o", "pipefail", "-c", command],
        input=stdin,
        capture_output=True,
        text=True,
        env=_env(),
        cwd=str(REPO_ROOT),
        timeout=300,
    )


def _repro(*args: str) -> str:
    quoted = " ".join(args)
    return f"{sys.executable} -m repro {quoted}".strip()


def _build_ecosystem(services: int = SERVICES, seed: int = SEED):
    return CatalogBuilder(
        CatalogSpec(total_services=services), seed=seed
    ).build_ecosystem()


def _mutation_docs(count: int, services: int = SERVICES, seed: int = 7):
    """``count`` feasible wire mutation documents for the seed ecosystem.

    Drawn by replaying a churn stream through a scratch service, so each
    document is feasible at the point it applies.
    """
    service = AnalysisService(_build_ecosystem(services))
    stream = MutationStream(seed)
    documents = []
    while len(documents) < count:
        mutation = stream.next_mutation(service.ecosystem)
        service.apply(mutation)
        documents.append(mutation_to_dict(mutation))
    return documents


def _reference_service(mutations=()):
    """The in-process side of the differential: same base, same log.

    Mutations round-trip through the wire codec first --
    ``apply_hardening`` encodes by defense *name*, so both sides must
    consume the decoded spelling for the comparison to be fair.
    """
    service = AnalysisService(_build_ecosystem())
    for document in mutations:
        service.apply(mutation_from_dict(document))
    return service


def _reference_records(service, specs):
    text = []
    for spec in specs:
        for record in records_for(service, spec):
            text.append(dump_record(record))
    return "".join(text)


def _script_file(tmp_path, documents, name="script.ndjson"):
    path = tmp_path / name
    path.write_text(
        "".join(json.dumps(doc) + "\n" for doc in documents),
        encoding="utf-8",
    )
    return path


# ----------------------------------------------------------------------
# Differential equivalence
# ----------------------------------------------------------------------


class TestBuildMatchesInProcess:
    def test_build_emits_meta_then_profile_records_bit_for_bit(self):
        result = _pipeline(_repro("build", "--services", str(SERVICES)))
        assert result.returncode == 0, result.stderr
        expected = [meta_record(services=SERVICES, seed=SEED, version=0)]
        expected.extend(profile_records(_build_ecosystem()))
        assert result.stdout == "".join(
            dump_record(record) for record in expected
        )

    def test_build_round_trips_through_a_downstream_stage(self):
        """A consumer rebuilding from profile records reproduces the
        catalog exactly (names and enumeration order included)."""
        result = _pipeline(
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("query", "--kind", "levels")
        )
        assert result.returncode == 0, result.stderr
        service = _reference_service()
        assert result.stdout == _reference_records(
            service, [QuerySpec(kind="levels")]
        )


class TestPipelineMatchesInProcess:
    def test_three_stage_pipe_equals_in_process_batch(self, tmp_path):
        mutations = _mutation_docs(4)
        script = _script_file(tmp_path, mutations)
        command = (
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("mutate", "--script", str(script))
            + " | "
            + _repro(
                "query",
                "--kind", "couples",
                "--kind", "weak-edges",
                "--kind", "levels",
                "--page-size", "32",
            )
        )
        result = _pipeline(command)
        assert result.returncode == 0, result.stderr

        service = _reference_service(mutations)
        specs = [
            QuerySpec(kind="couples", page_size=32),
            QuerySpec(kind="weak-edges", page_size=32),
            QuerySpec(kind="levels"),
        ]
        assert result.stdout == _reference_records(service, specs)

    def test_mutate_stages_chain_and_forward_the_log(self, tmp_path):
        """Two mutate stages append to one log; the downstream query
        sees the composed session (version = total mutations)."""
        mutations = _mutation_docs(4)
        first = _script_file(tmp_path, mutations[:2], "first.ndjson")
        second = _script_file(tmp_path, mutations[2:], "second.ndjson")
        command = (
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("mutate", "--script", str(first))
            + " | "
            + _repro("mutate", "--script", str(second))
            + " | "
            + _repro("query", "--kind", "measurement")
        )
        result = _pipeline(command)
        assert result.returncode == 0, result.stderr
        service = _reference_service(mutations)
        assert service.version == len(mutations)
        assert result.stdout == _reference_records(
            service, [QuerySpec(kind="measurement")]
        )

    def test_mutate_emits_the_same_receipts_as_the_live_session(
        self, tmp_path
    ):
        mutations = _mutation_docs(3)
        script = _script_file(tmp_path, mutations)
        command = (
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("mutate", "--script", str(script))
        )
        result = _pipeline(command)
        assert result.returncode == 0, result.stderr

        expected = [meta_record(services=SERVICES, seed=SEED, version=0)]
        expected.extend(profile_records(_build_ecosystem()))
        service = AnalysisService(_build_ecosystem())
        for document in mutations:
            receipt = service.apply(mutation_from_dict(document))
            expected.append(mutation_record(document))
            expected.append(receipt_record(document, receipt))
        assert result.stdout == "".join(
            dump_record(record) for record in expected
        )

    def test_closure_query_matches_in_process(self):
        command = (
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro(
                "query",
                "--kind", "closure",
                "--compromised", "alipay",
                "--email-provider", "gmail",
            )
        )
        result = _pipeline(command)
        assert result.returncode == 0, result.stderr
        spec = QuerySpec(
            kind="closure",
            compromised=("alipay",),
            email_provider="gmail",
        )
        assert result.stdout == _reference_records(
            _reference_service(), [spec]
        )


class TestPaginationAcrossMutation:
    def test_cursor_resumes_across_a_midstream_mutation(self, tmp_path):
        """Drain a page, mutate, resume from the watermark token: the
        piped run and the in-process session agree byte for byte."""
        first = _pipeline(
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro(
                "query",
                "--kind", "couples",
                "--page-size", "8",
                "--max-records", "16",
            )
        )
        assert first.returncode == 0, first.stderr
        lines = first.stdout.splitlines()
        trailer = json.loads(lines[-1])
        assert trailer["kind"] == "cursor"
        token = trailer["data"]["next"]
        assert token, "the 25-service couple stream must not fit 16 records"

        mutations = _mutation_docs(2)
        script = _script_file(tmp_path, mutations)
        resumed = _pipeline(
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("mutate", "--script", str(script))
            + " | "
            + _repro(
                "query",
                "--kind", "couples",
                "--page-size", "8",
                "--cursor", token,
            )
        )
        assert resumed.returncode == 0, resumed.stderr

        # In-process: drain the same prefix, apply the same mutations,
        # resume from the same watermark.
        service = _reference_service()
        prefix = _reference_records(
            service,
            [QuerySpec(kind="couples", page_size=8, max_records=16)],
        )
        assert first.stdout == prefix
        for document in mutations:
            service.apply(mutation_from_dict(document))
        continuation = _reference_records(
            service, [QuerySpec(kind="couples", page_size=8, cursor=token)]
        )
        assert resumed.stdout == continuation

        # The resumed stream continues, never rewinds: no couple record
        # is emitted by both halves.
        def couples(text):
            return {
                line
                for line in text.splitlines()
                if json.loads(line)["kind"] == "couple"
            }

        assert not couples(first.stdout) & couples(resumed.stdout)


# ----------------------------------------------------------------------
# Process contracts
# ----------------------------------------------------------------------


class TestSigpipeContract:
    def test_head_truncation_exits_zero_upstream(self):
        result = _pipeline(
            _repro("build", "--services", "201")
            + ' | head -1 > /dev/null; exit "${PIPESTATUS[0]}"'
        )
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr
        assert "BrokenPipeError" not in result.stderr

    def test_head_truncation_of_a_query_stream_exits_zero(self):
        command = (
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("query", "--kind", "couples", "--page-size", "8")
            + ' | head -1 > /dev/null; exit "${PIPESTATUS[1]}"'
        )
        result = _pipeline(command)
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr


class TestErrorContract:
    def test_malformed_input_yields_error_record_and_exit_65(self):
        result = _pipeline(_repro("query", "--kind", "levels"), stdin="{not json}\n")
        assert result.returncode == 65
        record = json.loads(result.stdout.splitlines()[-1])
        assert record["kind"] == "error"
        assert record["data"]["code"] == "not-json"
        assert record["data"]["exit"] == 65
        assert record["data"]["line"] == 1

    def test_unknown_mutation_kind_is_rejected_with_exit_65(self):
        stdin = dump_record(
            {"kind": "mutation", "data": {"kind": "warp_reality"}}
        )
        result = _pipeline(_repro("mutate"), stdin=stdin)
        assert result.returncode == 65
        record = json.loads(result.stdout.splitlines()[-1])
        assert record["data"]["code"] == "bad-mutation"

    def test_error_records_propagate_downstream_with_their_exit(self):
        """A failing stage's error record flows through mutate and is
        re-raised with the original code -- failures never vanish
        mid-pipeline."""
        command = (
            _repro("query", "--kind", "levels")
            + " | "
            + _repro("mutate")
            + ' ; exit "${PIPESTATUS[1]}"'
        )
        result = _pipeline(command, stdin="garbage\n")
        assert result.returncode == 65
        records = [json.loads(line) for line in result.stdout.splitlines()]
        errors = [r for r in records if r["kind"] == "error"]
        assert len(errors) == 2  # forwarded verbatim + none swallowed
        assert errors[0] == errors[1]

    def test_usage_errors_exit_2(self):
        result = _pipeline(_repro("query", "--kind", "nonsense"))
        assert result.returncode == 2

    def test_unreachable_url_exits_69(self):
        result = _pipeline(
            _repro(
                "query",
                "--kind", "levels",
                "--url", "http://127.0.0.1:1",
            )
        )
        assert result.returncode == 69
        record = json.loads(result.stdout.splitlines()[-1])
        assert record["data"]["code"] == "unreachable"
        assert record["data"]["exit"] == 69


# ----------------------------------------------------------------------
# Remote parity
# ----------------------------------------------------------------------


class TestRemoteParity:
    @pytest.fixture()
    def server(self):
        from repro.serve.server import AnalysisServer

        server = AnalysisServer()
        server.start()
        try:
            yield server
        finally:
            server.stop()

    def test_url_pipeline_result_records_match_local(self, server, tmp_path):
        """The same pipeline against a live serving tier emits the same
        result-record bytes: one record schema, two transports."""
        mutations = _mutation_docs(3)
        script = _script_file(tmp_path, mutations)
        query = _repro(
            "query",
            "--kind", "couples",
            "--kind", "levels",
            "--page-size", "32",
        )
        remote = _pipeline(
            _repro(
                "build",
                "--services", str(SERVICES),
                "--url", server.url,
                "--session", "parity",
            )
            + " | "
            + _repro("mutate", "--script", str(script))
            + " | "
            + query
        )
        assert remote.returncode == 0, remote.stderr
        local = _pipeline(
            _repro("build", "--services", str(SERVICES))
            + " | "
            + _repro("mutate", "--script", str(script))
            + " | "
            + query
        )
        assert local.returncode == 0, local.stderr
        assert remote.stdout == local.stdout

    def test_remote_build_emits_only_the_proxy_meta(self, server):
        result = _pipeline(
            _repro(
                "build",
                "--services", str(SERVICES),
                "--url", server.url,
                "--session", "meta-only",
            )
        )
        assert result.returncode == 0, result.stderr
        lines = result.stdout.splitlines()
        assert len(lines) == 1
        meta = json.loads(lines[0])
        assert meta["kind"] == "meta"
        assert meta["data"]["remote"]["url"] == server.url
        assert meta["data"]["remote"]["session"] == "meta-only"


# ----------------------------------------------------------------------
# Golden fixtures (regenerate with tools/make_golden_cli.py)
# ----------------------------------------------------------------------


GOLDEN_SPECS = {
    "golden_cli_couples.ndjson": QuerySpec(
        kind="couples", page_size=32, max_records=64
    ),
    "golden_cli_weak_edges.ndjson": QuerySpec(
        kind="weak-edges", page_size=32, max_records=64
    ),
    "golden_cli_levels.ndjson": QuerySpec(kind="levels"),
}


class TestGoldenFixtures:
    @pytest.fixture(scope="class")
    def seed_service(self):
        return AnalysisService(_build_ecosystem(services=201))

    @pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
    def test_seed_ecosystem_records_match_golden_bytes(
        self, seed_service, name
    ):
        golden = (FIXTURES / name).read_text(encoding="utf-8")
        produced = _reference_records(seed_service, [GOLDEN_SPECS[name]])
        assert produced == golden, (
            f"{name} drifted; regenerate with tools/make_golden_cli.py "
            "if the change is intentional"
        )

    def test_golden_couples_match_the_piped_cli(self):
        """One golden is also checked through the real subprocess pipe,
        so the fixtures pin the CLI surface, not just the library."""
        result = _pipeline(
            _repro("build")
            + " | "
            + _repro(
                "query",
                "--kind", "couples",
                "--page-size", "32",
                "--max-records", "64",
            )
        )
        assert result.returncode == 0, result.stderr
        golden = (FIXTURES / "golden_cli_couples.ndjson").read_text(
            encoding="utf-8"
        )
        assert result.stdout == golden
