"""Tests for recon (SE database, phishing Wi-Fi) and interception adapters."""

import random

import pytest

from repro.attack.interception import (
    InterceptionError,
    MitMInterception,
    SnifferInterception,
)
from repro.attack.recon import PhishingWifi, SocialEngineeringDatabase
from repro.model.factors import PersonalInfoKind as PI
from repro.model.identity import IdentityGenerator
from repro.telecom.cipher import CipherSuite, CrackModel
from repro.telecom.jammer import FourGJammer
from repro.telecom.mitm import ActiveMitM
from repro.telecom.network import GSMNetwork, RadioTech
from repro.telecom.sniffer import OsmocomSniffer
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence


class TestSEDatabase:
    def _db(self, coverage=None):
        identities = IdentityGenerator(5).generate_many(30)
        return identities, SocialEngineeringDatabase(
            identities, coverage=coverage, rng=random.Random(1)
        )

    def test_lookup_by_phone(self):
        identities, db = self._db()
        hits = [
            db.lookup_by_phone(i.cellphone_number) for i in identities
        ]
        found = [h for h in hits if h is not None]
        assert len(found) > 20  # 95% phone coverage

    def test_lookup_by_name_may_collide(self):
        identities, db = self._db()
        target = identities[0]
        dossiers = db.lookup_by_name(target.real_name)
        assert all(
            d.facts.get(PI.REAL_NAME) == target.real_name for d in dossiers
        )

    def test_coverage_controls_fields(self):
        identities, db = self._db(coverage={PI.CELLPHONE_NUMBER: 1.0})
        dossier = db.lookup_by_phone(identities[0].cellphone_number)
        assert dossier.known_kinds() == frozenset({PI.CELLPHONE_NUMBER})

    def test_record_count(self):
        _identities, db = self._db()
        assert len(db) == 30


class TestPhishingWifi:
    def _network(self):
        net = GSMNetwork(clock=Clock(), seeds=SeedSequence(2))
        net.add_cell("station")
        net.add_cell("elsewhere")
        for index in range(20):
            net.provision_phone(f"1380000{index:04d}", "station")
        net.provision_phone("1390000000", "elsewhere")
        return net

    def test_harvest_only_in_cell(self):
        net = self._network()
        wifi = PhishingWifi(net, "station", hit_rate=1.0)
        harvested = wifi.harvest()
        assert len(harvested) == 20
        assert "1390000000" not in harvested

    def test_hit_rate_zero_harvests_nothing(self):
        net = self._network()
        assert PhishingWifi(net, "station", hit_rate=0.0).harvest() == ()

    def test_invalid_hit_rate_rejected(self):
        net = self._network()
        with pytest.raises(ValueError):
            PhishingWifi(net, "station", hit_rate=2.0)


def _rig(cipher=CipherSuite.A5_0, crack=None):
    clock = Clock()
    net = GSMNetwork(clock=clock, seeds=SeedSequence(7))
    net.add_cell("cell", cipher=cipher)
    net.provision_phone("138", "cell", preferred_tech=RadioTech.GSM)
    sniffer = OsmocomSniffer(net, "cell", monitors=16, crack_model=crack)
    return clock, net, sniffer


class TestSnifferInterception:
    def test_obtains_code(self):
        clock, net, sniffer = _rig()
        adapter = SnifferInterception(sniffer, clock)
        code = adapter.obtain_code(
            "svc",
            lambda: net.deliver_sms("138", "your code is 424242", sender="svc"),
        )
        assert code == "424242"

    def test_retries_after_failed_crack(self):
        """p=0.5 cracking: four attempts almost always recover a code."""
        crack = CrackModel(
            success_probability=0.5, rng=random.Random(3)
        )
        clock, net, sniffer = _rig(cipher=CipherSuite.A5_1, crack=crack)
        adapter = SnifferInterception(sniffer, clock, max_attempts=8)
        code = adapter.obtain_code(
            "svc",
            lambda: net.deliver_sms("138", "your code is 424242", sender="svc"),
        )
        assert code == "424242"
        assert crack.attempts > 0

    def test_raises_after_exhausted_attempts(self):
        crack = CrackModel(success_probability=0.0)
        clock, net, sniffer = _rig(cipher=CipherSuite.A5_1, crack=crack)
        adapter = SnifferInterception(sniffer, clock, max_attempts=2)
        with pytest.raises(InterceptionError):
            adapter.obtain_code(
                "svc",
                lambda: net.deliver_sms("138", "your code is 1", sender="svc"),
            )

    def test_clock_advances_past_crack_delay(self):
        crack = CrackModel(
            success_probability=1.0, crack_seconds=40.0, rng=random.Random(0)
        )
        clock, net, sniffer = _rig(cipher=CipherSuite.A5_1, crack=crack)
        adapter = SnifferInterception(sniffer, clock)
        adapter.obtain_code(
            "svc",
            lambda: net.deliver_sms("138", "your code is 9", sender="svc"),
        )
        assert clock.now() >= 24.0  # at least 0.6 * 40s of cracking time

    def test_invalid_attempts_rejected(self):
        clock, _net, sniffer = _rig()
        with pytest.raises(ValueError):
            SnifferInterception(sniffer, clock, max_attempts=0)


class TestMitMInterception:
    def test_obtains_code_after_capture(self):
        clock = Clock()
        net = GSMNetwork(clock=clock, seeds=SeedSequence(8))
        net.add_cell("cell")
        net.provision_phone("138", "cell", preferred_tech=RadioTech.LTE)
        with FourGJammer(net, "cell"):
            mitm = ActiveMitM(net, "cell")
            assert mitm.execute("138").success
            adapter = MitMInterception(mitm, clock)
            code = adapter.obtain_code(
                "svc",
                lambda: net.deliver_sms(
                    "138", "your code is 777777", sender="svc"
                ),
            )
        assert code == "777777"

    def test_uncaptured_victim_raises(self):
        clock = Clock()
        net = GSMNetwork(clock=clock, seeds=SeedSequence(8))
        net.add_cell("cell")
        net.provision_phone("138", "cell", preferred_tech=RadioTech.GSM)
        mitm = ActiveMitM(net, "cell")  # never executed
        adapter = MitMInterception(mitm, clock)
        with pytest.raises(InterceptionError):
            adapter.obtain_code(
                "svc",
                lambda: net.deliver_sms("138", "your code is 1", sender="svc"),
            )
