"""Unit and property tests for the A5/1-style cipher and crack model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.telecom.cipher import A51Cipher, CrackModel


class TestA51Cipher:
    def test_roundtrip(self):
        key, frame = 0x0123456789ABCDEF, 42
        plaintext = b"The quick brown fox"
        ciphertext = A51Cipher.encrypt(key, frame, plaintext)
        assert ciphertext != plaintext
        assert A51Cipher.decrypt(key, frame, ciphertext) == plaintext

    def test_wrong_key_garbles(self):
        ciphertext = A51Cipher.encrypt(1, 0, b"hello world, hello")
        assert A51Cipher.decrypt(2, 0, ciphertext) != b"hello world, hello"

    def test_frame_number_diversifies_keystream(self):
        a = A51Cipher.encrypt(1, 0, b"\x00" * 16)
        b = A51Cipher.encrypt(1, 1, b"\x00" * 16)
        assert a != b

    def test_keystream_deterministic(self):
        assert (
            A51Cipher(7, 3).keystream(32) == A51Cipher(7, 3).keystream(32)
        )

    def test_oversized_key_rejected(self):
        with pytest.raises(ValueError):
            A51Cipher(1 << 64)

    def test_keystream_is_balanced(self):
        """Sanity: the keystream is not constant/degenerate."""
        stream = A51Cipher(0xDEADBEEF, 5).keystream(256)
        ones = sum(bin(b).count("1") for b in stream)
        assert 700 < ones < 1350  # ~1024 expected of 2048 bits


@settings(max_examples=25, deadline=None)
@given(
    key=st.integers(min_value=0, max_value=(1 << 64) - 1),
    frame=st.integers(min_value=0, max_value=(1 << 22) - 1),
    plaintext=st.binary(min_size=0, max_size=64),
)
def test_cipher_roundtrip_property(key, frame, plaintext):
    assert (
        A51Cipher.decrypt(key, frame, A51Cipher.encrypt(key, frame, plaintext))
        == plaintext
    )


class TestCrackModel:
    def test_perfect_model_recovers_key(self):
        model = CrackModel(success_probability=1.0, crack_seconds=10.0)
        key, frame = 0xAABB, 7
        plaintext = b"HEADER|payload"
        ciphertext = A51Cipher.encrypt(key, frame, plaintext)
        result = model.attempt(key, frame, ciphertext, b"HEADER")
        assert result.success
        assert result.session_key == key
        assert result.elapsed > 0

    def test_zero_probability_never_succeeds(self):
        model = CrackModel(success_probability=0.0)
        result = model.attempt(1, 1, b"x", b"x")
        assert not result.success
        assert result.session_key is None

    def test_wrong_known_plaintext_fails_verification(self):
        """A candidate key is only accepted if it decrypts to the expected
        framing -- the model cannot hallucinate keys."""
        model = CrackModel(success_probability=1.0)
        key = 0xAABB
        ciphertext = A51Cipher.encrypt(key, 0, b"OTHER|payload")
        result = model.attempt(key, 0, ciphertext, b"HEADER")
        assert not result.success

    def test_statistics_counted(self):
        model = CrackModel(
            success_probability=0.5, rng=random.Random(0)
        )
        key = 3
        ciphertext = A51Cipher.encrypt(key, 0, b"HDR|x")
        for _ in range(50):
            model.attempt(key, 0, ciphertext, b"HDR")
        assert model.attempts == 50
        assert 10 < model.successes < 40

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            CrackModel(success_probability=1.5)

    def test_negative_crack_time_rejected(self):
        with pytest.raises(ValueError):
            CrackModel(crack_seconds=-1.0)
