"""Tests for the countermeasures and their evaluation."""

import pytest

from repro.core import ActFort
from repro.core.tdg import TransformationDependencyGraph
from repro.defense.builtin_auth import BuiltinAuthService, BuiltinAuthUpgrade
from repro.defense.evaluation import DefenseEvaluation, outcome_rows
from repro.defense.hardening import EmailHardening, SymmetryRepair
from repro.defense.masking_policy import UnifiedMaskingPolicy
from repro.model.attacker import AttackerProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


class TestUnifiedMasking:
    def test_ctrip_citizen_id_masked_after_policy(self, default_ecosystem):
        hardened = UnifiedMaskingPolicy().apply(default_ecosystem)
        ctrip = hardened.service("ctrip")
        spec = ctrip.mask_for(PL.WEB, PI.CITIZEN_ID)
        assert len(spec.revealed_positions(18)) == 4

    def test_combining_attack_dies(self, default_ecosystem):
        """After unification every provider reveals the same positions, so
        pooled views never reconstruct a full value."""
        hardened = UnifiedMaskingPolicy().apply(default_ecosystem)
        tdg = TransformationDependencyGraph.from_ecosystem(
            hardened, AttackerProfile.baseline()
        )
        union = frozenset()
        for node in tdg.nodes:
            union |= node.pia_partial.get(PI.BANKCARD_NUMBER, frozenset())
        assert len(union) < 16
        # And no node exposes a complete citizen ID anymore.
        assert all(PI.CITIZEN_ID not in node.pia for node in tdg.nodes)

    def test_baseline_untouched(self, default_ecosystem):
        UnifiedMaskingPolicy().apply(default_ecosystem)
        ctrip = default_ecosystem.service("ctrip")
        assert len(ctrip.mask_for(PL.WEB, PI.CITIZEN_ID).revealed_positions(18)) == 18


class TestEmailHardening:
    def test_email_services_no_longer_sms_only(self, default_ecosystem):
        hardened = EmailHardening().apply(default_ecosystem)
        for service in hardened.in_domain("email"):
            assert not service.is_fringe, service.name

    def test_other_domains_untouched(self, default_ecosystem):
        hardened = EmailHardening().apply(default_ecosystem)
        assert hardened.service("ctrip") == default_ecosystem.service("ctrip")

    def test_email_chains_die_in_seed_ecosystem(self):
        """All seed email providers are SMS-only resettable; hardening them
        removes every path into PayPal (which demands an email code)."""
        from repro.catalog.seeds import seed_profiles
        from repro.model.ecosystem import Ecosystem

        baseline = Ecosystem(seed_profiles())
        assert ActFort.from_ecosystem(baseline).attack_chain("paypal")
        hardened = EmailHardening().apply(baseline)
        assert ActFort.from_ecosystem(hardened).attack_chain("paypal") is None

    def test_surviving_email_providers_fall_via_non_sms_paths_only(
        self, default_ecosystem
    ):
        """In the full catalog some email services keep an info-path reset;
        hardening the SMS-only path alone leaves that residual risk --
        visible, not hidden, in the evaluation."""
        hardened = EmailHardening().apply(default_ecosystem)
        actfort = ActFort.from_ecosystem(hardened)
        closure = actfort.potential_victims()
        for entry in closure.entries:
            node = actfort.tdg().node(entry.service)
            if node.domain != "email":
                continue
            assert not entry.path.is_sms_only


class TestSymmetryRepair:
    def test_gome_masks_aligned_to_strictest(self, default_ecosystem):
        repaired = SymmetryRepair().apply(default_ecosystem)
        gome = repaired.service("gome")
        web = gome.mask_for(PL.WEB, PI.CITIZEN_ID).revealed_positions(18)
        mobile = gome.mask_for(PL.MOBILE, PI.CITIZEN_ID).revealed_positions(18)
        assert web == mobile
        assert len(web) <= 10

    def test_no_service_gains_paths(self, default_ecosystem):
        repaired = SymmetryRepair().apply(default_ecosystem)
        for service in repaired:
            baseline = default_ecosystem.service(service.name)
            assert set(service.auth_paths) <= set(baseline.auth_paths)


class TestBuiltinAuthService:
    def test_full_protocol_roundtrip(self):
        service = BuiltinAuthService()
        service.register("u1", "device-1")
        challenge = service.request_login("alipay", "u1", "Hangzhou")
        pending = service.pending_for("u1", "device-1")
        assert len(pending) == 1
        assert pending[0].location_hint == "Hangzhou"
        service.approve(challenge, "device-1")
        assert service.verify(challenge)

    def test_attacker_device_sees_no_push(self):
        service = BuiltinAuthService()
        service.register("u1", "device-1")
        service.request_login("alipay", "u1")
        assert service.pending_for("u1", "evil-device") == ()

    def test_attacker_device_cannot_approve(self):
        service = BuiltinAuthService()
        service.register("u1", "device-1")
        challenge = service.request_login("alipay", "u1")
        with pytest.raises(PermissionError):
            service.approve(challenge, "evil-device")
        assert not service.verify(challenge)

    def test_rejection_fails_verification(self):
        service = BuiltinAuthService()
        service.register("u1", "device-1")
        challenge = service.request_login("alipay", "u1")
        service.approve(challenge, "device-1", approve=False)
        assert not service.verify(challenge)

    def test_unregistered_user_rejected(self):
        service = BuiltinAuthService()
        with pytest.raises(KeyError):
            service.request_login("alipay", "ghost")


class TestBuiltinAuthUpgrade:
    def test_sms_replaced_by_trusted_device(self, default_ecosystem):
        upgraded = BuiltinAuthUpgrade().apply(default_ecosystem)
        for service in upgraded:
            for path in service.auth_paths:
                assert CF.SMS_CODE not in path.factors

    def test_partial_adoption(self, default_ecosystem):
        upgraded = BuiltinAuthUpgrade(adoption=0.5).apply(default_ecosystem)
        still_sms = sum(
            1
            for service in upgraded
            if any(
                CF.SMS_CODE in path.factors for path in service.auth_paths
            )
        )
        assert 0 < still_sms < len(upgraded)

    def test_invalid_adoption_rejected(self):
        with pytest.raises(ValueError):
            BuiltinAuthUpgrade(adoption=1.5)


class TestDefenseEvaluation:
    @pytest.fixture(scope="class")
    def outcomes(self, default_ecosystem):
        return DefenseEvaluation(default_ecosystem).evaluate()

    def test_labels(self, outcomes):
        labels = [o.label for o in outcomes]
        assert labels[0] == "baseline"
        assert labels[-1] == "all_combined"
        assert "builtin_auth" in labels

    def test_every_defense_weakly_shrinks_pav(self, outcomes):
        baseline = outcomes[0].pav_size
        for outcome in outcomes[1:]:
            assert outcome.pav_size <= baseline, outcome.label

    def test_builtin_auth_zeroes_attack_surface(self, outcomes):
        builtin = next(o for o in outcomes if o.label == "builtin_auth")
        assert builtin.pav_size == 0
        for platform in (PL.WEB, PL.MOBILE):
            assert builtin.direct_fraction[platform] == 0.0
            assert builtin.safe_fraction[platform] == 1.0

    def test_email_hardening_shrinks_pav_strictly(self, outcomes):
        baseline = outcomes[0].pav_size
        email = next(o for o in outcomes if o.label == "email_hardening")
        assert email.pav_size < baseline

    def test_masking_increases_safe_services(self, outcomes):
        baseline = next(o for o in outcomes if o.label == "baseline")
        masking = next(o for o in outcomes if o.label == "unified_masking")
        assert (
            masking.safe_fraction[PL.WEB] >= baseline.safe_fraction[PL.WEB]
        )

    def test_outcome_rows_render(self, outcomes):
        rows = outcome_rows(outcomes)
        assert len(rows) == len(outcomes)
        assert rows[0][0] == "baseline"

    def test_evaluate_attackers_matches_per_attacker_evaluate(
        self, default_ecosystem, outcomes
    ):
        """The shared-index attacker grid must equal per-attacker sweeps:
        same variant labels in the same order, same measured outcomes."""
        profiles = {
            "baseline": AttackerProfile.baseline(),
            "se_database": AttackerProfile.with_se_database(),
        }
        grid = DefenseEvaluation(default_ecosystem).evaluate_attackers(profiles)
        assert set(grid) == set(profiles)
        assert [o.label for o in grid["baseline"]] == [
            o.label for o in outcomes
        ]
        for batched, solo in zip(grid["baseline"], outcomes):
            assert batched.pav_size == solo.pav_size
            assert batched.dependency == solo.dependency
        se_solo = DefenseEvaluation(
            default_ecosystem, attacker=profiles["se_database"]
        ).evaluate()
        for batched, solo in zip(grid["se_database"], se_solo):
            assert batched.label == solo.label
            assert batched.pav_size == solo.pav_size
            assert batched.dependency == solo.dependency
