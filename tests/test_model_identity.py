"""Unit and property tests for identities and masked values."""

import pytest
from hypothesis import given, strategies as st

from repro.model.factors import PersonalInfoKind
from repro.model.identity import (
    IdentityGenerator,
    MaskedValue,
    combine_views,
)


class TestMaskedValue:
    def test_fully_revealed(self):
        view = MaskedValue.fully_revealed("123456")
        assert view.is_complete
        assert view.reveal() == "123456"
        assert view.rendered() == "123456"

    def test_fully_masked(self):
        view = MaskedValue.fully_masked("123456")
        assert not view.is_complete
        assert view.rendered() == "******"

    def test_partial_rendering(self):
        view = MaskedValue("123456", {0, 1, 5})
        assert view.rendered() == "12***6"

    def test_reveal_incomplete_raises(self):
        with pytest.raises(ValueError):
            MaskedValue("abc", {0}).reveal()

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            MaskedValue("abc", {5})

    def test_combine_unions_positions(self):
        a = MaskedValue("123456", {0, 1})
        b = MaskedValue("123456", {4, 5})
        merged = a.combine(b)
        assert merged.revealed_positions == frozenset({0, 1, 4, 5})

    def test_combine_different_values_rejected(self):
        a = MaskedValue("123456", {0})
        b = MaskedValue("654321", {0})
        with pytest.raises(ValueError):
            a.combine(b)

    def test_matches_consistent_candidate(self):
        view = MaskedValue("123456", {0, 5})
        assert view.matches("1zzzz6")
        assert not view.matches("2zzzz6")
        assert not view.matches("16")

    def test_equality_and_hash(self):
        a = MaskedValue("abc", {0})
        b = MaskedValue("abc", {0})
        assert a == b
        assert hash(a) == hash(b)
        assert a != MaskedValue("abc", {1})


class TestCombineViews:
    def test_empty_returns_none(self):
        assert combine_views([]) is None

    def test_incomplete_union_returns_none(self):
        views = [MaskedValue("123456", {0}), MaskedValue("123456", {1})]
        assert combine_views(views) is None

    def test_complete_union_recovers_value(self):
        """Insight 4's combining attack in miniature."""
        views = [
            MaskedValue("123456", {0, 1, 2}),
            MaskedValue("123456", {3, 4}),
            MaskedValue("123456", {5}),
        ]
        assert combine_views(views) == "123456"

    def test_conflicting_views_raise(self):
        with pytest.raises(ValueError):
            combine_views(
                [MaskedValue("123456", {0}), MaskedValue("999999", {5})]
            )


@given(
    value=st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122),
        min_size=1,
        max_size=30,
    ),
    data=st.data(),
)
def test_masked_value_partition_property(value, data):
    """Any partition of positions combines back to the full value."""
    positions = list(range(len(value)))
    cut = data.draw(st.integers(min_value=0, max_value=len(positions)))
    left = MaskedValue(value, positions[:cut])
    right = MaskedValue(value, positions[cut:])
    assert combine_views([left, right]) == value


@given(
    value=st.text(min_size=1, max_size=30),
    revealed=st.sets(st.integers(min_value=0, max_value=29)),
)
def test_rendered_length_preserved(value, revealed):
    """Masking never changes the rendered length (format-preserving)."""
    revealed = {i for i in revealed if i < len(value)}
    view = MaskedValue(value, revealed)
    assert len(view.rendered()) == len(value)


class TestIdentityGenerator:
    def test_deterministic_for_same_seed(self):
        a = IdentityGenerator(seed=5).generate()
        b = IdentityGenerator(seed=5).generate()
        assert a == b

    def test_different_seeds_differ(self):
        a = IdentityGenerator(seed=5).generate()
        b = IdentityGenerator(seed=6).generate()
        assert a.cellphone_number != b.cellphone_number

    def test_unique_phones_within_generator(self):
        gen = IdentityGenerator(seed=7)
        identities = gen.generate_many(50)
        phones = {i.cellphone_number for i in identities}
        assert len(phones) == 50

    def test_unique_emails_within_generator(self):
        gen = IdentityGenerator(seed=7)
        identities = gen.generate_many(50)
        emails = {i.email_address for i in identities}
        assert len(emails) == 50

    def test_person_ids_scoped_by_seed(self):
        """Canary/victim id collisions across generators must not happen."""
        a = IdentityGenerator(seed=1).generate()
        b = IdentityGenerator(seed=2).generate()
        assert a.person_id != b.person_id

    def test_citizen_id_is_18_digits(self, identity):
        assert len(identity.citizen_id) == 18
        assert identity.citizen_id.isdigit()

    def test_bankcard_is_16_digits(self, identity):
        assert len(identity.bankcard_number) == 16
        assert identity.bankcard_number.isdigit()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IdentityGenerator().generate_many(-1)


class TestIdentityInfoValue:
    def test_maps_simple_kinds(self, identity):
        assert (
            identity.info_value(PersonalInfoKind.CELLPHONE_NUMBER)
            == identity.cellphone_number
        )
        assert (
            identity.info_value(PersonalInfoKind.REAL_NAME)
            == identity.real_name
        )

    def test_id_photo_yields_citizen_id(self, identity):
        assert (
            identity.info_value(PersonalInfoKind.ID_PHOTO)
            == identity.citizen_id
        )

    def test_acquaintances_joined(self, identity):
        value = identity.info_value(PersonalInfoKind.ACQUAINTANCE_NAME)
        assert value.split(";") == list(identity.acquaintances)

    def test_unmapped_kind_raises(self, identity):
        with pytest.raises(KeyError):
            identity.info_value(PersonalInfoKind.CLOUD_PHOTOS)
