"""Perf smoke gate: the paper-scale analysis must stay interactive.

Not a benchmark -- a tier-1-safe tripwire.  The indexed engine finishes the
full 201-service analysis (stages 1-4, dependency levels on both platforms,
forward closure, both edge families) in well under a second on any
hardware; the bound below is ~50x that, so it only fires on a gross
complexity regression (e.g. losing the inverted indexes or the coverage
memoization), not on a slow CI machine.  The real old-vs-new trajectory
lives in ``benchmarks/test_bench_scaling.py``.
"""

import os
import statistics
import time

import pytest

from repro.api import (
    AnalysisService,
    ClosureQuery,
    EdgeSummaryQuery,
    LevelReportQuery,
    MeasurementQuery,
)
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core import ActFort
from repro.dynamic import DynamicAnalysisSession, MutationStream
from repro.dynamic.churn import measure_serve_comparison
from repro.dynamic.parallel import build_reports
from repro.model.factors import Platform

#: Generous wall-clock ceiling for the full 201-service analysis.
SMOKE_BUDGET_SECONDS = 15.0

#: The incremental engine's contract at the paper-doubling 402 tier.
REQUIRED_UPDATE_SPEEDUP = 10.0

#: The level engine's contract at 402: serving the dependency-level
#: payload right after a mutation must beat recomputing the depth
#: fixpoints from scratch by at least this factor.
REQUIRED_SERVE_SPEEDUP = 5.0

#: The AnalysisService contract at 402: repeating a query batch at an
#: unchanged version must be served from the version-keyed result cache,
#: not recomputed.
REQUIRED_WARM_SPEEDUP = 10.0

#: The incremental closure engine's contract at 402: re-serving the PAV
#: after a mutation that *reaches* the closure's compromised support set
#: must resume the fixpoint from the recorded per-round support postings,
#: beating the scratch fixpoint by at least this factor.
REQUIRED_CLOSURE_RESERVE_SPEEDUP = 5.0

#: The serving tier's migration contract at 402: restoring a session
#: from its snapshot (lazy materialization + carried warm results) and
#: serving the standard batch must beat a cold build-and-serve.
REQUIRED_SNAPSHOT_WARM_START_SPEEDUP = 5.0

#: The incremental serve-path contract at 402: re-serving the mixed
#: batch after a mutation (spliced stream segments, folded measurement
#: counters, delta-maintained fixpoints and parent views) must beat
#: standing a fresh service up and serving the same batch cold.
REQUIRED_RESERVE_SPEEDUP = 20.0

#: The instrumentation layer's contract at 402: serving with the
#: default-enabled metrics/tracing handle must cost <10% over the
#: disabled (no-op) handle on the same workload.
MAX_INSTRUMENTATION_OVERHEAD = 0.10


def test_201_service_full_analysis_stays_interactive(default_ecosystem):
    start = time.perf_counter()
    actfort = ActFort.from_ecosystem(default_ecosystem)
    tdg = actfort.tdg()
    for platform in (Platform.WEB, Platform.MOBILE):
        tdg.level_fractions(platform)
    actfort.potential_victims()
    tdg.strong_edges()
    # The full 201-service Couple File is output-bound (~200k records) and
    # lives in the scaling benchmark; here a slice of services keeps the
    # couple machinery on the smoke path without the combinatorial bill.
    for node in tdg.nodes[:20]:
        tdg.couples(node.service)
    elapsed = time.perf_counter() - start
    assert elapsed < SMOKE_BUDGET_SECONDS, (
        f"201-service analysis took {elapsed:.2f}s; the indexed engine "
        f"should finish in well under {SMOKE_BUDGET_SECONDS:.0f}s"
    )


def test_single_mutation_update_is_10x_faster_than_rebuild_at_402():
    """The incremental engine's tripwire at the paper-doubling tier.

    A single mutation absorbed by a live session (delta apply, stage-1/2
    report refresh for the touched services, postings splices on the
    shared ecosystem index and the attacker view, reachable-only cache
    invalidation) must beat rebuilding the pipeline to the same
    ready-to-serve state -- fresh reports, node set, and indexes over the
    mutated ecosystem -- by >=10x.  Both sides end ready to answer the
    same queries; the incremental side additionally keeps every memoized
    result the delta could not reach, so the comparison under-counts its
    real advantage on query-heavy streams (measured honestly in
    ``benchmarks/test_bench_churn.py``).
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem)
    session.level_fractions(Platform.WEB)  # warm the maintained state
    stream = MutationStream(seed=2021)
    update_times = []
    for _ in range(7):
        mutation = stream.next_mutation(session.ecosystem)
        start = time.perf_counter()
        session.mutate(mutation)
        update_times.append(time.perf_counter() - start)
        # Keep the memoized state warm between updates, as a serving loop
        # would: every mutation's invalidation then does real work.
        session.level_fractions(Platform.WEB)
    update = statistics.median(update_times)

    start = time.perf_counter()
    rebuilt = ActFort.from_ecosystem(
        session.ecosystem, attacker=session.attackers["baseline"]
    ).tdg()
    rebuilt.attacker_index()
    rebuild = time.perf_counter() - start

    assert rebuild >= REQUIRED_UPDATE_SPEEDUP * update, (
        f"single-mutation update {update * 1e3:.2f}ms vs full rebuild "
        f"{rebuild * 1e3:.2f}ms: speedup "
        f"{rebuild / update if update else float('inf'):.1f}x < "
        f"{REQUIRED_UPDATE_SPEEDUP:.0f}x"
    )


def test_warm_repeated_query_is_10x_faster_than_cold_at_402():
    """The result cache's tripwire at the paper-doubling tier.

    A mixed query batch is executed twice against one
    :class:`~repro.api.AnalysisService` at the same version: the first
    (cold) run computes through the engines, the second (warm) run must
    be O(1) cache lookups.  The cold side is measured once -- it is the
    honest first-serve cost -- and the warm side takes the best of a few
    repeats so suite-wide load noise cannot fail the gate; the real
    trajectory lives in ``benchmarks/test_bench_scaling.py``'s
    ``api_serve`` tier.
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    service = AnalysisService(ecosystem)
    workload = [
        LevelReportQuery(),
        MeasurementQuery(),
        ClosureQuery(),
        EdgeSummaryQuery(),
    ]

    start = time.perf_counter()
    cold_results = service.execute_batch(workload)
    cold = time.perf_counter() - start

    warm = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        warm_results = service.execute_batch(workload)
        warm = min(warm, time.perf_counter() - start)
    assert warm_results == cold_results

    speedup = cold / warm if warm else float("inf")
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"cold batch {cold * 1e3:.2f}ms vs warm repeat {warm * 1e3:.3f}ms: "
        f"speedup {speedup:.1f}x < {REQUIRED_WARM_SPEEDUP:.0f}x"
    )


def test_reserve_after_mutation_is_20x_faster_than_cold_at_402():
    """The incremental serve path's tripwire at the paper-doubling tier.

    A mixed batch covering every incrementally-served family -- level
    reports (delta-BFSed fixpoints), per-service levels, measurement
    (folded counters), edge summaries (memoized parent sets), and one
    page of each record stream (spliced segments) -- is re-served after
    each of several mutations.  The comparator is the honest cold path:
    standing up a fresh ``AnalysisService`` over the mutated ecosystem
    and serving the same batch from nothing.  The re-serve side takes
    the best cycle: mutations differ wildly in cone size (an adverse
    masking change re-derives real work; a deep path tweak touches
    almost nothing), and the gate's job is to catch a *complexity*
    regression -- losing segment splicing or counter folding makes every
    cycle as slow as the cold side, which fails the best cycle too.
    The honest trajectory lives in ``benchmarks/test_bench_scaling.py``'s
    ``api_serve`` tier.
    """
    from repro.api import CoupleFileQuery, DependencyLevelsQuery, WeakEdgeQuery

    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    workload = [
        LevelReportQuery(),
        DependencyLevelsQuery(),
        MeasurementQuery(),
        EdgeSummaryQuery(),
        CoupleFileQuery(page_size=128),
        WeakEdgeQuery(page_size=128),
    ]
    service = AnalysisService(ecosystem)
    service.execute_batch(workload)

    stream = MutationStream(seed=2021)
    reserve = float("inf")
    for _ in range(7):
        mutation = stream.next_mutation(service.ecosystem)
        service.apply(mutation)
        start = time.perf_counter()
        service.execute_batch(workload)
        reserve = min(reserve, time.perf_counter() - start)

    start = time.perf_counter()
    fresh = AnalysisService(service.ecosystem)
    fresh.execute_batch(workload)
    cold = time.perf_counter() - start

    speedup = cold / reserve if reserve else float("inf")
    assert speedup >= REQUIRED_RESERVE_SPEEDUP, (
        f"re-serve after mutation (best of 7) {reserve * 1e3:.2f}ms vs "
        f"fresh-service cold serve {cold * 1e3:.1f}ms: speedup "
        f"{speedup:.1f}x < {REQUIRED_RESERVE_SPEEDUP:.0f}x"
    )


def test_closure_reserve_after_reaching_mutation_beats_scratch_5x_at_402():
    """The incremental closure engine's tripwire at the paper-doubling tier.

    Mutations are streamed until several of them *reach* the cached
    closure's compromised support set (detected through the
    ``revalidations`` counter -- non-reaching churn is served by the
    survive/patch path and proves nothing).  After each reaching
    mutation the PAV re-serve resumes the fixpoint from the record's
    per-round support postings; the comparator drops the closure cache
    (:meth:`~repro.core.tdg.TransformationDependencyGraph.reset_closure_cache`)
    and re-runs the scratch fixpoint over the *same* mutated graph.
    Both sides take the best cycle: reaching mutations differ wildly in
    retracted-cone size, and the gate's job is to catch a complexity
    regression -- losing round reuse makes every resume as slow as the
    scratch run, which fails the best cycle too.
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem)
    session.forward_closure()  # prime the support record
    graph = session.graph()
    stream = MutationStream(seed=2021)
    resume = float("inf")
    scratch = float("inf")
    reaching = 0
    for _ in range(60):
        if reaching >= 5:
            break
        mutation = stream.next_mutation(session.ecosystem)
        marked = graph.closure_cache_stats()["revalidations"]
        session.mutate(mutation)
        if graph.closure_cache_stats()["revalidations"] == marked:
            session.forward_closure()  # keep the record warm (hit/patch)
            continue
        reaching += 1
        start = time.perf_counter()
        session.forward_closure()
        resume = min(resume, time.perf_counter() - start)
        graph.reset_closure_cache()
        start = time.perf_counter()
        session.forward_closure()  # scratch fixpoint, re-primes the record
        scratch = min(scratch, time.perf_counter() - start)
    assert reaching >= 3, (
        f"mutation stream produced only {reaching} support-reaching "
        "deltas; the gate needs several to measure"
    )
    speedup = scratch / resume if resume else float("inf")
    assert speedup >= REQUIRED_CLOSURE_RESERVE_SPEEDUP, (
        f"closure re-serve after reaching mutation {resume * 1e3:.2f}ms vs "
        f"scratch fixpoint {scratch * 1e3:.2f}ms: speedup {speedup:.1f}x < "
        f"{REQUIRED_CLOSURE_RESERVE_SPEEDUP:.0f}x"
    )


def test_enabled_instrumentation_costs_under_10pct_at_402():
    """The observability layer's tripwire at the paper-doubling tier.

    Each round drives two fresh services over the same ecosystem -- one
    with the default enabled :class:`~repro.obs.Instrumentation` handle,
    one with the no-op handle -- through the identical mutate-and-serve
    sweep (same mutation-stream seed, so both absorb the same deltas and
    serve the same batches), seconds apart, and takes the whole-sweep
    wall-time ratio.  Engines hold pre-resolved registry children on
    their hot paths, so the honest enabled bill is integer adds under a
    lock plus a handful of spans per batch (~1%); the gate fires when
    instrumentation leaks onto a per-record path.  The verdict is the
    *minimum* ratio over several interleaved rounds: a genuine
    systematic overhead inflates every round's ratio (both sides of a
    round run back to back, so machine drift cancels within it), while
    load noise cannot depress all of them -- the estimator is
    deliberately biased against false alarms, like the other gates'
    best-of policies.
    """
    from repro.obs import Instrumentation

    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    workload = [
        LevelReportQuery(),
        MeasurementQuery(),
        ClosureQuery(),
        EdgeSummaryQuery(),
    ]

    import gc

    def sweep(instrumentation):
        """A full serve sweep: absorb a mutation, re-serve the mixed
        batch through the engines, then a warm all-hits repeat.  GC is
        parked for the timed region -- its pauses are the heavy tail
        that would otherwise dominate a ratio of ~100ms sweeps."""
        service = AnalysisService(
            ecosystem, instrumentation=instrumentation
        )
        service.execute_batch(workload)  # warm the engine stack
        stream = MutationStream(seed=2021)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for _ in range(10):
                service.apply(stream.next_mutation(service.ecosystem))
                service.execute_batch(workload)
                service.execute_batch(workload)
            return time.perf_counter() - start
        finally:
            gc.enable()

    ratios = []
    for _ in range(5):
        enabled = sweep(None)  # None -> the default enabled handle
        disabled = sweep(Instrumentation.disabled())
        ratios.append(enabled / disabled if disabled else 1.0)

    overhead = min(ratios) - 1.0
    assert overhead < MAX_INSTRUMENTATION_OVERHEAD, (
        f"enabled/disabled sweep ratios {[f'{r:.3f}' for r in ratios]}: "
        f"even the best round shows {overhead * 100:.1f}% overhead >= "
        f"{MAX_INSTRUMENTATION_OVERHEAD * 100:.0f}%"
    )


def test_query_after_mutation_beats_fixpoint_recompute_5x_at_402():
    """The level engine's tripwire at the paper-doubling tier.

    After a mutation, the dependency-level payload must be served from
    the engine's incrementally-maintained depth fixpoints and surviving
    classification entries -- not by re-running the global fixpoints.
    The comparator (see
    :func:`repro.dynamic.churn.measure_serve_comparison`) is a twin
    session fed the same mutations whose engine is dropped before every
    query, i.e. exactly the pre-engine serving cost: global fixpoints
    plus full reclassification over whatever per-node memos survived the
    delta.  Millisecond-scale medians wobble under suite-wide load, so
    the gate takes the best of a few independent measurement rounds --
    only a genuine complexity regression fails all of them.  The honest
    trajectory lives in ``benchmarks/test_bench_churn.py``'s serve tier.
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    best = 0.0
    last = (0.0, 0.0)
    for _attempt in range(3):
        incremental_times, recompute_times = measure_serve_comparison(
            ecosystem, samples=9
        )
        incremental = statistics.median(incremental_times)
        recompute = statistics.median(recompute_times)
        last = (incremental, recompute)
        speedup = recompute / incremental if incremental else float("inf")
        best = max(best, speedup)
        if best >= REQUIRED_SERVE_SPEEDUP:
            break
    assert best >= REQUIRED_SERVE_SPEEDUP, (
        f"query after mutation {last[0] * 1e3:.2f}ms vs fixpoint "
        f"recompute {last[1] * 1e3:.2f}ms: best speedup over 3 rounds "
        f"{best:.1f}x < {REQUIRED_SERVE_SPEEDUP:.0f}x"
    )


#: The parallel cold build's contract: sharding the stage-1/2 report
#: pipeline across a process pool must beat the serial loop decisively
#: on a multi-core host (single-core hosts skip; the pool degrades to
#: the serial path there by construction).
REQUIRED_POOL_SPEEDUP = 2.0

#: CI-sized pool tier: big enough that per-profile pipeline work
#: dominates fork+IPC overhead, small enough for a smoke test.
POOL_TIER_SERVICES = 2000


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="pool speedup needs a multi-core host",
)
def test_parallel_cold_build_is_2x_faster_on_multicore():
    """The process-pool cold build's tripwire.

    Times only what the pool shards -- the attacker-independent stage-1/2
    report pipeline via :func:`repro.dynamic.parallel.build_reports` --
    serial vs one-worker-per-CPU, and checks the merged dicts are
    identical (same reports, same insertion order: the id-space
    contract).
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=POOL_TIER_SERVICES), seed=2021
    ).build_ecosystem()
    profiles = list(ecosystem)

    start = time.perf_counter()
    serial_auth, serial_coll, serial_stats = build_reports(profiles)
    serial = time.perf_counter() - start
    assert not serial_stats.pooled

    start = time.perf_counter()
    pooled_auth, pooled_coll, pooled_stats = build_reports(
        profiles, workers=-1
    )
    pooled = time.perf_counter() - start
    assert pooled_stats.pooled

    assert list(pooled_auth) == list(serial_auth)
    assert pooled_auth == serial_auth
    assert list(pooled_coll) == list(serial_coll)
    assert pooled_coll == serial_coll

    speedup = serial / pooled if pooled else float("inf")
    assert speedup >= REQUIRED_POOL_SPEEDUP, (
        f"serial stage-1/2 build {serial * 1e3:.0f}ms vs pooled "
        f"({pooled_stats.workers} workers) {pooled * 1e3:.0f}ms: "
        f"speedup {speedup:.1f}x < {REQUIRED_POOL_SPEEDUP:.0f}x"
    )


def test_snapshot_warm_start_beats_cold_build_5x_at_402():
    """The serving tier's migration contract at the paper-doubling tier.

    Standing a session up from a snapshot (with its carried warm
    results) and serving the standard batch must beat building the same
    session cold from the ecosystem and serving that batch by at least
    5x -- otherwise shard migration would cost as much as a cold start
    and the snapshot path has regressed (lazy materialization lost, or
    warm-result carry-over broken).  Cold is measured once (the honest
    first-build cost); the warm side takes the best of a few repeats,
    each from a fresh restore.
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=402), seed=2021
    ).build_ecosystem()
    workload = [
        LevelReportQuery(),
        MeasurementQuery(),
        ClosureQuery(),
        EdgeSummaryQuery(),
    ]

    start = time.perf_counter()
    cold_service = AnalysisService(ecosystem)
    cold_results = cold_service.execute_batch(workload)
    cold = time.perf_counter() - start

    document = cold_service.snapshot()

    warm = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        restored = AnalysisService.restore(document)
        warm_results = restored.execute_batch(workload)
        warm = min(warm, time.perf_counter() - start)
    assert warm_results == cold_results

    speedup = cold / warm if warm else float("inf")
    assert speedup >= REQUIRED_SNAPSHOT_WARM_START_SPEEDUP, (
        f"cold build+batch {cold * 1e3:.1f}ms vs snapshot warm-start "
        f"{warm * 1e3:.2f}ms: speedup {speedup:.1f}x < "
        f"{REQUIRED_SNAPSHOT_WARM_START_SPEEDUP:.0f}x"
    )


def test_cold_1000_service_batch_stays_interactive():
    """The id-compacted core must not regress the 1000-service cold
    serve: fresh service, one mixed batch, well under a second of work
    gated at ~10x measured headroom."""
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=1000), seed=2021
    ).build_ecosystem()
    workload = [
        LevelReportQuery(),
        MeasurementQuery(),
        EdgeSummaryQuery(),
    ]
    start = time.perf_counter()
    service = AnalysisService(ecosystem)
    service.execute_batch(workload)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, (
        f"1000-service cold batch took {elapsed:.2f}s; the indexed engine "
        "serves it in well under a second"
    )
