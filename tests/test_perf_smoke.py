"""Perf smoke gate: the paper-scale analysis must stay interactive.

Not a benchmark -- a tier-1-safe tripwire.  The indexed engine finishes the
full 201-service analysis (stages 1-4, dependency levels on both platforms,
forward closure, both edge families) in well under a second on any
hardware; the bound below is ~50x that, so it only fires on a gross
complexity regression (e.g. losing the inverted indexes or the coverage
memoization), not on a slow CI machine.  The real old-vs-new trajectory
lives in ``benchmarks/test_bench_scaling.py``.
"""

import time

from repro.core import ActFort
from repro.model.factors import Platform

#: Generous wall-clock ceiling for the full 201-service analysis.
SMOKE_BUDGET_SECONDS = 15.0


def test_201_service_full_analysis_stays_interactive(default_ecosystem):
    start = time.perf_counter()
    actfort = ActFort.from_ecosystem(default_ecosystem)
    tdg = actfort.tdg()
    for platform in (Platform.WEB, Platform.MOBILE):
        tdg.level_fractions(platform)
    actfort.potential_victims()
    tdg.strong_edges()
    # The full 201-service Couple File is output-bound (~200k records) and
    # lives in the scaling benchmark; here a slice of services keeps the
    # couple machinery on the smoke path without the combinatorial bill.
    for node in tdg.nodes[:20]:
        tdg.couples(node.service)
    elapsed = time.perf_counter() - start
    assert elapsed < SMOKE_BUDGET_SECONDS, (
        f"201-service analysis took {elapsed:.2f}s; the indexed engine "
        f"should finish in well under {SMOKE_BUDGET_SECONDS:.0f}s"
    )
