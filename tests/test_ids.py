"""The id-space contract: interner lifecycle and mask-backed parity.

Two halves:

- Hypothesis properties over :class:`repro.core.ids.Interner` pin the
  retirement semantics the whole id-compacted core leans on -- fresh
  maximum ids on re-add, retired ids never resurrected, decode answering
  for every id ever assigned -- across arbitrary 20-step
  intern/retire/re-intern sequences.
- A differential suite pins the interned engine's answers bit-for-bit
  against :class:`repro.core.reference.ReferenceTDG` (the seed-semantics
  oracle) on the golden default catalog, so the bitmask joins provably
  compute the same Definitions 1-2 relations the frozenset scans did.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.ids import (
    FACTOR_IDS,
    Interner,
    SignatureInterner,
    factor_mask,
    factors_from_mask,
    iter_ids,
    mask_of,
)
from repro.core.reference import ReferenceTDG
from repro.core.tdg import TransformationDependencyGraph
from repro.model.attacker import AttackerProfile
from repro.model.factors import CredentialFactor, Platform

# ----------------------------------------------------------------------
# Factor-id table and mask primitives
# ----------------------------------------------------------------------


def test_factor_ids_are_dense_enum_order():
    assert sorted(FACTOR_IDS.values()) == list(range(len(CredentialFactor)))
    for factor, position in FACTOR_IDS.items():
        assert list(CredentialFactor)[position] is factor


def test_factor_mask_round_trip():
    signature = frozenset(
        {CredentialFactor.PASSWORD, CredentialFactor.SMS_CODE}
    )
    assert factors_from_mask(factor_mask(signature)) == signature
    assert factor_mask(()) == 0
    assert factors_from_mask(0) == frozenset()


def test_iter_ids_lowest_first():
    assert list(iter_ids(0)) == []
    assert list(iter_ids(mask_of([5, 0, 63, 2]))) == [0, 2, 5, 63]


# ----------------------------------------------------------------------
# Interner lifecycle (Hypothesis)
# ----------------------------------------------------------------------

#: intern/retire steps over a small name alphabet -- small on purpose,
#: so 20-step sequences revisit names and exercise re-interning.
_steps = st.lists(
    st.tuples(
        st.sampled_from(["intern", "retire"]),
        st.sampled_from(["a", "b", "c", "d", "e"]),
    ),
    min_size=1,
    max_size=20,
)


def _replay(steps):
    """Run a step sequence; returns the interner and the live model."""
    interner = Interner()
    live = {}
    for action, key in steps:
        if action == "intern":
            live[key] = interner.intern(key)
        elif key in live:
            interner.retire(key)
            del live[key]
    return interner, live


@given(_steps)
@settings(max_examples=200, deadline=None)
def test_interner_ids_monotone_and_never_resurrected(steps):
    interner = Interner()
    live = {}
    ever_assigned = []
    for action, key in steps:
        if action == "intern":
            assigned = interner.intern(key)
            if key in live:
                # Idempotent while live.
                assert assigned == live[key]
            else:
                # Fresh keys get a fresh maximum -- never a retired id.
                assert assigned == len(ever_assigned)
                ever_assigned.append(key)
            live[key] = assigned
            assert interner.latest_id(key) == assigned
        elif key in live:
            retired = interner.retire(key)
            assert retired == live.pop(key)
            assert key not in interner
            with pytest.raises(KeyError):
                interner.id_of(key)
    assert len(interner) == len(live)
    assert interner.high_water == len(ever_assigned)
    # Decode answers for every id ever assigned, retired or not.
    for assigned, key in enumerate(ever_assigned):
        assert interner.decode(assigned) == key


@given(_steps)
@settings(max_examples=200, deadline=None)
def test_decode_encode_identity_on_live_keys(steps):
    interner, live = _replay(steps)
    keys = frozenset(live)
    mask = interner.encode(keys)
    assert interner.decode_mask(mask) == keys
    assert mask == interner.live_mask()
    # Ordered decode is first-intern order.
    ordered = interner.decode_mask_ordered(mask)
    assert frozenset(ordered) == keys
    assert [interner.id_of(key) for key in ordered] == sorted(
        live[key] for key in keys
    )
    # encode_live skips what encode raises on.
    assert interner.encode_live(list(keys) + ["never-interned"]) == mask


@given(_steps)
@settings(max_examples=100, deadline=None)
def test_re_added_keys_sort_after_survivors(steps):
    """A retired-then-re-added key takes a fresh maximum id, so it
    enumerates after every surviving key -- the insertion-order contract
    the stream cursors watermark against."""
    interner, live = _replay(steps)
    before = dict(live)
    for key in list(before):
        interner.retire(key)
        fresh = interner.intern(key)
        assert fresh > max(before.values())
        before[key] = fresh


def test_signature_interner_containing_postings():
    sigs = SignatureInterner()
    pw = frozenset({CredentialFactor.PASSWORD})
    pw_sms = frozenset({CredentialFactor.PASSWORD, CredentialFactor.SMS_CODE})
    email = frozenset({CredentialFactor.EMAIL_CODE})
    ids = [sigs.intern(sig) for sig in (pw, pw_sms, email)]
    assert sigs.containing(CredentialFactor.PASSWORD) == mask_of(ids[:2])
    assert sigs.containing(CredentialFactor.SMS_CODE) == mask_of([ids[1]])
    assert sigs.containing(CredentialFactor.U2F_KEY) == 0
    # Idempotent re-intern does not double-set bits.
    assert sigs.intern(pw) == ids[0]
    assert sigs.containing(CredentialFactor.PASSWORD) == mask_of(ids[:2])


# ----------------------------------------------------------------------
# Differential: interned engine vs the seed-semantics oracle
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_pair():
    # The 101 doubling tier: big enough that every posting shape occurs,
    # small enough that the oracle's quadratic weak-edge scan stays in
    # test time (the full default catalog is exercised by
    # ``tests/test_tdg_equivalence.py``).
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=101), seed=2021
    ).build_ecosystem()
    attacker = AttackerProfile.baseline()
    nodes = tuple(
        TransformationDependencyGraph.node_from_profile(p) for p in ecosystem
    )
    return (
        TransformationDependencyGraph(nodes, attacker),
        ReferenceTDG(nodes, attacker),
    )


def test_parents_match_reference_oracle(golden_pair):
    indexed, reference = golden_pair
    for node in reference.nodes:
        service = node.service
        assert indexed.full_capacity_parents(
            service
        ) == reference.full_capacity_parents(service), service
        assert indexed.half_capacity_parents(
            service
        ) == reference.half_capacity_parents(service), service


def test_edges_match_reference_oracle(golden_pair):
    indexed, reference = golden_pair
    assert frozenset(indexed.strong_edges()) == reference.strong_edges()
    assert (
        frozenset(indexed.iter_weak_edges()) == reference.weak_edges()
    )


def test_levels_match_reference_oracle(golden_pair):
    indexed, reference = golden_pair
    for platform in (Platform.WEB, Platform.MOBILE):
        assert indexed.dependency_levels(
            platform
        ) == reference.dependency_levels(platform), platform


def test_parent_masks_decode_to_parent_sets(golden_pair):
    """The mask accessors are the frozenset accessors, bit for bit."""
    indexed, reference = golden_pair
    eco = indexed.ecosystem_index()
    for node in reference.nodes:
        service = node.service
        assert eco.decode_mask(
            indexed.full_capacity_parents_mask(service)
        ) == indexed.full_capacity_parents(service)
        assert eco.decode_mask(
            indexed.half_capacity_parents_mask(service)
        ) == indexed.half_capacity_parents(service)
