"""Full-pipeline integration tests on the deployed seed ecosystem.

These exercise the complete loop the paper describes: probe the live
services, build the TDG, generate a chain, intercept over the air, execute
the chain, and verify the defense transforms actually stop the executed
attack (not just the analysis).
"""

import pytest

from repro.attack.executor import ChainExecutor
from repro.attack.interception import SnifferInterception
from repro.attack.scenarios import deploy_seed_ecosystem
from repro.catalog.builder import CatalogBuilder
from repro.catalog.seeds import seed_profiles
from repro.catalog.spec import CatalogSpec
from repro.core import ActFort
from repro.defense.builtin_auth import BuiltinAuthUpgrade
from repro.model.factors import Platform as PL
from repro.telecom.cipher import CrackModel
from repro.telecom.network import RadioTech
from repro.telecom.sniffer import OsmocomSniffer


class TestProbeToExecutionPipeline:
    def test_probe_built_chain_executes(self):
        """Chains derived from *probe observations* (not ground-truth
        profiles) must execute successfully -- the full ActFort loop."""
        deployed = deploy_seed_ecosystem(seed=31)
        victim = deployed.victim(0)
        actfort = ActFort.from_internet(deployed.internet)
        chain = actfort.attack_chain("alipay", platform=PL.MOBILE)
        assert chain is not None
        sniffer = OsmocomSniffer(
            deployed.network,
            deployed.cell_of(victim),
            monitors=16,
            crack_model=CrackModel(rng=deployed.seeds.stream("it-crack")),
        )
        executor = ChainExecutor(
            deployed, SnifferInterception(sniffer, deployed.clock)
        )
        result = executor.execute(chain, victim.cellphone_number)
        assert result.success

    def test_every_reachable_seed_target_is_executable(self):
        """For each seed service the strategy engine claims is reachable,
        the executor must actually take it over (chains are sound)."""
        deployed = deploy_seed_ecosystem(seed=17)
        victim = deployed.victim(0)
        provider = deployed.internet.email_provider_for(victim.email_address)
        actfort = ActFort.from_ecosystem(deployed.ecosystem)
        closure = actfort.strategy().forward_closure(email_provider=provider)
        failures = []
        for target in sorted(closure.compromised):
            fresh = deploy_seed_ecosystem(seed=17)
            fresh_victim = fresh.victim(0)
            fresh_actfort = ActFort.from_ecosystem(fresh.ecosystem)
            chain = fresh_actfort.attack_chain(
                target, email_provider=provider
            )
            if chain is None:
                failures.append((target, "no chain"))
                continue
            sniffer = OsmocomSniffer(
                fresh.network,
                fresh.cell_of(fresh_victim),
                monitors=16,
                crack_model=CrackModel(rng=fresh.seeds.stream("sound")),
            )
            executor = ChainExecutor(
                fresh, SnifferInterception(sniffer, fresh.clock, max_attempts=6)
            )
            result = executor.execute(chain, fresh_victim.cellphone_number)
            if not result.success:
                failures.append((target, result.failure_reason))
        assert not failures, failures

    def test_builtin_auth_stops_executed_attack(self):
        """Defense-in-action: deploy the *upgraded* profiles and verify the
        executed chain (not just the analysis) dies."""
        spec = CatalogSpec(
            total_services=len(seed_profiles()), victims=4, cells=1
        )
        baseline_eco = CatalogBuilder(spec, seed=23).build_ecosystem()
        upgraded_eco = BuiltinAuthUpgrade().apply(baseline_eco)
        deployed = CatalogBuilder(spec, seed=23).deploy(
            ecosystem=upgraded_eco, victim_tech=RadioTech.GSM
        )
        actfort = ActFort.from_ecosystem(upgraded_eco)
        assert actfort.attack_chain("baidu_wallet") is None
        assert actfort.potential_victims().compromised == frozenset()
        # Radio silence: no OTP SMS ever transits the air.
        victim = deployed.victim(0)
        wallet = deployed.internet.service("baidu_wallet")
        from repro.model.factors import CredentialFactor as CF
        from repro.model.account import AuthPurpose as AP
        from repro.websim.errors import WebSimError

        with pytest.raises(WebSimError):
            wallet.request_otp(
                victim.cellphone_number, CF.SMS_CODE, AP.SIGN_IN
            )

    def test_deterministic_deployments(self):
        a = deploy_seed_ecosystem(seed=5)
        b = deploy_seed_ecosystem(seed=5)
        assert [v.cellphone_number for v in a.victims] == [
            v.cellphone_number for v in b.victims
        ]
        assert a.ecosystem.service("alipay") == b.ecosystem.service("alipay")
