"""The delegating shims must warn *at the caller's line*.

Every legacy entry point (``MeasurementStudy.run_*``,
``DefenseEvaluation.evaluate*``, ``RolloutPlanner.replay``) emits a
``DeprecationWarning`` with ``stacklevel=2``, so the reported origin is
the caller's own source line -- not the shim module's.  These tests pin
that contract: the recorded warning must name *this* file and the exact
line of the shim call, which is what makes the warnings actionable for
downstream code hunting its own legacy call sites.
"""

from __future__ import annotations

import warnings

from repro.analysis.measurement import MeasurementStudy
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.defense.evaluation import DefenseEvaluation
from repro.dynamic.rollout import RolloutPlanner, email_hardening_rollout


def build_ecosystem(size=12, seed=4021):
    return CatalogBuilder(
        CatalogSpec(total_services=size), seed=seed
    ).build_ecosystem()


def assert_warns_here(invoke):
    """Run the ``invoke`` lambda and assert its DeprecationWarning is
    attributed to the lambda's own line (the shim's caller), not to the
    shim module."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        invoke()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert deprecations, "shim emitted no DeprecationWarning"
    origin = deprecations[0]
    assert origin.filename == __file__, (
        f"warning attributed to {origin.filename}, not the caller "
        f"({__file__}); shims must warn with stacklevel=2"
    )
    call_line = invoke.__code__.co_firstlineno
    assert origin.lineno == call_line, (
        f"warning attributed to line {origin.lineno}, expected the "
        f"caller's line {call_line}"
    )


def test_measurement_shim_warns_at_caller():
    ecosystem = build_ecosystem()
    study = MeasurementStudy()
    assert_warns_here(lambda: study.run_on_ecosystem(ecosystem))


def test_measurement_batch_shim_warns_at_caller():
    ecosystem = build_ecosystem()
    study = MeasurementStudy()
    assert_warns_here(lambda: study.run_batch(ecosystem, ()))


def test_defense_evaluation_shim_warns_at_caller():
    ecosystem = build_ecosystem()
    evaluation = DefenseEvaluation(ecosystem)
    assert_warns_here(lambda: evaluation.evaluate(defenses={}))


def test_rollout_planner_shim_warns_at_caller():
    ecosystem = build_ecosystem()
    steps = email_hardening_rollout(ecosystem)[:1]
    planner = RolloutPlanner(ecosystem)
    assert_warns_here(lambda: planner.replay(steps))
