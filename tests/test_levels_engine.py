"""Units for the carved-out levels subsystem (`repro.levels`).

The heavy equivalence guarantees live in the differential suites
(``test_tdg_equivalence.py`` against the brute-force oracle,
``test_dynamic_equivalence.py`` against per-mutation rebuilds); this file
covers the engine's seams directly: scratch builds vs the reference
fixpoints, targeted removal re-derivation, the memoized parents map, the
factor depth aggregates, platform threading, and the streaming Couple
File enumeration.
"""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.reference import ReferenceTDG
from repro.core.tdg import TransformationDependencyGraph
from repro.dynamic import DynamicAnalysisSession, RemoveService
from repro.levels import DependencyLevel, FactorDepthBuckets
from repro.model.attacker import AttackerProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import Platform as PL


def _catalog(size=24, seed=777):
    return CatalogBuilder(
        CatalogSpec(total_services=size), seed=seed
    ).build_ecosystem()


@pytest.fixture(scope="module")
def graph():
    return TransformationDependencyGraph.from_ecosystem(
        _catalog(), AttackerProfile.baseline()
    )


@pytest.fixture(scope="module")
def reference():
    return ReferenceTDG.from_ecosystem(_catalog(), AttackerProfile.baseline())


# ----------------------------------------------------------------------
# Scratch fixpoints vs the brute-force reference
# ----------------------------------------------------------------------


class TestScratchFixpoints:
    def test_joint_depths_match_reference_rounds(self, graph, reference):
        assert graph.levels_engine().joint_depths() == reference._depths()

    def test_pure_full_depths_match_reference_rounds(self, graph, reference):
        assert (
            graph.levels_engine().pure_full_depths()
            == reference._pure_full_depths()
        )

    def test_direct_services_match_reference(self, graph, reference):
        assert graph.levels_engine().direct_services() == frozenset(
            node.service
            for node in reference.nodes
            if reference.is_direct(node.service)
        )

    def test_parents_map_matches_per_service_queries(self, graph):
        engine = graph.levels_engine()
        parents = engine.full_capacity_parents_map()
        assert set(parents) == {node.service for node in graph.nodes}
        for service, expected in parents.items():
            assert graph.full_capacity_parents(service) == expected

    def test_depth_zero_is_exactly_the_direct_set(self, graph):
        engine = graph.levels_engine()
        depths = engine.joint_depths()
        zero = {s for s, d in depths.items() if d == 0}
        assert zero == set(engine.direct_services())
        # Pure-full chains are a restriction of joint pooling, so every
        # pure-full depth bounds the joint depth from above.
        pure = engine.pure_full_depths()
        assert set(pure) <= set(depths)
        for service, depth in pure.items():
            assert depths[service] <= depth


# ----------------------------------------------------------------------
# Incremental re-derivation under targeted removals
# ----------------------------------------------------------------------


class TestRemovalRederivation:
    def test_removing_a_depth_zero_hub_rederives_the_cone(self):
        session = DynamicAnalysisSession(_catalog(size=30, seed=555))
        graph = session.graph()
        engine = graph.levels_engine()
        depths = engine.joint_depths()
        hubs = sorted(s for s, d in depths.items() if d == 0)
        assert hubs, "catalog should have directly compromisable services"
        session.mutate(RemoveService(hubs[0]))
        fresh = session.rebuild()
        assert (
            engine.joint_depths() == fresh.levels_engine().joint_depths()
        )
        assert (
            engine.pure_full_depths()
            == fresh.levels_engine().pure_full_depths()
        )
        for platform in (PL.WEB, PL.MOBILE):
            assert graph.dependency_levels(
                platform
            ) == fresh.dependency_levels(platform)

    def test_removed_service_disappears_from_every_map(self):
        session = DynamicAnalysisSession(_catalog(size=20, seed=99))
        graph = session.graph()
        engine = graph.levels_engine()
        engine.joint_depths()
        victim = next(iter(engine.joint_depths()))
        session.mutate(RemoveService(victim))
        assert victim not in engine.joint_depths()
        assert victim not in engine.pure_full_depths()
        assert victim not in engine.full_capacity_parents_map()
        assert victim not in engine.direct_services()
        for platform in (PL.WEB, PL.MOBILE):
            assert victim not in graph.dependency_levels(platform)


# ----------------------------------------------------------------------
# Platform threading
# ----------------------------------------------------------------------


class TestPlatformThreading:
    def test_is_direct_platform_filter_matches_coverage(self, graph):
        for node in graph.nodes:
            for platform in (None, PL.WEB, PL.MOBILE):
                expected = any(
                    graph.coverage(node, path).is_direct
                    for path in node.paths_on(platform)
                )
                assert graph.is_direct(node.service, platform) == expected

    def test_platform_paths_are_memoized_once(self, graph):
        engine = graph.levels_engine()
        first = engine._paths_on(graph.nodes[0].service, PL.WEB)
        assert engine._paths_on(graph.nodes[0].service, PL.WEB) is first

    def test_unknown_service_raises_key_error(self, graph):
        with pytest.raises(KeyError):
            graph.is_direct("no-such-service")


# ----------------------------------------------------------------------
# Batch report
# ----------------------------------------------------------------------


def test_levels_report_matches_per_platform_fractions(graph):
    report = graph.levels_report((PL.WEB, PL.MOBILE))
    assert set(report) == {PL.WEB, PL.MOBILE}
    for platform, fractions in report.items():
        assert fractions == graph.level_fractions(platform)
        assert set(fractions) == set(DependencyLevel)


# ----------------------------------------------------------------------
# Factor depth aggregates
# ----------------------------------------------------------------------


class TestFactorDepthBuckets:
    def test_min_excluding_distinguishes_the_sole_minimum(self):
        buckets = FactorDepthBuckets()
        assert buckets.move("a", CF.REAL_NAME, None, 2)
        assert buckets.move("b", CF.REAL_NAME, None, 5)
        assert buckets.min_excluding(CF.REAL_NAME, "x") == 2
        assert buckets.min_excluding(CF.REAL_NAME, "a") == 5
        assert buckets.min_excluding(CF.REAL_NAME, "b") == 2

    def test_crowded_minimum_ignores_exclusion(self):
        buckets = FactorDepthBuckets()
        buckets.move("a", CF.REAL_NAME, None, 1)
        assert buckets.move("b", CF.REAL_NAME, None, 1)
        for excluded in ("a", "b", "x"):
            assert buckets.min_excluding(CF.REAL_NAME, excluded) == 1

    def test_summary_change_signal_gates_propagation(self):
        buckets = FactorDepthBuckets()
        buckets.move("a", CF.REAL_NAME, None, 0)
        buckets.move("b", CF.REAL_NAME, None, 0)
        # A deep provider moving cannot change any consumer's answer.
        assert not buckets.move("c", CF.REAL_NAME, None, 4)
        assert not buckets.move("c", CF.REAL_NAME, 4, 6)
        assert not buckets.move("c", CF.REAL_NAME, 6, None)
        # Removing one of two at-minimum providers does change it.
        assert buckets.move("a", CF.REAL_NAME, 0, None)
        assert buckets.min_excluding(CF.REAL_NAME, "b") is None

    def test_empty_factor_has_no_summary(self):
        buckets = FactorDepthBuckets()
        assert buckets.summary(CF.REAL_NAME) is None
        assert buckets.min_excluding(CF.REAL_NAME, "a") is None


# ----------------------------------------------------------------------
# Streaming Couple File enumeration
# ----------------------------------------------------------------------


class TestSignatureParentsView:
    def test_retract_counts_each_affected_signature_exactly_once(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            _catalog(size=20, seed=5), AttackerProfile.baseline()
        )
        for node in graph.nodes:
            graph.full_capacity_parents(node.service)
            graph.half_capacity_parents(node.service)
        view = graph.parents_view()
        snapshot = view.snapshot()
        assert snapshot
        factor = next(iter(next(iter(snapshot))))
        expected = sum(1 for signature in snapshot if factor in signature)
        view.retract(frozenset({factor}))
        stats = view.stats()
        # Full and half member sets retract together: one count per
        # signature, not one per cache.
        assert stats["retractions"] == expected
        assert stats["entries"] == len(snapshot) - expected

    def test_rejoins_after_mutations_equal_scratch_joins(self):
        from repro.dynamic import MutationStream

        session = DynamicAnalysisSession(_catalog(size=26, seed=31))
        graph = session.graph()
        for node in graph.nodes:
            graph.full_capacity_parents(node.service)
            graph.half_capacity_parents(node.service)
        view = graph.parents_view()
        before = view.stats()
        assert before["entries"] > 0 and before["retractions"] == 0

        stream = MutationStream(seed=8)
        for _ in range(4):
            session.mutate(stream.next_mutation(session.ecosystem))
        for node in graph.nodes:
            graph.full_capacity_parents(node.service)
        after = view.stats()
        assert after["derivations"] >= before["derivations"]
        # The re-joined views must equal scratch joins.
        attacker_view = graph.attacker_index()
        for signature, (full, half) in view.snapshot().items():
            provider_sets = [
                attacker_view.static_provider_set(factor)
                for factor in signature
            ]
            scratch = frozenset.intersection(*provider_sets)
            assert full == scratch
            assert half == frozenset.union(*provider_sets) - scratch


class TestIterCouples:
    def test_streams_exactly_the_concatenated_couple_files(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            _catalog(size=26, seed=321), AttackerProfile.baseline()
        )
        streamed = list(graph.iter_couples())
        expected = [
            record
            for node in graph.nodes
            for record in graph.couples(node.service)
        ]
        assert streamed == expected

    def test_does_not_populate_the_per_service_cache(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            _catalog(size=18, seed=11), AttackerProfile.baseline()
        )
        for _record in graph.iter_couples():
            pass
        assert not graph._couples_cache

    def test_reuses_memoized_couple_files_when_present(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            _catalog(size=18, seed=12), AttackerProfile.baseline()
        )
        warm = graph.nodes[0].service
        graph.couples(warm)
        streamed = [r for r in graph.iter_couples() if r.target == warm]
        assert tuple(streamed) == graph.couples(warm)

    def test_couple_file_delegates_to_the_stream(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            _catalog(size=18, seed=13), AttackerProfile.baseline()
        )
        assert graph.couple_file() == tuple(graph.iter_couples())
