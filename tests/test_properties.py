"""Property-based tests on core invariants.

Random ecosystems are generated with hypothesis and the structural
invariants of the TDG and strategy engine are checked on each:

- forward closure is monotone in the attacker profile and in the seed set,
- every closure entry's chained factors come from strictly earlier entries,
- full-capacity parents are exactly the single-node covers,
- robust-factor paths never become satisfiable,
- dependency-level fractions are well-formed,
- exposing more information never removes strong edges or shrinks the PAV,
- hardening a path never lowers any service's dependency level,
- couple records never contain a redundant member,
- the indexed engine agrees with the brute-force reference.
"""

import dataclasses
from typing import List

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.reference import ReferenceTDG
from repro.core.strategy import StrategyEngine
from repro.core.tdg import DependencyLevel, TransformationDependencyGraph
from repro.model.account import AuthPath, AuthPurpose, MaskSpec, ServiceProfile
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL

_FACTOR_POOL = [
    CF.SMS_CODE,
    CF.CELLPHONE_NUMBER,
    CF.EMAIL_CODE,
    CF.EMAIL_ADDRESS,
    CF.CITIZEN_ID,
    CF.REAL_NAME,
    CF.SECURITY_QUESTION,
    CF.FACE_SCAN,
    CF.U2F_KEY,
]

_INFO_POOL = [
    PI.REAL_NAME,
    PI.CITIZEN_ID,
    PI.CELLPHONE_NUMBER,
    PI.EMAIL_ADDRESS,
    PI.MAILBOX_ACCESS,
    PI.SECURITY_ANSWERS,
    PI.ADDRESS,
]


@st.composite
def ecosystems(draw) -> Ecosystem:
    count = draw(st.integers(min_value=2, max_value=8))
    profiles: List[ServiceProfile] = []
    for index in range(count):
        name = f"svc{index}"
        path_count = draw(st.integers(min_value=1, max_value=3))
        paths = []
        for p in range(path_count):
            factors = draw(
                st.sets(
                    st.sampled_from(_FACTOR_POOL), min_size=1, max_size=3
                )
            )
            paths.append(
                AuthPath(
                    service=name,
                    platform=PL.WEB,
                    purpose=AuthPurpose.PASSWORD_RESET,
                    factors=frozenset(factors),
                )
            )
        exposed = draw(
            st.sets(st.sampled_from(_INFO_POOL), min_size=0, max_size=5)
        )
        # Occasionally expose a masked citizen ID or bankcard so couples
        # arising from Insight 4's combining attack are also exercised.
        masks = {}
        for kind in (PI.CITIZEN_ID, PI.BANKCARD_NUMBER):
            if draw(st.booleans()) and draw(st.booleans()):
                exposed.add(kind)
                masks[(PL.WEB, kind)] = MaskSpec(
                    reveal_prefix=draw(st.integers(min_value=0, max_value=12)),
                    reveal_suffix=draw(st.integers(min_value=0, max_value=9)),
                )
        profiles.append(
            ServiceProfile(
                name=name,
                domain=draw(
                    st.sampled_from(["email", "fintech", "media", "travel"])
                ),
                auth_paths=tuple(paths),
                exposed_info={PL.WEB: frozenset(exposed)},
                mask_specs=masks,
            )
        )
    return Ecosystem(profiles)


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(eco=ecosystems())
def test_closure_monotone_in_attacker(eco):
    """A strictly weaker attacker never compromises more."""
    strong = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    weak = TransformationDependencyGraph.from_ecosystem(
        eco,
        AttackerProfile.baseline().without_capability(
            AttackerCapability.SMS_INTERCEPTION
        ),
    )
    strong_pav = StrategyEngine(strong).forward_closure().compromised
    weak_pav = StrategyEngine(weak).forward_closure().compromised
    assert weak_pav <= strong_pav


@_SETTINGS
@given(eco=ecosystems(), data=st.data())
def test_closure_monotone_in_seed(eco, data):
    """Seeding the OAAS never shrinks the PAV."""
    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    engine = StrategyEngine(tdg)
    base = engine.forward_closure().compromised
    seed = data.draw(st.sampled_from(sorted(n.service for n in tdg.nodes)))
    seeded = engine.forward_closure(initially_compromised=[seed]).compromised
    assert base <= seeded
    assert seed in seeded


@_SETTINGS
@given(eco=ecosystems())
def test_closure_entries_are_causally_ordered(eco):
    """Every chained factor's source fell in a strictly earlier round."""
    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    closure = StrategyEngine(tdg).forward_closure()
    rounds = {entry.service: entry.round for entry in closure.entries}
    for entry in closure.entries:
        for source in entry.factor_sources.values():
            if source.startswith("<"):
                continue
            for provider in source.split("+"):
                assert rounds[provider] < entry.round


@_SETTINGS
@given(eco=ecosystems())
def test_full_capacity_parents_really_cover(eco):
    """Definition 1: a full parent alone covers some path's residual."""
    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    for node in tdg.nodes:
        for parent_name in tdg.full_capacity_parents(node.service):
            parent = tdg.node(parent_name)
            covered_some_path = False
            for path in node.takeover_paths:
                cover = tdg.coverage(node, path)
                if cover.is_blocked or not cover.residual:
                    continue
                if all(
                    tdg.provides(parent, factor, path)
                    for factor in cover.residual
                ):
                    covered_some_path = True
            assert covered_some_path


@_SETTINGS
@given(eco=ecosystems())
def test_robust_paths_never_chainable(eco):
    """Insight 5 as an invariant over random ecosystems."""
    from repro.model.factors import is_robust_factor

    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    for node in tdg.nodes:
        for path in node.takeover_paths:
            if any(is_robust_factor(f) for f in path.factors):
                assert tdg.coverage(node, path).is_blocked


@_SETTINGS
@given(eco=ecosystems())
def test_level_fractions_well_formed(eco):
    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    fractions = tdg.level_fractions(PL.WEB)
    assert set(fractions) == set(DependencyLevel)
    for value in fractions.values():
        assert 0.0 <= value <= 1.0
    # Every service lands in at least one category, so the sum is >= 1.
    assert sum(fractions.values()) >= 1.0 - 1e-9


@_SETTINGS
@given(eco=ecosystems())
def test_chain_reconstruction_consistent_with_closure(eco):
    """attack_chain succeeds exactly for closure-compromised targets, and
    its steps walk only compromised services."""
    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    engine = StrategyEngine(tdg)
    closure = engine.forward_closure()
    for node in tdg.nodes:
        chain = engine.attack_chain(node.service)
        if node.service in closure.compromised:
            assert chain is not None
            assert set(chain.services) <= closure.compromised
            assert chain.services[-1] == node.service
        else:
            assert chain is None


# ----------------------------------------------------------------------
# Monotonicity invariants of the indexed engine
# ----------------------------------------------------------------------

#: Less-safe categories first; SAFE is the maximum.
_LEVEL_RANK = {
    DependencyLevel.DIRECT: 0,
    DependencyLevel.ONE_LAYER: 1,
    DependencyLevel.TWO_LAYER_FULL: 2,
    DependencyLevel.TWO_LAYER_MIXED: 3,
    DependencyLevel.SAFE: 4,
}


def _min_rank(levels) -> int:
    return min(_LEVEL_RANK[level] for level in levels)


@_SETTINGS
@given(eco=ecosystems(), data=st.data())
def test_adding_info_kind_never_removes_edges(eco, data):
    """Exposing one more info kind on one node is monotone: strong edges
    and the PAV can only grow (unsatisfiable factors can become residual,
    never the reverse)."""
    attacker = AttackerProfile.baseline()
    base = TransformationDependencyGraph.from_ecosystem(eco, attacker)
    target = data.draw(st.sampled_from(sorted(n.service for n in base.nodes)))
    kind = data.draw(st.sampled_from(_INFO_POOL))
    augmented_nodes = [
        dataclasses.replace(node, pia=node.pia | {kind})
        if node.service == target
        else node
        for node in base.nodes
    ]
    augmented = TransformationDependencyGraph(augmented_nodes, attacker)
    assert base.strong_edges() <= augmented.strong_edges()
    base_pav = StrategyEngine(base).forward_closure().compromised
    augmented_pav = StrategyEngine(augmented).forward_closure().compromised
    assert base_pav <= augmented_pav


@_SETTINGS
@given(eco=ecosystems(), data=st.data())
def test_hardening_a_path_never_lowers_a_dependency_level(eco, data):
    """Adding a robust factor to one path moves every service's minimal
    dependency category toward SAFE, never away from it."""
    attacker = AttackerProfile.baseline()
    base = TransformationDependencyGraph.from_ecosystem(eco, attacker)
    target = data.draw(st.sampled_from(sorted(n.service for n in base.nodes)))
    node = base.node(target)
    path_index = data.draw(
        st.integers(min_value=0, max_value=len(node.takeover_paths) - 1)
    )
    robust = data.draw(
        st.sampled_from([CF.TRUSTED_DEVICE, CF.U2F_KEY, CF.AUTHENTICATOR_TOTP])
    )
    hardened_paths = tuple(
        dataclasses.replace(path, factors=path.factors | {robust})
        if index == path_index
        else path
        for index, path in enumerate(node.takeover_paths)
    )
    hardened_nodes = [
        dataclasses.replace(n, takeover_paths=hardened_paths)
        if n.service == target
        else n
        for n in base.nodes
    ]
    hardened = TransformationDependencyGraph(hardened_nodes, attacker)
    base_levels = base.dependency_levels(PL.WEB)
    hardened_levels = hardened.dependency_levels(PL.WEB)
    assert set(base_levels) == set(hardened_levels)
    for service, levels in base_levels.items():
        assert _min_rank(hardened_levels[service]) >= _min_rank(levels), service


@_SETTINGS
@given(eco=ecosystems())
def test_couples_never_contain_a_redundant_member(eco):
    """Definition 3 minimality: dropping any couple member must break the
    joint cover of the record's path."""
    tdg = TransformationDependencyGraph.from_ecosystem(
        eco, AttackerProfile.baseline()
    )
    for node in tdg.nodes:
        for record in tdg.couples(node.service):
            assert len(record.providers) >= 2
            cover = tdg.coverage(node, record.path)
            for member in record.providers:
                rest = record.providers - {member}
                assert not all(
                    tdg._pool_provides(factor, record.path, rest)
                    for factor in cover.residual
                ), (node.service, record)


# ----------------------------------------------------------------------
# Incremental engine: mutation/rebuild equivalence
# ----------------------------------------------------------------------

_MUTATION_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_MUTATION_SETTINGS
@given(
    stream_seed=st.integers(min_value=0, max_value=10**6),
    catalog_seed=st.integers(min_value=0, max_value=10**4),
    size=st.integers(min_value=10, max_value=16),
)
def test_incremental_session_equals_rebuild_under_mutation_streams(
    stream_seed, catalog_seed, size
):
    """A random 20-step mutation sequence (including service and
    auth-path removals) leaves the incremental session's levels, depth
    fixpoints, parents, and edge sets equal to a fresh
    TransformationDependencyGraph at every step."""
    from repro.catalog.builder import CatalogBuilder
    from repro.catalog.spec import CatalogSpec
    from repro.dynamic import DynamicAnalysisSession, MutationStream

    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=size), seed=catalog_seed
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem)
    stream = MutationStream(seed=stream_seed)
    for step in range(20):
        mutation = stream.next_mutation(session.ecosystem)
        session.mutate(mutation)
        maintained = session.graph()
        fresh = session.rebuild()
        context = (step, mutation.describe())
        for platform in (PL.WEB, PL.MOBILE):
            assert maintained.dependency_levels(
                platform
            ) == fresh.dependency_levels(platform), context
        # Incremental depth maps (both variants) == scratch recomputation.
        assert (
            maintained.levels_engine().joint_depths()
            == fresh.levels_engine().joint_depths()
        ), context
        assert (
            maintained.levels_engine().pure_full_depths()
            == fresh.levels_engine().pure_full_depths()
        ), context
        for node in fresh.nodes:
            assert maintained.full_capacity_parents(
                node.service
            ) == fresh.full_capacity_parents(node.service), context
            assert maintained.half_capacity_parents(
                node.service
            ) == fresh.half_capacity_parents(node.service), context
        assert maintained.strong_edges() == fresh.strong_edges(), context
        assert maintained.weak_edges() == fresh.weak_edges(), context


@_SETTINGS
@given(eco=ecosystems())
def test_indexed_engine_matches_reference_on_random_ecosystems(eco):
    """Hypothesis-driven differential check against the brute-force oracle
    (the seeded-catalog version lives in test_tdg_equivalence.py)."""
    attacker = AttackerProfile.baseline()
    indexed = TransformationDependencyGraph.from_ecosystem(eco, attacker)
    reference = ReferenceTDG.from_ecosystem(eco, attacker)
    assert indexed.strong_edges() == reference.strong_edges()
    assert indexed.weak_edges() == reference.weak_edges()
    for node in reference.nodes:
        assert indexed.couples(node.service) == reference.couples(node.service)
    assert indexed.dependency_levels(PL.WEB) == reference.dependency_levels(
        PL.WEB
    )
