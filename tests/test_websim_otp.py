"""Unit tests for OTP issuance, expiry, rate limits and attempt budgets."""

import pytest

from repro.utils.clock import Clock
from repro.websim.errors import OTPError, RateLimited
from repro.websim.otp import OTPManager, OTPPolicy


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def manager(clock):
    return OTPManager(clock, OTPPolicy(ttl=300.0, resend_interval=60.0))


class TestPolicyValidation:
    def test_too_few_digits_rejected(self):
        with pytest.raises(ValueError):
            OTPPolicy(digits=3)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError):
            OTPPolicy(ttl=0)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            OTPPolicy(max_attempts=0)


class TestIssueValidate:
    def test_valid_code_accepted_once(self, manager):
        code = manager.issue("13800000000", "password_reset")
        manager.validate("13800000000", "password_reset", code)
        with pytest.raises(OTPError):
            manager.validate("13800000000", "password_reset", code)

    def test_wrong_purpose_rejected(self, manager):
        """A sign-in code cannot be replayed into a reset flow."""
        code = manager.issue("13800000000", "sign_in")
        with pytest.raises(OTPError):
            manager.validate("13800000000", "password_reset", code)

    def test_wrong_code_rejected(self, manager):
        manager.issue("13800000000", "sign_in")
        with pytest.raises(OTPError):
            manager.validate("13800000000", "sign_in", "000000")

    def test_expired_code_rejected(self, manager, clock):
        code = manager.issue("13800000000", "sign_in")
        clock.advance(301.0)
        with pytest.raises(OTPError):
            manager.validate("13800000000", "sign_in", code)

    def test_code_has_policy_digits(self, manager):
        code = manager.issue("13800000000", "sign_in")
        assert len(code) == 6 and code.isdigit()

    def test_reissue_replaces_previous(self, manager, clock):
        first = manager.issue("13800000000", "sign_in")
        clock.advance(61.0)
        second = manager.issue("13800000000", "sign_in")
        if first != second:
            with pytest.raises(OTPError):
                manager.validate("13800000000", "sign_in", first)
        manager.validate("13800000000", "sign_in", second)


class TestRateLimiting:
    def test_rapid_reissue_rejected(self, manager):
        manager.issue("13800000000", "sign_in")
        with pytest.raises(RateLimited) as info:
            manager.issue("13800000000", "sign_in")
        assert info.value.retry_after > 0

    def test_reissue_allowed_after_window(self, manager, clock):
        manager.issue("13800000000", "sign_in")
        clock.advance(60.0)
        manager.issue("13800000000", "sign_in")

    def test_rate_limit_is_per_destination(self, manager):
        manager.issue("13800000000", "sign_in")
        manager.issue("13900000000", "sign_in")


class TestAttemptBudget:
    def test_code_burns_after_max_attempts(self, clock):
        manager = OTPManager(clock, OTPPolicy(max_attempts=2))
        code = manager.issue("138", "sign_in")
        with pytest.raises(OTPError):
            manager.validate("138", "sign_in", "badbad")
        with pytest.raises(OTPError):
            manager.validate("138", "sign_in", "badbad")
        # Even the right code is now dead.
        with pytest.raises(OTPError):
            manager.validate("138", "sign_in", code)


class TestPeek:
    def test_peek_does_not_consume(self, manager):
        code = manager.issue("138", "sign_in")
        assert manager.peek("138", "sign_in") == code
        manager.validate("138", "sign_in", code)

    def test_peek_expired_returns_none(self, manager, clock):
        manager.issue("138", "sign_in")
        clock.advance(500.0)
        assert manager.peek("138", "sign_in") is None

    def test_has_active(self, manager):
        assert not manager.has_active("138", "sign_in")
        manager.issue("138", "sign_in")
        assert manager.has_active("138", "sign_in")

    def test_issued_count(self, manager, clock):
        manager.issue("138", "sign_in")
        clock.advance(61)
        manager.issue("138", "sign_in")
        assert manager.issued_count == 2
