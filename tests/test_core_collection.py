"""Tests for ActFort stage 2: Personal Information Collection."""

import pytest

from tests.conftest import make_path

from repro.core.collection import (
    PersonalInfoCollection,
    exposure_table,
)
from repro.model.account import AuthPurpose as AP
from repro.model.account import MaskSpec, ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import InfoCategory
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


@pytest.fixture()
def collector():
    return PersonalInfoCollection()


def masked_profile():
    name = "masked"
    return ServiceProfile(
        name=name,
        domain="fintech",
        auth_paths=(
            make_path(name, PL.WEB, AP.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            make_path(name, PL.MOBILE, AP.SIGN_IN, CF.USERNAME, CF.PASSWORD),
        ),
        exposed_info={
            PL.WEB: frozenset(
                {PI.REAL_NAME, PI.CITIZEN_ID, PI.BANKCARD_NUMBER}
            ),
            PL.MOBILE: frozenset({PI.REAL_NAME, PI.ACQUAINTANCE_NAME}),
        },
        mask_specs={
            (PL.WEB, PI.CITIZEN_ID): MaskSpec(reveal_prefix=6),
            (PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=4),
        },
    )


class TestCollection:
    def test_complete_and_masked_split(self, collector):
        report = collector.collect_from_profile(masked_profile())
        complete = report.effective_kinds(complete_only=True)
        assert PI.REAL_NAME in complete
        assert PI.CITIZEN_ID not in complete
        masked_kinds = {item.kind for item in report.masked_items()}
        assert masked_kinds == {PI.CITIZEN_ID, PI.BANKCARD_NUMBER}

    def test_masked_positions_recorded(self, collector):
        report = collector.collect_from_profile(masked_profile())
        item = next(
            i for i in report.masked_items() if i.kind is PI.CITIZEN_ID
        )
        assert item.revealed_positions == frozenset(range(6))

    def test_kinds_per_platform(self, collector):
        report = collector.collect_from_profile(masked_profile())
        assert PI.ACQUAINTANCE_NAME in report.kinds_on(PL.MOBILE)
        assert PI.ACQUAINTANCE_NAME not in report.kinds_on(PL.WEB)

    def test_category_histogram(self, collector):
        report = collector.collect_from_profile(masked_profile())
        histogram = report.category_histogram()
        assert histogram[InfoCategory.IDENTITY] == 2  # name + citizen id
        assert histogram[InfoCategory.PROPERTY] == 1  # bankcard
        assert histogram[InfoCategory.RELATIONSHIP] == 1

    def test_exposure_table_counts_masked_kinds(self, collector):
        """Table I counts exposure whether or not the value is masked."""
        reports = {"masked": collector.collect_from_profile(masked_profile())}
        table = exposure_table(reports, PL.WEB)
        assert table[PI.CITIZEN_ID] == 1.0
        assert table[PI.DEVICE_TYPE] == 0.0

    def test_exposure_table_empty_platform_rejected(self, collector):
        import pytest

        with pytest.raises(ValueError):
            exposure_table({}, PL.WEB)

    def test_probe_and_profile_agree(self, collector):
        from repro.websim.crawler import ActFortProbe
        from repro.websim.internet import Internet

        profile = masked_profile()
        net = Internet()
        service = net.deploy(profile)
        observation = ActFortProbe(net).observe(service)
        from_probe = collector.collect_from_observation(observation)
        from_profile = collector.collect_from_profile(profile)
        assert from_probe.effective_kinds() == from_profile.effective_kinds()
        assert {i.kind for i in from_probe.masked_items()} == {
            i.kind for i in from_profile.masked_items()
        }
