"""Shared fixtures.

Expensive artifacts (the 201-service catalog, its ActFort analysis, the
deployed seed ecosystem) are session-scoped: they are deterministic pure
functions of their seeds, so sharing them across tests is safe and keeps
the suite fast.  Tests that mutate state (attack executions, deployments)
build their own instances.
"""

from __future__ import annotations

import pytest

from repro.catalog import CatalogBuilder, build_default_ecosystem
from repro.catalog.spec import CatalogSpec
from repro.catalog.seeds import seed_profiles
from repro.core import ActFort
from repro.model.account import AuthPath, AuthPurpose, ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL
from repro.model.identity import IdentityGenerator


def make_path(service, platform, purpose, *factors, linked=()):
    """Terse AuthPath constructor used across the suite."""
    return AuthPath(
        service=service,
        platform=platform,
        purpose=purpose,
        factors=frozenset(factors),
        linked_providers=frozenset(linked),
    )


def simple_profile(
    name="svc",
    domain="media",
    sms_reset=True,
    exposed=(PI.REAL_NAME, PI.CELLPHONE_NUMBER),
):
    """A minimal one-platform service profile."""
    paths = [
        make_path(name, PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD)
    ]
    if sms_reset:
        paths.append(
            make_path(
                name,
                PL.WEB,
                AuthPurpose.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
            )
        )
    return ServiceProfile(
        name=name,
        domain=domain,
        auth_paths=tuple(paths),
        exposed_info={PL.WEB: frozenset(exposed)},
    )


@pytest.fixture(scope="session")
def default_ecosystem():
    """The calibrated 201-service catalog (read-only)."""
    return build_default_ecosystem()


@pytest.fixture(scope="session")
def default_actfort(default_ecosystem):
    """ActFort over the default catalog (read-only)."""
    return ActFort.from_ecosystem(default_ecosystem)


@pytest.fixture(scope="session")
def seed_ecosystem_deployed():
    """A live seed-services-only deployment (tests must not mutate victim
    accounts destructively; attack tests deploy their own copies)."""
    spec = CatalogSpec(total_services=len(seed_profiles()), victims=8, cells=1)
    from repro.telecom.network import RadioTech

    return CatalogBuilder(spec, seed=2021).deploy(victim_tech=RadioTech.GSM)


@pytest.fixture()
def identity():
    """One deterministic identity."""
    return IdentityGenerator(seed=99).generate()


@pytest.fixture()
def identity_generator():
    """A fresh deterministic identity generator."""
    return IdentityGenerator(seed=1234)
