"""Tests for the Random Attack campaign and the markdown report."""

import pytest

from repro.analysis.report import full_report
from repro.attack.random_attack import RandomAttackCampaign
from repro.attack.recon import SocialEngineeringDatabase
from repro.attack.scenarios import deploy_seed_ecosystem
from repro.model.factors import Platform as PL


class TestRandomAttackCampaign:
    def test_campaign_compromises_harvested_marks(self):
        """Section II's random attack: everyone who fell for the phishing
        Wi-Fi loses their wallet account."""
        deployed = deploy_seed_ecosystem(seed=41)
        campaign = RandomAttackCampaign(
            deployed,
            cell_id="cell-0",
            target="baidu_wallet",
            platform=PL.MOBILE,
            wifi_hit_rate=1.0,
        )
        result = campaign.run()
        assert len(result.harvested_numbers) == len(deployed.victims)
        assert result.success_rate > 0.9
        assert "random attack" in result.describe()

    def test_campaign_respects_hit_rate_zero(self):
        deployed = deploy_seed_ecosystem(seed=41)
        campaign = RandomAttackCampaign(
            deployed,
            cell_id="cell-0",
            target="baidu_wallet",
            wifi_hit_rate=0.0,
        )
        result = campaign.run()
        assert result.harvested_numbers == ()
        assert result.success_rate == 0.0

    def test_campaign_with_se_database_reaches_deeper_targets(self):
        """Alipay needs the citizen ID; with chains through Ctrip every
        mark still falls, dossier or not."""
        deployed = deploy_seed_ecosystem(seed=43)
        se_db = SocialEngineeringDatabase(
            deployed.victims, rng=deployed.seeds.stream("se")
        )
        campaign = RandomAttackCampaign(
            deployed,
            cell_id="cell-0",
            target="alipay",
            platform=PL.MOBILE,
            wifi_hit_rate=1.0,
            se_database=se_db,
        )
        result = campaign.run()
        assert result.success_rate > 0.8

    def test_unknown_target_rejected(self):
        deployed = deploy_seed_ecosystem(seed=41)
        with pytest.raises(KeyError):
            RandomAttackCampaign(deployed, "cell-0", target="ghost")


class TestFullReport:
    def test_report_renders_all_sections(self, default_actfort):
        report = full_report(default_actfort)
        for heading in (
            "# Online Account Ecosystem audit",
            "## Authentication process",
            "## Information exposure",
            "## Dependency levels",
            "## Key insights",
            "## Most dangerous information sources",
        ):
            assert heading in report

    def test_report_names_known_hubs(self, default_actfort):
        """Ctrip (full citizen ID) and the email providers are top
        information sources."""
        report = full_report(default_actfort)
        table_tail = report.split("Most dangerous information sources")[1]
        assert "ctrip" in table_tail or "email" in table_tail

    def test_report_is_markdown_tables(self, default_actfort):
        report = full_report(default_actfort)
        assert "| kind | web % |" in report.replace("  ", " ")
