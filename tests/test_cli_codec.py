"""Property/fuzz tests for the CLI's NDJSON record codec.

Hypothesis drives three contracts from :mod:`repro.cli.records` and
:mod:`repro.cli.session_io`:

- **Round-trip**: encode -> parse -> encode is byte-identical for every
  representable record (canonical encoding is a fixpoint).
- **Malformed input is typed**: arbitrary junk lines, truncated
  encodings, and interleaved (concatenated) records never escape as raw
  ``json`` exceptions -- every failure is a :class:`RecordError` with a
  documented code and the exit-65 data-error status.
- **Unknown mutation kinds are rejected without crashing**: the stream
  loader flags them as ``bad-mutation`` and valid records ahead of the
  failure were already processed.

A few subprocess checks pin the same behavior at the process boundary
(error record on stdout + documented exit code).
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli.records import (
    EXIT_DATA,
    RECORD_KINDS,
    RecordError,
    dump_record,
    error_record,
    iter_records,
    parse_record,
)
from repro.cli.session_io import MUTATION_KINDS, load_stream

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Error codes :func:`parse_record` documents; nothing else may escape.
PARSE_ERROR_CODES = {
    "not-json",
    "not-object",
    "missing-kind",
    "unknown-kind",
    "missing-data",
}

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)

records = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(sorted(RECORD_KINDS)),
        "data": json_values,
    }
)


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------


class TestRoundTrip:
    @given(record=records)
    def test_encode_parse_encode_is_byte_identical(self, record):
        line = dump_record(record)
        assert dump_record(parse_record(line)) == line

    @given(record=records)
    def test_canonical_lines_are_single_line(self, record):
        line = dump_record(record)
        assert line.endswith("\n")
        assert "\n" not in line[:-1]

    @given(batch=st.lists(records, max_size=8))
    def test_stream_of_records_round_trips_in_order(self, batch):
        text = "".join(dump_record(record) for record in batch)
        parsed = [rec for _line, rec in iter_records(io.StringIO(text))]
        assert parsed == batch

    @given(record=records, data=st.data())
    def test_non_canonical_spellings_normalize_to_the_same_bytes(
        self, record, data
    ):
        """Key order and whitespace never change the canonical form."""
        keys = list(record)
        data.draw(st.randoms()).shuffle(keys)
        loose = json.dumps(
            {key: record[key] for key in keys}, indent=2
        ).replace("\n", " ")
        assert dump_record(parse_record(loose)) == dump_record(record)


# ----------------------------------------------------------------------
# Malformed input
# ----------------------------------------------------------------------


def _expect_parse_error(line: str) -> RecordError:
    with pytest.raises(RecordError) as caught:
        parse_record(line, 1)
    failure = caught.value
    assert failure.code in PARSE_ERROR_CODES
    assert failure.exit_code == EXIT_DATA
    return failure


class TestMalformedInput:
    @given(junk=st.text(max_size=80))
    def test_arbitrary_text_maps_to_documented_codes(self, junk):
        try:
            parsed = parse_record(junk, 1)
        except RecordError as failure:
            assert failure.code in PARSE_ERROR_CODES
            assert failure.exit_code == EXIT_DATA
            assert failure.line == 1
        else:
            # Text that happens to be a valid record must be one.
            assert parsed["kind"] in RECORD_KINDS

    @given(record=records, cut=st.integers(min_value=1, max_value=10))
    def test_truncated_records_are_not_json(self, record, cut):
        line = dump_record(record).rstrip("\n")
        truncated = line[: max(1, len(line) - cut)]
        if truncated != line:
            failure = _expect_parse_error(truncated)
            assert failure.code == "not-json"

    @given(first=records, second=records)
    def test_interleaved_records_on_one_line_are_rejected(
        self, first, second
    ):
        """Two concatenated records on one line are not one record."""
        mashed = (
            dump_record(first).rstrip("\n") + dump_record(second).rstrip("\n")
        )
        failure = _expect_parse_error(mashed)
        assert failure.code == "not-json"

    @given(value=json_values)
    def test_non_object_json_is_rejected(self, value):
        line = json.dumps(value)
        if isinstance(value, dict):
            with pytest.raises(RecordError):
                parse_record(line, 1)  # object but no valid kind tag
        else:
            failure = _expect_parse_error(line)
            assert failure.code == "not-object"

    @given(
        kind=st.text(max_size=20).filter(lambda k: k not in RECORD_KINDS),
        data=json_values,
    )
    def test_unknown_kinds_are_rejected(self, kind, data):
        line = json.dumps({"kind": kind, "data": data})
        failure = _expect_parse_error(line)
        assert failure.code in {"unknown-kind", "missing-kind"}

    @given(record=records)
    def test_missing_data_payload_is_rejected(self, record):
        line = json.dumps({"kind": record["kind"]})
        failure = _expect_parse_error(line)
        assert failure.code == "missing-data"

    @given(batch=st.lists(records, max_size=4), junk=st.text(max_size=40))
    def test_iter_records_fails_at_the_offending_line(self, batch, junk):
        """Valid prefix records are yielded before the failure line."""
        if not junk.strip():
            return  # blank lines are skipped, not errors
        try:
            parse_record(junk)
        except RecordError:
            pass
        else:
            return  # junk parsed cleanly; nothing to test
        text = "".join(dump_record(record) for record in batch) + junk + "\n"
        seen = []
        with pytest.raises(RecordError) as caught:
            for _line, record in iter_records(io.StringIO(text)):
                seen.append(record)
        assert seen == batch
        assert caught.value.line == len(batch) + 1


# ----------------------------------------------------------------------
# Mutation-kind rejection through the stream loader
# ----------------------------------------------------------------------


class TestMutationRejection:
    @given(
        kind=st.text(max_size=20).filter(
            lambda k: k not in MUTATION_KINDS
        ),
        payload=st.dictionaries(
            st.text(max_size=8), json_scalars, max_size=3
        ),
    )
    def test_unknown_mutation_kinds_raise_bad_mutation(self, kind, payload):
        document = dict(payload)
        document["kind"] = kind
        stream = io.StringIO(
            dump_record({"kind": "mutation", "data": document})
        )
        with pytest.raises(RecordError) as caught:
            load_stream(stream)
        assert caught.value.code == "bad-mutation"
        assert caught.value.exit_code == EXIT_DATA

    @given(data=st.one_of(json_scalars, st.lists(json_scalars, max_size=3)))
    def test_non_object_mutation_payloads_raise_bad_mutation(self, data):
        stream = io.StringIO(dump_record({"kind": "mutation", "data": data}))
        with pytest.raises(RecordError) as caught:
            load_stream(stream)
        assert caught.value.code == "bad-mutation"

    def test_error_records_reraise_with_their_carried_exit(self):
        record = error_record("unreachable", "server down", exit_code=69)
        with pytest.raises(RecordError) as caught:
            load_stream(io.StringIO(dump_record(record)))
        assert caught.value.code == "unreachable"
        assert caught.value.exit_code == 69

    def test_profile_after_mutation_is_a_stream_violation(self):
        lines = [
            dump_record(
                {"kind": "mutation", "data": {"kind": "remove_service"}}
            ),
            dump_record({"kind": "profile", "data": {}}),
        ]
        with pytest.raises(RecordError) as caught:
            load_stream(io.StringIO("".join(lines)))
        assert caught.value.code == "bad-record"


# ----------------------------------------------------------------------
# Process-boundary spot checks
# ----------------------------------------------------------------------


def _run_cli(args, stdin=""):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=120,
    )


@settings(deadline=None, max_examples=5)
@given(junk=st.sampled_from(["{", "[1,2", "null", '"record"', "{}"]))
def test_subprocess_maps_malformed_stdin_to_exit_65(junk):
    result = _run_cli(["summarize"], stdin=junk + "\n")
    assert result.returncode == EXIT_DATA
    record = json.loads(result.stdout.splitlines()[-1])
    assert record["kind"] == "error"
    assert record["data"]["code"] in PARSE_ERROR_CODES
    assert record["data"]["exit"] == EXIT_DATA


def test_subprocess_rejects_unknown_mutation_kind_without_traceback():
    stdin = dump_record({"kind": "mutation", "data": {"kind": "nonsense"}})
    result = _run_cli(["mutate"], stdin=stdin)
    assert result.returncode == EXIT_DATA
    assert "Traceback" not in result.stderr
    record = json.loads(result.stdout.splitlines()[-1])
    assert record["data"]["code"] == "bad-mutation"
