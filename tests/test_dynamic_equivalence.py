"""Differential tests: the incremental engine vs from-scratch rebuilds.

PR 1 locked the indexed TDG engine to the brute-force seed oracle; this
suite applies the same discipline to the incremental engine.  Twenty
seeded mutation sequences (mixing service add/remove, auth-path add/
remove, masking changes, and per-service hardening) are replayed through a
:class:`~repro.dynamic.session.DynamicAnalysisSession`, and after **every**
mutation the maintained graph is compared against a fresh
:class:`~repro.core.tdg.TransformationDependencyGraph` built from the
mutated ecosystem:

- identical dependency-level maps and exact level fractions per platform,
- identical strong- and weak-directivity edge sets,
- identical couple records (same tuples, same enumeration order -- the
  Couple File is an artifact, not just a set),
- identical full-/half-capacity parents per service,
- identical **incrementally-maintained depth fixpoints** (both the
  joint-coverage and the pure-full-chain map) against the fresh graph's
  scratch build, plus the level engine's memoized parents map,
- field-for-field identical :class:`~repro.core.index.EcosystemIndex` and
  :class:`~repro.core.index.AttackerIndex` postings (order included,
  reverse-dependency postings included), so splice bugs cannot hide
  behind order-insensitive query comparisons.

Queries run *before* each mutation too, so every memo family is warm when
the delta's invalidation hits it.
"""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.strategy import StrategyEngine
from repro.dynamic import DynamicAnalysisSession, MutationStream
from repro.model.attacker import AttackerProfile
from repro.model.factors import Platform

#: Twenty seeded mutation sequences (the acceptance floor).
SEQUENCES = tuple(range(20))

#: Mutations per sequence.
STEPS = 12

_PROFILES = {
    "baseline": AttackerProfile.baseline(),
    "se_database": AttackerProfile.with_se_database(),
}


def _assert_matches_rebuild(session, label, context):
    maintained = session.graph(label)
    fresh = session.rebuild(label)
    assert frozenset(maintained._nodes) == frozenset(fresh._nodes), context
    for platform in (Platform.WEB, Platform.MOBILE):
        assert maintained.dependency_levels(
            platform
        ) == fresh.dependency_levels(platform), (context, platform)
        levels = fresh.dependency_levels(platform)
        if levels:
            # Exact float equality: both engines must count identically.
            assert maintained.level_fractions(
                platform
            ) == fresh.level_fractions(platform), (context, platform)
    assert maintained.strong_edges() == fresh.strong_edges(), context
    assert maintained.weak_edges() == fresh.weak_edges(), context
    assert maintained.fringe_nodes() == fresh.fringe_nodes(), context
    # The incrementally-maintained depth fixpoints (both variants) must
    # equal the fresh graph's from-scratch build, value for value.
    maintained_engine = maintained.levels_engine()
    fresh_engine = fresh.levels_engine()
    assert maintained_engine.joint_depths() == fresh_engine.joint_depths(), (
        context
    )
    assert (
        maintained_engine.pure_full_depths()
        == fresh_engine.pure_full_depths()
    ), context
    assert (
        maintained_engine.full_capacity_parents_map()
        == fresh_engine.full_capacity_parents_map()
    ), context
    assert (
        maintained_engine.direct_services() == fresh_engine.direct_services()
    ), context
    for service in fresh._nodes:
        assert maintained.couples(service) == fresh.couples(service), (
            context,
            service,
        )
        assert maintained.full_capacity_parents(
            service
        ) == fresh.full_capacity_parents(service), (context, service)
        assert maintained.half_capacity_parents(
            service
        ) == fresh.half_capacity_parents(service), (context, service)
    # The spliced record streams must equal a scratch enumeration *in
    # order* (the Couple File is an artifact, not just a set), and every
    # segment the maintained engine kept or re-derived must match the
    # fresh graph's per-service records.
    assert tuple(maintained.iter_couples()) == tuple(fresh.iter_couples()), (
        context
    )
    assert tuple(maintained.iter_weak_edges()) == tuple(
        fresh.iter_weak_edges()
    ), context
    stream_engine = maintained._streams_engine
    assert stream_engine is not None
    for service, records in stream_engine.segment_snapshot("couples").items():
        assert records == fresh.couples(service), (context, service)
    for service, edges in stream_engine.segment_snapshot(
        "weak_edges"
    ).items():
        yielded, expected = set(), []
        for record in fresh.couples(service):
            # Discovery order within a record is sorted (providers is a
            # frozenset; the engine pins a hash-seed-independent order).
            for provider in sorted(record.providers):
                if provider not in yielded:
                    yielded.add(provider)
                    expected.append((provider, service))
        assert edges == tuple(expected), (context, service)
    # The signature-parents view's materialized member sets must equal a
    # scratch join over the fresh graph's provider postings.
    parents_view = maintained._parents_view
    assert parents_view is not None
    fresh_attacker_view = fresh.attacker_index()
    for signature, (full, half) in parents_view.snapshot().items():
        provider_sets = [
            fresh_attacker_view.static_provider_set(factor)
            for factor in signature
        ]
        scratch_full = frozenset.intersection(*provider_sets)
        assert full == scratch_full, (context, signature)
        assert half == frozenset.union(*provider_sets) - scratch_full, (
            context,
            signature,
        )
    # The maintained indexes must equal a fresh build field-for-field,
    # including posting order (queries alone could mask order drift).
    spliced_eco = maintained.ecosystem_index()
    fresh_eco = fresh.ecosystem_index()
    assert spliced_eco.names == fresh_eco.names, context
    assert spliced_eco.name_set == fresh_eco.name_set, context
    assert spliced_eco.holders_of == fresh_eco.holders_of, context
    assert spliced_eco.partial_holders == fresh_eco.partial_holders, context
    assert spliced_eco.partial_by_service == fresh_eco.partial_by_service
    assert spliced_eco.dossier_holders == fresh_eco.dossier_holders, context
    assert spliced_eco._dossier_ordered == fresh_eco._dossier_ordered
    assert spliced_eco._partial_union == fresh_eco._partial_union
    assert spliced_eco._unique_coverage == fresh_eco._unique_coverage
    # Reverse-dependency postings (the level engine's delta-BFS inputs).
    # Masks are compared through their decoded views: the spliced index
    # carries retired ids a fresh interner never assigned, so raw masks
    # legitimately differ while the name-level postings must not.
    assert sorted(spliced_eco.demanded_factors(), key=lambda f: f.name) == (
        sorted(fresh_eco.demanded_factors(), key=lambda f: f.name)
    ), context
    for factor in fresh_eco.demanded_factors():
        assert spliced_eco.demanders(factor) == fresh_eco.demanders(factor), (
            context,
            factor,
        )
    assert sorted(spliced_eco.linked_providers()) == sorted(
        fresh_eco.linked_providers()
    ), context
    for provider in fresh_eco.linked_providers():
        assert spliced_eco.linked_consumers_of(
            provider
        ) == fresh_eco.linked_consumers_of(provider), (context, provider)
    # Decoding views must agree with their own masks (spliced vs itself).
    for kind, ordered in spliced_eco.holders_of.items():
        assert spliced_eco.decode_mask_ordered(
            spliced_eco.holder_mask(kind)
        ) == ordered, (context, kind)
    spliced_view = maintained.attacker_index()
    fresh_view = fresh.attacker_index()
    assert spliced_view._static_ordered == fresh_view._static_ordered, context
    assert spliced_view._static == fresh_view._static, context
    for factor, ordered in spliced_view._static_ordered.items():
        assert spliced_eco.decode_mask_ordered(
            spliced_view.static_provider_mask(factor)
        ) == ordered, (context, factor)
    # The maintained closure cache -- kept warm by this call across every
    # step, so deltas hit a primed record and the next serve *resumes* the
    # fixpoint -- must be bit-for-bit the fresh graph's scratch run:
    # entries in order (rounds and provenance included), safe set, IAD.
    served = StrategyEngine(maintained).forward_closure()
    scratch = StrategyEngine(fresh).forward_closure()
    assert served.entries == scratch.entries, context
    assert served.safe == scratch.safe, context
    assert served.final_info == scratch.final_info, context


@pytest.mark.parametrize("sequence", SEQUENCES)
def test_incremental_state_equals_rebuild_after_every_mutation(sequence):
    size = 12 + 4 * (sequence % 4)
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=size), seed=300 + sequence
    ).build_ecosystem()
    label = "baseline" if sequence % 2 == 0 else "se_database"
    session = DynamicAnalysisSession(
        ecosystem, attacker=_PROFILES[label]
    )
    stream = MutationStream(seed=sequence)
    _assert_matches_rebuild(session, None, (sequence, "initial"))
    for step in range(STEPS):
        mutation = stream.next_mutation(session.ecosystem)
        session.mutate(mutation)
        _assert_matches_rebuild(
            session, None, (sequence, step, mutation.describe())
        )
    assert session.version == STEPS


def test_multi_attacker_session_maintains_every_live_view():
    """One shared ecosystem index, several attacker views, all spliced."""
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=18), seed=99
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem, attackers=_PROFILES)
    assert (
        session.graph("baseline").ecosystem_index()
        is session.graph("se_database").ecosystem_index()
    )
    stream = MutationStream(seed=41)
    for step in range(STEPS):
        mutation = stream.next_mutation(session.ecosystem)
        session.mutate(mutation)
        for label in _PROFILES:
            _assert_matches_rebuild(
                session, label, (step, label, mutation.describe())
            )
    # The shared-index invariant survives the whole stream.
    assert (
        session.graph("baseline").ecosystem_index()
        is session.graph("se_database").ecosystem_index()
    )
