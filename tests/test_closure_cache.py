"""The graph-level forward-closure cache and its delta revalidation.

``StrategyEngine.forward_closure`` memoizes on the graph; under mutation
deltas :meth:`~repro.core.tdg.TransformationDependencyGraph.revalidate_closures`
keeps every entry the delta cannot reach (safe services are inert to the
fixpoint) and drops the rest.  The differential here locks the cached
answers against from-scratch rebuilds after *every* mutation of seeded
streams -- including removals and additions, the patch path -- and the
handcrafted cases pin the survive/invalidate split itself.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.actfort import ActFort
from repro.core.strategy import StrategyEngine
from repro.core.tdg import TransformationDependencyGraph
from repro.dynamic import DynamicAnalysisSession, MutationStream
from repro.dynamic.events import AddAuthPath, AddService, ChangeMasking
from repro.model.account import (
    AuthPath,
    AuthPurpose,
    MaskSpec,
    ServiceProfile,
)
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


def _path(service, purpose, *factors):
    return AuthPath(
        service=service,
        platform=PL.WEB,
        purpose=purpose,
        factors=frozenset(factors),
    )


def _direct_service(name, exposed=(PI.REAL_NAME,)):
    """Falls to the baseline attacker (SMS-only reset)."""
    return ServiceProfile(
        name=name,
        domain="media",
        auth_paths=(
            _path(name, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
        ),
        exposed_info={PL.WEB: frozenset(exposed)},
    )


def _safe_service(name):
    """Unchainable: its only path demands the current password."""
    return ServiceProfile(
        name=name,
        domain="fintech",
        auth_paths=(
            _path(name, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
        ),
        exposed_info={PL.WEB: frozenset({PI.REAL_NAME})},
    )


@pytest.mark.parametrize("seed", (4001, 4002, 4003))
def test_cached_closure_equals_rebuild_after_every_mutation(seed):
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=30), seed=seed
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem)
    stream = MutationStream(seed=seed, min_services=10)
    session.forward_closure()  # prime the cache
    for _ in range(10):
        session.mutate(stream.next_mutation(session.ecosystem))
        served = session.forward_closure()
        rebuilt = StrategyEngine(
            ActFort.from_ecosystem(session.ecosystem).tdg()
        ).forward_closure()
        assert served.entries == rebuilt.entries
        assert served.safe == rebuilt.safe
        assert served.final_info == rebuilt.final_info


def test_repeated_closure_calls_share_one_computation():
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=25), seed=5
    ).build_ecosystem()
    actfort = ActFort.from_ecosystem(ecosystem)
    tdg = actfort.tdg()
    first = actfort.potential_victims()
    # A second engine over the same graph hits the graph-level cache --
    # this is what stops insights.py/actfort.py re-running the fixpoint.
    second = StrategyEngine(tdg).forward_closure()
    assert second is first
    stats = tdg.closure_cache_stats()
    assert stats["computes"] == 1 and stats["hits"] == 1


def test_delta_that_never_reaches_the_support_set_keeps_the_cache():
    ecosystem = Ecosystem(
        [
            _direct_service("mail", exposed=(PI.REAL_NAME, PI.CITIZEN_ID)),
            _direct_service("shop"),
            _safe_service("bank"),
        ]
    )
    session = DynamicAnalysisSession(ecosystem)
    closure = session.forward_closure()
    assert closure.compromised == frozenset({"mail", "shop"})
    assert "bank" in closure.safe

    # Masking churn on the safe, unchainable service: inert to the PAV.
    session.mutate(
        ChangeMasking(
            service="bank",
            platform=PL.WEB,
            kind=PI.CITIZEN_ID,
            spec=MaskSpec(reveal_prefix=4),
        )
    )
    assert session.forward_closure() is closure
    assert session.graph().closure_cache_stats()["computes"] == 1

    # A new service that stays safe patches the safe set without a
    # recompute; the compromised entries are served verbatim.
    session.mutate(AddService(profile=_safe_service("vault")))
    patched = session.forward_closure()
    assert patched.entries == closure.entries
    assert patched.safe == frozenset({"bank", "vault"})
    assert session.graph().closure_cache_stats()["computes"] == 1


def test_delta_reaching_the_support_set_recomputes():
    ecosystem = Ecosystem(
        [
            _direct_service("mail", exposed=(PI.REAL_NAME, PI.CITIZEN_ID)),
            _safe_service("bank"),
        ]
    )
    session = DynamicAnalysisSession(ecosystem)
    before = session.forward_closure()
    assert before.compromised == frozenset({"mail"})

    # The safe service grows an info-path reset that the harvested
    # citizen ID satisfies: it must now fall, so the cache recomputes.
    session.mutate(
        AddAuthPath(
            service="bank",
            path=_path(
                "bank",
                AuthPurpose.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
                CF.CITIZEN_ID,
            ),
        )
    )
    after = session.forward_closure()
    assert after is not before
    assert after.compromised == frozenset({"mail", "bank"})
    rebuilt = StrategyEngine(
        ActFort.from_ecosystem(session.ecosystem).tdg()
    ).forward_closure()
    assert after.entries == rebuilt.entries
    assert after.safe == rebuilt.safe


def test_cache_evicts_oldest_key_first_beyond_the_limit():
    ecosystem = Ecosystem([_direct_service("mail"), _safe_service("bank")])
    tdg = ActFort.from_ecosystem(ecosystem).tdg()
    engine = StrategyEngine(tdg)
    limit = TransformationDependencyGraph._CLOSURE_CACHE_LIMIT
    # Each pinned provider is a distinct cache key; overflow the bound.
    for i in range(limit + 6):
        engine.forward_closure(email_provider=f"mail{i}")
    stats = tdg.closure_cache_stats()
    assert stats["entries"] == limit
    assert stats["computes"] == limit + 6
    assert stats["hits"] == 0
    # The newest key is still cached...
    engine.forward_closure(email_provider=f"mail{limit + 5}")
    stats = tdg.closure_cache_stats()
    assert stats["hits"] == 1 and stats["computes"] == limit + 6
    # ...while the oldest was evicted FIFO and recomputes.
    engine.forward_closure(email_provider="mail0")
    stats = tdg.closure_cache_stats()
    assert stats["computes"] == limit + 7
    assert stats["entries"] == limit
    # Re-serving a key already present must not evict anything else.
    engine.forward_closure(email_provider="mail0")
    assert tdg.closure_cache_stats()["hits"] == 2
    assert tdg.closure_cache_stats()["entries"] == limit


def test_stats_count_hits_computes_resumes_and_revalidations():
    ecosystem = Ecosystem(
        [
            _direct_service("mail", exposed=(PI.REAL_NAME, PI.CITIZEN_ID)),
            _safe_service("bank"),
        ]
    )
    session = DynamicAnalysisSession(ecosystem)
    graph = session.graph()
    closure = session.forward_closure()
    assert graph.closure_cache_stats() == {
        "hits": 0,
        "computes": 1,
        "resumes": 0,
        "revalidations": 0,
        "entries": 1,
    }
    assert session.forward_closure() is closure
    assert graph.closure_cache_stats()["hits"] == 1

    # Inert mutation: the record stays clean, the next serve is a hit.
    session.mutate(
        ChangeMasking(
            service="bank",
            platform=PL.WEB,
            kind=PI.CITIZEN_ID,
            spec=MaskSpec(reveal_prefix=4),
        )
    )
    assert graph.closure_cache_stats()["revalidations"] == 0
    assert session.forward_closure() is closure
    assert graph.closure_cache_stats()["hits"] == 2

    # Reaching mutation: the record is marked dirty (one revalidation),
    # and the next serve resumes the fixpoint instead of recomputing.
    session.mutate(
        AddAuthPath(
            service="bank",
            path=_path(
                "bank",
                AuthPurpose.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
                CF.CITIZEN_ID,
            ),
        )
    )
    assert graph.closure_cache_stats()["revalidations"] == 1
    assert session.forward_closure().compromised == frozenset(
        {"mail", "bank"}
    )
    assert graph.closure_cache_stats() == {
        "hits": 2,
        "computes": 1,
        "resumes": 1,
        "revalidations": 1,
        "entries": 1,
    }


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_incremental_closure_matches_scratch_on_random_sequences(data):
    """Property differential: after every mutation of a random sequence,
    the resumed closure must be bit-for-bit the scratch fixpoint -- entry
    order, rounds, provenance, safe set and final IAD -- for both the
    unseeded key and a breach-data key kept warm across the stream."""
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    steps = data.draw(st.integers(min_value=1, max_value=6))
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=14), seed=seed
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem)
    stream = MutationStream(seed=seed ^ 0x5A5A, min_services=6)
    session.forward_closure()
    session.forward_closure(extra_info=[PI.CITIZEN_ID])
    for _ in range(steps):
        session.mutate(stream.next_mutation(session.ecosystem))
        scratch_engine = StrategyEngine(
            ActFort.from_ecosystem(session.ecosystem).tdg()
        )
        for kwargs in ({}, {"extra_info": [PI.CITIZEN_ID]}):
            served = session.forward_closure(**kwargs)
            scratch = scratch_engine.forward_closure(**kwargs)
            assert served.entries == scratch.entries, kwargs
            assert [e.round for e in served.entries] == [
                e.round for e in scratch.entries
            ], kwargs
            assert [e.factor_sources for e in served.entries] == [
                e.factor_sources for e in scratch.entries
            ], kwargs
            assert served.safe == scratch.safe, kwargs
            assert served.final_info == scratch.final_info, kwargs
