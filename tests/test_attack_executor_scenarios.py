"""End-to-end tests: chain execution and the paper's case studies.

These run the full pipeline -- ActFort path generation, OTP dispatch over
the simulated GSM network, over-the-air interception, profile-page
harvesting -- against fresh deployments (execution mutates state).
"""

import pytest

from repro.attack.executor import ChainExecutor
from repro.attack.interception import MitMInterception, SnifferInterception
from repro.attack.scenarios import (
    deploy_seed_ecosystem,
    run_case_i_baidu_wallet,
    run_case_ii_paypal_via_gmail,
    run_case_iii_alipay_via_ctrip,
)
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core import ActFort
from repro.model.account import AuthPath, AuthPurpose, MaskSpec, ServiceProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL
from repro.telecom.cipher import CrackModel
from repro.telecom.jammer import FourGJammer
from repro.telecom.mitm import ActiveMitM
from repro.telecom.sniffer import OsmocomSniffer


@pytest.fixture()
def deployed():
    return deploy_seed_ecosystem(seed=2021)


def sniffer_executor(deployed, victim):
    sniffer = OsmocomSniffer(
        deployed.network,
        deployed.cell_of(victim),
        monitors=16,
        crack_model=CrackModel(rng=deployed.seeds.stream("test-crack")),
    )
    return ChainExecutor(
        deployed, SnifferInterception(sniffer, deployed.clock)
    )


class TestCaseStudies:
    def test_case_i_direct_wallet_takeover_and_payment(self, deployed):
        result = run_case_i_baidu_wallet(deployed)
        assert result.success
        assert result.chain.depth == 0
        assert result.payment_receipt is not None
        wallet = deployed.internet.service("baidu_wallet")
        assert wallet.payments[0][1] == 99.0

    def test_case_ii_paypal_via_email_provider(self, deployed):
        result = run_case_ii_paypal_via_gmail(deployed)
        assert result.success
        assert result.chain.depth == 1
        services = result.chain.services
        assert services[-1] == "paypal"
        assert services[0] in ("gmail",)
        # The email provider step harvested mailbox access.
        assert PI.MAILBOX_ACCESS in result.execution.harvested

    def test_case_iii_mobile_alipay_via_ctrip(self, deployed):
        result = run_case_iii_alipay_via_ctrip(deployed)
        assert result.success
        assert result.chain.services == ("ctrip", "alipay")
        assert PI.CITIZEN_ID in result.execution.harvested
        assert result.payment_receipt is not None

    def test_case_iii_web_customer_service(self, deployed):
        result = run_case_iii_alipay_via_ctrip(deployed, web_variant=True)
        assert result.success

    def test_victim_password_actually_changed(self, deployed):
        """After the chain, the legitimate owner is locked out."""
        from repro.model.factors import CredentialFactor as CF
        from repro.websim.errors import FactorMismatch

        result = run_case_iii_alipay_via_ctrip(deployed)
        assert result.success
        victim = deployed.victim(0)
        alipay = deployed.internet.service("alipay")
        with pytest.raises(FactorMismatch):
            alipay.sign_in(
                PL.MOBILE,
                victim.person_id,
                {
                    CF.USERNAME: victim.person_id,
                    CF.PASSWORD: f"pw-{victim.person_id}",
                },
            )


class TestCombiningReplay:
    """Insight 4 end-to-end: a chain whose middle factor is reconstructed
    by combining masked views must emit every contributor takeover and the
    emitted chain must actually replay against the deployment.  Regression
    for the backward walk dropping ``"a+b"`` combining contributors."""

    @staticmethod
    def _shard(name, spec):
        return ServiceProfile(
            name=name,
            domain="retail",
            auth_paths=(
                AuthPath(
                    service=name,
                    platform=PL.WEB,
                    purpose=AuthPurpose.PASSWORD_RESET,
                    factors=frozenset({CF.CELLPHONE_NUMBER, CF.SMS_CODE}),
                ),
            ),
            exposed_info={PL.WEB: frozenset({PI.BANKCARD_NUMBER})},
            mask_specs={(PL.WEB, PI.BANKCARD_NUMBER): spec},
        )

    @pytest.fixture()
    def combining_deployed(self):
        vault = ServiceProfile(
            name="vault",
            domain="fintech",
            auth_paths=(
                AuthPath(
                    service="vault",
                    platform=PL.WEB,
                    purpose=AuthPurpose.PASSWORD_RESET,
                    factors=frozenset(
                        {
                            CF.BANKCARD_NUMBER,
                            CF.CELLPHONE_NUMBER,
                            CF.SMS_CODE,
                        }
                    ),
                ),
            ),
            exposed_info={PL.WEB: frozenset({PI.REAL_NAME})},
        )
        ecosystem = Ecosystem(
            [
                self._shard("shard_a", MaskSpec(reveal_prefix=8)),
                self._shard("shard_b", MaskSpec(reveal_suffix=8)),
                vault,
            ]
        )
        spec = CatalogSpec(total_services=3, victims=2, cells=1)
        return CatalogBuilder(spec, seed=77).deploy(ecosystem=ecosystem)

    def test_combining_chain_replays_end_to_end(self, combining_deployed):
        deployed = combining_deployed
        victim = deployed.victim(0)
        actfort = ActFort.from_ecosystem(deployed.ecosystem)
        chain = actfort.attack_chain("vault")
        assert chain is not None
        assert chain.services == ("shard_a", "shard_b", "vault")
        assert (
            chain.steps[-1].factor_sources[CF.BANKCARD_NUMBER]
            == "shard_a+shard_b"
        )
        executor = sniffer_executor(deployed, victim)
        result = executor.execute(chain, victim.cellphone_number)
        assert result.success, result.describe()
        assert [s.service for s in result.steps] == list(chain.services)
        # The bankcard value supplied to the vault's reset was genuinely
        # reconstructed from the two shards' masked views.
        assert result.harvested[PI.BANKCARD_NUMBER] == victim.bankcard_number


class TestExecutorMechanics:
    def test_harvest_accumulates_across_steps(self, deployed):
        victim = deployed.victim(0)
        actfort = ActFort.from_ecosystem(deployed.ecosystem)
        chain = actfort.attack_chain("alipay", platform=PL.MOBILE)
        executor = sniffer_executor(deployed, victim)
        result = executor.execute(chain, victim.cellphone_number)
        assert result.success
        harvested = set(result.harvested)
        assert {PI.CITIZEN_ID, PI.REAL_NAME, PI.CELLPHONE_NUMBER} <= harvested

    def test_execution_transcript_records_steps(self, deployed):
        victim = deployed.victim(0)
        actfort = ActFort.from_ecosystem(deployed.ecosystem)
        chain = actfort.attack_chain("alipay", platform=PL.MOBILE)
        executor = sniffer_executor(deployed, victim)
        result = executor.execute(chain, victim.cellphone_number)
        assert [s.service for s in result.steps] == list(chain.services)
        assert all(s.ok for s in result.steps)
        assert "SUCCESS" in result.describe()

    def test_failure_out_of_range(self, deployed):
        """Sniffer parked in the wrong cell: interception fails and the
        execution reports the failing step."""
        victim = deployed.victim(0)
        other_cell = "cell-x"
        deployed.network.add_cell(other_cell)
        sniffer = OsmocomSniffer(deployed.network, other_cell, monitors=16)
        executor = ChainExecutor(
            deployed,
            SnifferInterception(
                sniffer, deployed.clock, max_attempts=2, resend_wait=61.0
            ),
        )
        actfort = ActFort.from_ecosystem(deployed.ecosystem)
        chain = actfort.attack_chain("baidu_wallet", platform=PL.MOBILE)
        result = executor.execute(chain, victim.cellphone_number)
        assert not result.success
        assert result.failure_reason is not None
        assert not result.steps[0].ok

    def test_mitm_execution_is_covert(self, deployed):
        """Running the chain through the MitM rig leaves no trace on the
        victim's handset."""
        victim = deployed.victim(1)
        cell = deployed.cell_of(victim)
        handset_before = len(
            deployed.internet.handset_messages(victim.cellphone_number)
        )
        with FourGJammer(deployed.network, cell):
            mitm = ActiveMitM(deployed.network, cell)
            assert mitm.execute(victim.cellphone_number).success
            executor = ChainExecutor(
                deployed, MitMInterception(mitm, deployed.clock)
            )
            actfort = ActFort.from_ecosystem(deployed.ecosystem)
            chain = actfort.attack_chain("baidu_wallet", platform=PL.MOBILE)
            result = executor.execute(chain, victim.cellphone_number)
            mitm.release()
        assert result.success
        handset_after = len(
            deployed.internet.handset_messages(victim.cellphone_number)
        )
        assert handset_after == handset_before
