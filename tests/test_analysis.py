"""Tests for the measurement study, figure generators and insights."""

import pytest

from repro.analysis.figures import (
    PAPER_DEPENDENCY,
    connection_graph_summary,
    dependency_level_rows,
    fig3_rows,
    fig4_graph,
    render_connection_graph,
    render_fig11_tdg,
    table1_rows,
)
from repro.analysis.insights import compute_insights
from repro.analysis.measurement import MeasurementStudy
from repro.catalog.spec import TABLE1_MOBILE, TABLE1_WEB
from repro.core.tdg import DependencyLevel
from repro.model.factors import Platform as PL


@pytest.fixture(scope="module")
def results(default_actfort):
    return MeasurementStudy().run_actfort(default_actfort)


# "default_actfort" is session-scoped in conftest; re-export at module scope.
@pytest.fixture(scope="module")
def default_actfort(request):
    return request.getfixturevalue("default_actfort")


class TestMeasurement:
    def test_service_count(self, results):
        assert results.service_count == 201

    def test_sms_dominance(self, results):
        """Paper: SMS takes up over 80% of authentication."""
        for platform in (PL.WEB, PL.MOBILE):
            assert results.fig3[platform]["uses_sms_anywhere"] > 0.8

    def test_extra_info_minority(self, results):
        """Paper: less than 20% demand extra information."""
        for platform in (PL.WEB, PL.MOBILE):
            assert results.fig3[platform]["extra_info_required"] < 0.2

    def test_signin_reset_asymmetry(self, results):
        for platform in (PL.WEB, PL.MOBILE):
            stats = results.fig3[platform]
            assert stats["sms_only_signin"] < stats["sms_only_reset"]

    def test_direct_rate_near_paper(self, results):
        web = results.dependency[PL.WEB][DependencyLevel.DIRECT]
        mobile = results.dependency[PL.MOBILE][DependencyLevel.DIRECT]
        assert abs(web - 0.7413) < 0.08
        assert abs(mobile - 0.7556) < 0.08

    def test_all_five_levels_populated_on_mobile(self, results):
        fractions = results.dependency[PL.MOBILE]
        for level in DependencyLevel:
            assert fractions[level] > 0.0, level

    def test_table1_within_tolerance(self, results):
        """Every Table I cell lands within 10pp of the paper's value."""
        for platform, paper in (
            (PL.WEB, TABLE1_WEB),
            (PL.MOBILE, TABLE1_MOBILE),
        ):
            for kind, expected in paper.items():
                measured = results.table1[platform][kind]
                assert abs(measured - expected) < 0.10, (platform, kind)

    def test_mobile_exposes_more_than_web(self, results):
        """Table I's headline: mobile apps leak more than websites."""
        higher = sum(
            1
            for kind in TABLE1_WEB
            if results.table1[PL.MOBILE][kind] > results.table1[PL.WEB][kind]
        )
        assert higher >= 7  # of 9 kinds

    def test_summary_lines_render(self, results):
        lines = results.summary_lines()
        assert any("services analyzed" in line for line in lines)


class TestFigureGenerators:
    def test_fig3_rows_shape(self, results):
        rows = fig3_rows(results)
        assert len(rows) == 14  # 7 metrics x 2 platforms
        assert all(len(row) == 4 for row in rows)

    def test_table1_rows_shape(self, results):
        rows = table1_rows(results)
        assert len(rows) == 9
        assert rows[0][0] == "real_name"

    def test_dependency_rows_cover_levels(self, results):
        rows = dependency_level_rows(results)
        assert [row[0] for row in rows] == [l.value for l in DependencyLevel]

    def test_paper_reference_values_complete(self):
        for platform in (PL.WEB, PL.MOBILE):
            assert set(PAPER_DEPENDENCY[platform]) == set(DependencyLevel)

    def test_fig4_graph_size_and_fringe(self, default_actfort):
        graph = fig4_graph(default_actfort.tdg(), size=44)
        assert graph.number_of_nodes() == 44
        summary = connection_graph_summary(graph)
        assert summary["fringe"] + summary["internal"] == 44
        assert summary["fringe_share"] > 0.5
        assert summary["reachable_from_fringe"] > summary["fringe_share"]

    def test_fig4_too_large_request_rejected(self, default_actfort):
        with pytest.raises(ValueError):
            fig4_graph(default_actfort.tdg(), size=10_000)

    def test_render_connection_graph(self, default_actfort):
        graph = fig4_graph(default_actfort.tdg(), size=44)
        text = render_connection_graph(graph)
        assert "fringe" in text

    def test_render_fig11_contains_seed_nodes(self, default_actfort):
        text = render_fig11_tdg(default_actfort.tdg())
        for name in ("china_railway", "ctrip", "alipay", "gmail"):
            assert f"[{name}]" in text
        assert "Log_1" in text


class TestRunBatch:
    def test_run_batch_matches_solo_runs(self, default_ecosystem):
        """Batched measurement over shared indexes must equal per-profile
        runs, in the order the profiles were given."""
        from repro.model.attacker import AttackerProfile

        profiles = [
            AttackerProfile.baseline(),
            AttackerProfile.with_se_database(),
        ]
        batch = MeasurementStudy().run_batch(default_ecosystem, profiles)
        assert len(batch) == len(profiles)
        for profile, batched in zip(profiles, batch):
            solo = MeasurementStudy(attacker=profile).run_on_ecosystem(
                default_ecosystem
            )
            assert batched == solo


class TestInsights:
    def test_all_insights_hold_on_default_catalog(self, default_actfort):
        checks = compute_insights(default_actfort)
        assert len(checks) == 5
        for check in checks:
            assert check.holds, f"{check.key}: {check.evidence}"

    def test_insight_keys_stable(self, default_actfort):
        keys = [c.key for c in compute_insights(default_actfort)]
        assert keys == [
            "email_gateway",
            "asymmetry",
            "domains",
            "masking",
            "robust_factors",
        ]
