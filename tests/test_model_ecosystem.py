"""Unit tests for the Ecosystem container."""

import pytest

from tests.conftest import simple_profile

from repro.model.account import OnlineAccount
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform as PL
from repro.model.identity import IdentityGenerator


@pytest.fixture()
def small_ecosystem():
    return Ecosystem(
        [
            simple_profile(name="a", domain="media"),
            simple_profile(name="b", domain="fintech", sms_reset=False),
            simple_profile(name="c", domain="media"),
        ]
    )


class TestServices:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Ecosystem([simple_profile(name="a"), simple_profile(name="a")])

    def test_lookup(self, small_ecosystem):
        assert small_ecosystem.service("a").name == "a"
        with pytest.raises(KeyError):
            small_ecosystem.service("missing")

    def test_len_iter_contains(self, small_ecosystem):
        assert len(small_ecosystem) == 3
        assert {s.name for s in small_ecosystem} == {"a", "b", "c"}
        assert "a" in small_ecosystem
        assert "zz" not in small_ecosystem

    def test_domains_and_views(self, small_ecosystem):
        assert small_ecosystem.domains() == frozenset({"media", "fintech"})
        assert len(small_ecosystem.in_domain("media")) == 2
        assert len(small_ecosystem.on_platform(PL.WEB)) == 3
        assert len(small_ecosystem.on_platform(PL.MOBILE)) == 0

    def test_fringe_services(self, small_ecosystem):
        assert {s.name for s in small_ecosystem.fringe_services()} == {"a", "c"}

    def test_total_auth_paths(self, small_ecosystem):
        assert small_ecosystem.total_auth_paths() == 5


class TestAccounts:
    def test_account_on_unknown_service_rejected(self):
        eco = Ecosystem([simple_profile(name="a")])
        stranger = simple_profile(name="zzz")
        identity = IdentityGenerator(1).generate()
        with pytest.raises(ValueError):
            eco.add_account(OnlineAccount(service=stranger, identity=identity))

    def test_accounts_of_identity(self, small_ecosystem):
        gen = IdentityGenerator(1)
        alice, bob = gen.generate(), gen.generate()
        small_ecosystem.add_account(
            OnlineAccount(small_ecosystem.service("a"), alice)
        )
        small_ecosystem.add_account(
            OnlineAccount(small_ecosystem.service("b"), alice)
        )
        small_ecosystem.add_account(
            OnlineAccount(small_ecosystem.service("a"), bob)
        )
        assert len(small_ecosystem.accounts_of(alice)) == 2
        assert small_ecosystem.account_on("a", bob) is not None
        assert small_ecosystem.account_on("c", bob) is None
        assert len(small_ecosystem.identities()) == 2


class TestRestriction:
    def test_restricted_to_subset(self, small_ecosystem):
        sub = small_ecosystem.restricted_to(["a", "b"])
        assert set(sub.service_names) == {"a", "b"}

    def test_restricted_to_unknown_raises(self, small_ecosystem):
        with pytest.raises(KeyError):
            small_ecosystem.restricted_to(["a", "nope"])

    def test_replacement_swaps_profile(self, small_ecosystem):
        replacement = simple_profile(name="a", sms_reset=False)
        updated = small_ecosystem.with_services_replaced({"a": replacement})
        assert not updated.service("a").is_fringe
        # Baseline untouched.
        assert small_ecosystem.service("a").is_fringe

    def test_replacement_name_mismatch_rejected(self, small_ecosystem):
        with pytest.raises(ValueError):
            small_ecosystem.with_services_replaced(
                {"a": simple_profile(name="b")}
            )

    def test_summary_keys(self, small_ecosystem):
        summary = small_ecosystem.summary()
        assert summary["services"] == 3
        assert summary["fringe_services"] == 2
