"""Differential suite for the :class:`~repro.api.AnalysisService` facade.

Every legacy entry point (``MeasurementStudy.run_*``,
``DefenseEvaluation.evaluate*``, ``session.query``) now routes through
the facade; this suite locks the routed results bit-for-bit against
*direct engine use* -- fresh ActFort pipelines, hand-rolled session
loops -- across seeded ecosystems with mutation sequences interleaved,
so the facade's version-keyed cache, plan/execute batching, and stream
pagination can never drift from the engines they front.
"""

from __future__ import annotations

import warnings

import pytest

from repro.analysis.measurement import MeasurementStudy, aggregate_reports
from repro.api import (
    AnalysisService,
    ClosureQuery,
    CoupleFileQuery,
    DefenseEvalQuery,
    DependencyLevelsQuery,
    EdgeSummaryQuery,
    LevelReportQuery,
    MeasurementQuery,
    WeakEdgeQuery,
)
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.actfort import ActFort
from repro.core.strategy import StrategyEngine
from repro.defense.evaluation import (
    DefenseEvaluation,
    measure_outcome,
    standard_defenses,
)
from repro.dynamic import DynamicAnalysisSession, MutationStream
from repro.dynamic.rollout import (
    RolloutTrajectory,
    TrajectoryPoint,
    email_hardening_rollout,
)
from repro.model.attacker import AttackerProfile
from repro.model.factors import Platform

#: Ten seeded ecosystems, as the acceptance criteria demand.
SEEDS = tuple(range(3001, 3011))

#: Small enough that per-checkpoint from-scratch oracles stay cheap.
SIZE = 36

#: Mutations applied between differential checkpoints.
BURST = 3
CHECKPOINTS = 3


def build_ecosystem(seed, size=SIZE):
    return CatalogBuilder(
        CatalogSpec(total_services=size), seed=seed
    ).build_ecosystem()


def reference_measurement(ecosystem, profile):
    """The pre-facade measurement path: fresh ActFort + direct aggregation."""
    actfort = ActFort.from_ecosystem(ecosystem, attacker=profile)
    return aggregate_reports(
        actfort.auth_reports, actfort.collection_reports, actfort.tdg()
    )


def fresh_graph(ecosystem, profile):
    return ActFort.from_ecosystem(ecosystem, attacker=profile).tdg()


@pytest.fixture(autouse=True)
def _allow_shims():
    """The legacy entry points under test warn by design."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        yield


# ----------------------------------------------------------------------
# Facade vs direct engines, mutations interleaved
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_facade_queries_match_direct_engines_under_mutations(seed):
    ecosystem = build_ecosystem(seed)
    profiles = {
        "baseline": AttackerProfile.baseline(),
        "se": AttackerProfile.with_se_database(),
    }
    service = AnalysisService(ecosystem, attackers=profiles)
    stream = MutationStream(seed=seed)
    for checkpoint in range(CHECKPOINTS):
        if checkpoint:
            for _ in range(BURST):
                service.apply(stream.next_mutation(service.ecosystem))
        for label, profile in profiles.items():
            oracle = fresh_graph(service.ecosystem, profile)

            report = service.execute(LevelReportQuery(attacker=label))
            assert report.fractions == oracle.levels_report(
                (Platform.WEB, Platform.MOBILE)
            )
            assert report.version == service.version

            levels = service.execute(
                DependencyLevelsQuery(platform=Platform.WEB, attacker=label)
            )
            assert levels.levels == oracle.dependency_levels(Platform.WEB)

            measured = service.execute(MeasurementQuery(attacker=label))
            assert measured == reference_measurement(
                service.ecosystem, profile
            )

            closure = StrategyEngine(oracle).forward_closure()
            summary = service.execute(ClosureQuery(attacker=label))
            assert summary.compromised == tuple(
                entry.service for entry in closure.entries
            )
            assert summary.safe == tuple(sorted(closure.safe))
            assert summary.final_info == closure.final_info
            assert summary.rounds == closure.by_round()

            edges = service.execute(EdgeSummaryQuery(attacker=label))
            assert edges.strong_edges == len(oracle.strong_edges())
            assert edges.fringe == len(oracle.fringe_nodes())

            # The generic session.query surface agrees with the typed one.
            assert (
                service.raw_query(
                    "level_fractions", Platform.WEB, attacker=label
                )
                == report.fractions[Platform.WEB]
            )


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_stream_pagination_reassembles_exact_record_sequences(seed):
    ecosystem = build_ecosystem(seed)
    service = AnalysisService(ecosystem)
    stream = MutationStream(seed=seed + 17)
    for _ in range(2):
        service.apply(stream.next_mutation(service.ecosystem))
    oracle = fresh_graph(service.ecosystem, AttackerProfile.baseline())

    records = []
    cursor = 0
    while cursor is not None:
        page = service.execute(CoupleFileQuery(cursor=cursor, page_size=97))
        records.extend(page.records)
        cursor = page.next_cursor
    assert tuple(records) == oracle.couple_file()

    edges = []
    cursor = 0
    while cursor is not None:
        page = service.execute(WeakEdgeQuery(cursor=cursor, page_size=301))
        edges.extend(page.edges)
        cursor = page.next_cursor
    assert tuple(edges) == tuple(oracle.iter_weak_edges())


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_couple_pagination_interrupted_by_mutation_resumes_at_watermark(seed):
    """Cursor stability across versions: a paginated Couple File read
    interrupted by a mutation must resume without skipping or
    duplicating records.

    The contract: ``next_cursor`` is a segment watermark (service
    ordinal + in-segment offset).  Services drained before the mutation
    are never re-emitted; services still ahead are served in their
    post-mutation state; the partially-drained service resumes at its
    recorded offset.  The expected tail is reconstructed from a fresh
    post-mutation oracle spliced at the watermark the service handed
    out.
    """
    ecosystem = build_ecosystem(seed)
    service = AnalysisService(ecosystem)
    old_oracle = fresh_graph(service.ecosystem, AttackerProfile.baseline())
    old_stream = old_oracle.couple_file()

    # Drain a few pages at version 0.
    consumed = []
    cursor = 0
    for _page in range(3):
        page = service.execute(CoupleFileQuery(cursor=cursor, page_size=19))
        consumed.extend(page.records)
        cursor = page.next_cursor
        if cursor is None:
            break
    assert tuple(consumed) == old_stream[: len(consumed)]
    if cursor is None:
        pytest.skip("stream shorter than the interruption point")
    assert isinstance(cursor, str)  # the watermark token form

    from repro.streams import StreamCursor

    watermark = StreamCursor.parse(cursor)

    # Interrupt: one mutation lands between pages.
    stream = MutationStream(seed=seed + 29)
    service.apply(stream.next_mutation(service.ecosystem))
    new_oracle = fresh_graph(service.ecosystem, AttackerProfile.baseline())

    # Resume with the pre-mutation token until exhaustion.
    tail = []
    while cursor is not None:
        page = service.execute(CoupleFileQuery(cursor=cursor, page_size=19))
        tail.extend(page.records)
        cursor = page.next_cursor

    # Expected tail: every service at or past the watermark, in graph
    # order, in its *post-mutation* state, resuming mid-segment at the
    # watermark offset.
    eco = service.session.graph().ecosystem_index()
    expected = []
    for name in eco.names:
        ordinal = eco.ordinal_of(name)
        if ordinal < watermark.ordinal:
            continue
        records = new_oracle.couples(name)
        if ordinal == watermark.ordinal:
            records = records[watermark.offset :]
        expected.extend(records)
    assert tuple(tail) == tuple(expected)

    # No drained segment is ever re-emitted: targets fully consumed
    # before the mutation do not reappear in the tail.
    drained = {record.target for record in consumed} - {
        consumed[-1].target
    }
    assert drained.isdisjoint({record.target for record in tail})


# ----------------------------------------------------------------------
# Legacy entry points through the shims
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_run_on_ecosystem_and_run_batch_delegate_bit_identically(seed):
    ecosystem = build_ecosystem(seed)
    study = MeasurementStudy()
    assert study.run_on_ecosystem(ecosystem) == reference_measurement(
        ecosystem, AttackerProfile.baseline()
    )

    profiles = (
        AttackerProfile.baseline(),
        AttackerProfile.with_se_database(),
        AttackerProfile.passive_observer(),
    )
    batch = study.run_batch(ecosystem, profiles)
    assert batch == tuple(
        reference_measurement(ecosystem, profile) for profile in profiles
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_run_session_matches_rebuild_after_mutations(seed):
    ecosystem = build_ecosystem(seed)
    session = DynamicAnalysisSession(ecosystem)
    stream = MutationStream(seed=seed + 5)
    for _ in range(4):
        session.mutate(stream.next_mutation(session.ecosystem))
    study = MeasurementStudy()
    assert study.run_session(session) == reference_measurement(
        session.ecosystem, session.attackers["baseline"]
    )


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_evaluate_attackers_matches_direct_grid(seed):
    ecosystem = build_ecosystem(seed)
    attackers = {
        "baseline": AttackerProfile.baseline(),
        "se": AttackerProfile.with_se_database(),
    }
    evaluation = DefenseEvaluation(ecosystem)
    grid = evaluation.evaluate_attackers(attackers)

    # The pre-facade algorithm, restated directly over the engines.
    defenses = standard_defenses()
    variants = [("baseline", ecosystem)]
    for label, transform in defenses.items():
        variants.append((label, transform(ecosystem)))
    combined = ecosystem
    for transform in defenses.values():
        combined = transform(combined)
    variants.append(("all_combined", combined))
    expected = {label: [] for label in attackers}
    for variant_label, variant_ecosystem in variants:
        base = ActFort.from_ecosystem(variant_ecosystem)
        clones = base.batch(attackers[label] for label in attackers)
        for label, clone in zip(attackers, clones):
            expected[label].append(
                measure_outcome(
                    variant_label, clone.tdg(), len(variant_ecosystem)
                )
            )
    assert grid == {
        label: tuple(outcomes) for label, outcomes in expected.items()
    }

    single = evaluation.evaluate()
    assert single == grid["baseline"]


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_evaluate_rollout_matches_direct_session_loop(seed):
    ecosystem = build_ecosystem(seed, size=24)
    steps = email_hardening_rollout(ecosystem)[:4]
    evaluation = DefenseEvaluation(ecosystem)
    trajectory = evaluation.evaluate_rollout(
        steps=steps, include_weak=True
    )

    # The pre-facade planner loop, restated over a raw session.
    attacker = AttackerProfile.baseline()
    session = DynamicAnalysisSession(ecosystem, attacker)
    platforms = (Platform.WEB, Platform.MOBILE)

    def measure(label, mutated):
        fractions = session.level_report(platforms)
        graph = session.graph()
        return TrajectoryPoint(
            step=label,
            services=len(session),
            mutated_services=mutated,
            level_fractions=fractions,
            strong_edges=len(graph.strong_edges()),
            fringe=len(graph.fringe_nodes()),
            weak_edges=session.weak_edge_count(),
        )

    points = [measure("baseline", ())]
    for step in steps:
        touched = []
        for mutation in step.mutations:
            delta = session.mutate(mutation)
            touched.extend(delta.touched_services)
        points.append(measure(step.label, tuple(touched)))
    expected = RolloutTrajectory(attacker=attacker, points=tuple(points))
    assert trajectory == expected


def test_probe_mode_service_matches_profile_mode_and_is_read_only():
    ecosystem = build_ecosystem(SEEDS[0])
    actfort = ActFort.from_ecosystem(ecosystem)
    service = actfort.as_service()
    assert service.ecosystem is None
    assert service.execute(MeasurementQuery()) == reference_measurement(
        ecosystem, AttackerProfile.baseline()
    )
    stream = MutationStream(seed=1)
    with pytest.raises(RuntimeError):
        service.apply(stream.next_mutation(ecosystem))
    with pytest.raises(RuntimeError):
        service.execute(DefenseEvalQuery())


# ----------------------------------------------------------------------
# Cache and plan semantics
# ----------------------------------------------------------------------


def test_repeated_queries_at_unchanged_version_hit_the_cache():
    ecosystem = build_ecosystem(SEEDS[1])
    service = AnalysisService(ecosystem)
    first = service.execute(LevelReportQuery())
    again = service.execute(LevelReportQuery())
    assert again is first  # O(1) lookup returns the stored object
    stats = service.cache_stats()
    assert stats.hits == 1 and stats.misses == 1

    # The implicit primary label and its explicit spelling share a slot.
    explicit = service.execute(
        LevelReportQuery(attacker=service.primary_attacker)
    )
    assert explicit is first


def test_mutation_bumps_version_and_invalidates_by_construction():
    ecosystem = build_ecosystem(SEEDS[2])
    service = AnalysisService(ecosystem)
    before = service.execute(MeasurementQuery())
    stream = MutationStream(seed=9)
    receipt = service.apply(stream.next_mutation(service.ecosystem))
    assert receipt.version == service.version == 1
    after = service.execute(MeasurementQuery())
    assert after is not before
    assert after == reference_measurement(
        service.ecosystem, AttackerProfile.baseline()
    )


def test_plan_dedupes_identical_queries_and_rejects_stale_plans():
    ecosystem = build_ecosystem(SEEDS[3])
    service = AnalysisService(ecosystem)
    plan = service.plan(
        [LevelReportQuery(), LevelReportQuery(), MeasurementQuery()]
    )
    assert plan.steps[0].key == plan.steps[1].key
    results = service.run(plan)
    assert results[0] is results[1]
    # Only two distinct computations happened.
    assert service.cache_stats().misses == 2

    stream = MutationStream(seed=11)
    stale = service.plan([LevelReportQuery()])
    service.apply(stream.next_mutation(service.ecosystem))
    with pytest.raises(ValueError):
        service.run(stale)


def test_batch_planning_shares_one_level_flush_across_queries():
    ecosystem = build_ecosystem(SEEDS[4])
    service = AnalysisService(ecosystem)
    plan = service.plan(
        [
            LevelReportQuery(platforms=(Platform.WEB,)),
            LevelReportQuery(platforms=(Platform.MOBILE,)),
            MeasurementQuery(),
        ]
    )
    label = service.primary_attacker
    assert plan.level_prefetch[label] == (Platform.MOBILE, Platform.WEB)
