"""Unit tests for the credential-factor / personal-info taxonomies."""

import pytest

from repro.model.factors import (
    CredentialFactor,
    FactorClass,
    InfoCategory,
    PersonalInfoKind,
    all_transformation_pairs,
    factor_satisfied_by_info,
    info_satisfying_factor,
    is_interceptable_otp,
    is_robust_factor,
    knowledge_factors,
)


class TestFactorClasses:
    def test_every_factor_has_a_class(self):
        for factor in CredentialFactor:
            assert isinstance(factor.factor_class, FactorClass)

    def test_sms_code_is_otp(self):
        assert CredentialFactor.SMS_CODE.factor_class is FactorClass.OTP

    def test_citizen_id_is_knowledge(self):
        assert CredentialFactor.CITIZEN_ID.factor_class is FactorClass.KNOWLEDGE

    def test_face_scan_is_biometric(self):
        assert CredentialFactor.FACE_SCAN.factor_class is FactorClass.BIOMETRIC

    def test_customer_service_is_process(self):
        assert (
            CredentialFactor.CUSTOMER_SERVICE.factor_class is FactorClass.PROCESS
        )

    def test_knowledge_factors_helper_matches_classes(self):
        for factor in knowledge_factors():
            assert factor.factor_class is FactorClass.KNOWLEDGE


class TestInfoCategories:
    def test_every_kind_has_a_category(self):
        for kind in PersonalInfoKind:
            assert isinstance(kind.category, InfoCategory)

    def test_citizen_id_is_identity_info(self):
        assert PersonalInfoKind.CITIZEN_ID.category is InfoCategory.IDENTITY

    def test_bankcard_is_property_info(self):
        assert PersonalInfoKind.BANKCARD_NUMBER.category is InfoCategory.PROPERTY

    def test_acquaintance_is_relationship_info(self):
        assert (
            PersonalInfoKind.ACQUAINTANCE_NAME.category
            is InfoCategory.RELATIONSHIP
        )

    def test_histories_are_history_info(self):
        for kind in (
            PersonalInfoKind.ORDER_HISTORY,
            PersonalInfoKind.CHAT_HISTORY,
            PersonalInfoKind.CLOUD_PHOTOS,
        ):
            assert kind.category is InfoCategory.HISTORY

    def test_all_five_categories_are_populated(self):
        used = {kind.category for kind in PersonalInfoKind}
        assert used == set(InfoCategory)


class TestTransformation:
    def test_phone_exposure_satisfies_phone_factor(self):
        assert factor_satisfied_by_info(
            CredentialFactor.CELLPHONE_NUMBER,
            {PersonalInfoKind.CELLPHONE_NUMBER},
        )

    def test_citizen_id_satisfied_by_id_photo(self):
        """Cloud-stored ID photos yield the citizen ID (Section IV-B)."""
        assert factor_satisfied_by_info(
            CredentialFactor.CITIZEN_ID, {PersonalInfoKind.ID_PHOTO}
        )

    def test_email_code_satisfied_by_mailbox_access(self):
        """Case II: controlling Gmail yields PayPal's email token."""
        assert factor_satisfied_by_info(
            CredentialFactor.EMAIL_CODE, {PersonalInfoKind.MAILBOX_ACCESS}
        )

    def test_sms_code_not_satisfiable_from_info(self):
        assert info_satisfying_factor(CredentialFactor.SMS_CODE) == frozenset()

    def test_biometrics_not_satisfiable_from_info(self):
        assert info_satisfying_factor(CredentialFactor.FACE_SCAN) == frozenset()

    def test_unrelated_info_does_not_satisfy(self):
        assert not factor_satisfied_by_info(
            CredentialFactor.CITIZEN_ID, {PersonalInfoKind.DEVICE_TYPE}
        )

    def test_empty_info_satisfies_nothing(self):
        for factor in CredentialFactor:
            assert not factor_satisfied_by_info(factor, set())

    def test_transformation_pairs_are_consistent(self):
        for kind, factor in all_transformation_pairs():
            assert factor_satisfied_by_info(factor, {kind})


class TestRobustFactors:
    @pytest.mark.parametrize(
        "factor",
        [
            CredentialFactor.U2F_KEY,
            CredentialFactor.FACE_SCAN,
            CredentialFactor.FINGERPRINT,
            CredentialFactor.TRUSTED_DEVICE,
            CredentialFactor.AUTHENTICATOR_TOTP,
        ],
    )
    def test_robust_factors(self, factor):
        """Insight 5: these terminate Chain Reaction Attack paths."""
        assert is_robust_factor(factor)
        assert info_satisfying_factor(factor) == frozenset()

    @pytest.mark.parametrize(
        "factor",
        [
            CredentialFactor.SMS_CODE,
            CredentialFactor.CITIZEN_ID,
            CredentialFactor.PASSWORD,
        ],
    )
    def test_non_robust_factors(self, factor):
        assert not is_robust_factor(factor)


class TestInterceptableOTPs:
    def test_channel_otps(self):
        for factor in (
            CredentialFactor.SMS_CODE,
            CredentialFactor.EMAIL_CODE,
            CredentialFactor.EMAIL_LINK,
        ):
            assert is_interceptable_otp(factor)

    def test_totp_never_transits_a_channel(self):
        assert not is_interceptable_otp(CredentialFactor.AUTHENTICATOR_TOTP)
