"""Session snapshot/restore: the serving tier's migration contract.

A restored session must be indistinguishable from the live one it was
snapshotted from -- bit-for-bit across every wire-codable query kind,
including full pagination streams -- and must stay indistinguishable
after both copies apply the same post-restore mutation.  The golden
fixture (``tests/fixtures/golden_snapshot.json``) pins the on-disk
format: a snapshot written by any past build must keep restoring, and
today's builder must keep producing byte-identical documents for the
same seed, or the format version needs bumping.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import (
    AnalysisService,
    ClosureQuery,
    CoupleFileQuery,
    DefenseEvalQuery,
    DependencyLevelsQuery,
    EdgeSummaryQuery,
    LevelReportQuery,
    MeasurementQuery,
    WeakEdgeQuery,
)
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.defense import UnifiedMaskingPolicy
from repro.dynamic import (
    ApplyHardening,
    ChangeMasking,
    DynamicAnalysisSession,
    RemoveService,
)
from repro.dynamic.snapshot import SNAPSHOT_FORMAT, restore_session
from repro.model.account import MaskSpec
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "golden_snapshot.json"

#: Catalog tier the golden fixture is generated from (keep in sync with
#: ``tools/make_golden_snapshot.py``).
GOLDEN_SERVICES = 60


def _build_ecosystem(services=120):
    return CatalogBuilder(
        CatalogSpec(total_services=services), seed=2021
    ).build_ecosystem()


def _canonical(document):
    """Snapshot documents compare via canonical JSON: the wire format is
    what must round-trip, not Python object identity."""
    return json.dumps(document, sort_keys=True)


def _workload():
    """One of every wire-codable query kind (pagination covered by
    :func:`_drain`)."""
    return [
        LevelReportQuery(),
        DependencyLevelsQuery(),
        DependencyLevelsQuery(platform=PL.MOBILE),
        ClosureQuery(),
        MeasurementQuery(),
        EdgeSummaryQuery(include_weak=True),
        DefenseEvalQuery(),
    ]


def _drain(service, query_cls, page_size=64):
    """The full pagination stream for one page-query kind."""
    pages = []
    cursor = 0
    while True:
        page = service.execute(
            query_cls(cursor=cursor, page_size=page_size)
        )
        pages.append(page)
        if page.next_cursor is None:
            return pages
        cursor = page.next_cursor


def _assert_identical(live, restored):
    """Every query kind plus both pagination streams agree."""
    workload = _workload()
    assert restored.execute_batch(workload) == live.execute_batch(
        workload
    )
    for query_cls in (CoupleFileQuery, WeakEdgeQuery):
        assert _drain(restored, query_cls) == _drain(live, query_cls)
    assert restored.version == live.version
    assert len(restored) == len(live)


class TestSessionRoundTrip:
    def test_restored_session_matches_live_bit_for_bit(self):
        live = DynamicAnalysisSession(_build_ecosystem())
        document = json.loads(json.dumps(live.snapshot()))

        restored = DynamicAnalysisSession.restore(document)

        assert restored.version == live.version
        assert restored.history_digest == live.history_digest
        assert sorted(restored.attackers) == sorted(live.attackers)
        assert restored.measurement().to_dict() == (
            live.measurement().to_dict()
        )
        assert restored.level_report() == live.level_report()
        assert restored.forward_closure() == live.forward_closure()
        assert restored.strong_edge_count() == live.strong_edge_count()
        assert restored.weak_edge_count() == live.weak_edge_count()
        assert dict(restored.auth_reports) == dict(live.auth_reports)
        assert dict(restored.collection_reports) == dict(
            live.collection_reports
        )

    def test_resnapshot_of_untouched_restore_is_byte_identical(self):
        live = DynamicAnalysisSession(_build_ecosystem(60))
        document = live.snapshot()
        restored = DynamicAnalysisSession.restore(
            json.loads(json.dumps(document))
        )
        assert _canonical(restored.snapshot()) == _canonical(document)

    def test_mutation_after_restore_converges_with_live(self):
        live = DynamicAnalysisSession(_build_ecosystem(60))
        restored = DynamicAnalysisSession.restore(live.snapshot())
        victim = sorted(live.auth_reports)[0]

        for session in (live, restored):
            delta = session.mutate(
                ApplyHardening(transform=UnifiedMaskingPolicy())
            )
            assert not delta.is_noop
            session.mutate(RemoveService(victim))

        assert restored.version == live.version
        assert restored.history_digest == live.history_digest
        assert restored.measurement().to_dict() == (
            live.measurement().to_dict()
        )
        assert restored.level_report() == live.level_report()
        assert restored.forward_closure() == live.forward_closure()
        assert _canonical(restored.snapshot()) == _canonical(
            live.snapshot()
        )

    def test_snapshot_rejects_deployed_sessions(self):
        deployed = CatalogBuilder(
            CatalogSpec(total_services=12, victims=1, cells=1), seed=7
        ).deploy()
        session = DynamicAnalysisSession(deployed.ecosystem)
        with pytest.raises(ValueError, match="accounts"):
            session.snapshot()

    def test_restore_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="format"):
            restore_session({"format": "repro/other@9"})


class TestServiceRoundTrip:
    def test_restored_service_matches_live_across_every_query_kind(self):
        live = AnalysisService(_build_ecosystem())
        live.execute_batch(_workload())

        restored = AnalysisService.restore(
            json.loads(json.dumps(live.snapshot()))
        )

        _assert_identical(live, restored)

    def test_still_identical_after_post_restore_mutation(self):
        live = AnalysisService(_build_ecosystem())
        live.execute_batch(_workload())
        restored = AnalysisService.restore(live.snapshot())
        victim = sorted(live.session.auth_reports)[0]

        mutations = (
            ChangeMasking(
                service=victim,
                platform=PL.WEB,
                kind=PI.EMAIL_ADDRESS,
                spec=MaskSpec(reveal_prefix=1),
            ),
            RemoveService(victim),
        )
        for mutation in mutations:
            live_receipt = live.apply(mutation)
            restored_receipt = restored.apply(mutation)
            assert restored_receipt.version == live_receipt.version
            assert (
                restored_receipt.delta.describe()
                == live_receipt.delta.describe()
            )

        _assert_identical(live, restored)

    def test_warm_results_serve_without_materializing(self):
        live = AnalysisService(_build_ecosystem(60))
        workload = _workload()
        expected = live.execute_batch(workload)

        restored = AnalysisService.restore(live.snapshot())
        assert restored.execute_batch(workload) == expected
        # The whole batch came from carried warm results: the restored
        # session never had to decode reports or rebuild graphs.
        assert restored.session._graphs is None
        assert restored.cache_stats().misses == 0

    def test_snapshot_without_warm_results_is_session_only(self):
        live = AnalysisService(_build_ecosystem(60))
        live.execute_batch(_workload())
        document = live.snapshot(include_warm_results=False)
        assert "warm_results" not in document
        restored = AnalysisService.restore(document)
        _assert_identical(live, restored)


class TestGoldenSnapshot:
    def test_golden_fixture_restores_and_serves(self):
        document = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert document["format"] == SNAPSHOT_FORMAT

        service = AnalysisService.restore(document)
        live = AnalysisService(_build_ecosystem(GOLDEN_SERVICES))
        _assert_identical(live, service)

    def test_todays_builder_reproduces_the_golden_bytes(self):
        """Format drift tripwire: the same seed must keep producing the
        committed document byte-for-byte.  If this fails because the
        snapshot format intentionally changed, bump ``SNAPSHOT_FORMAT``
        and regenerate via ``tools/make_golden_snapshot.py``."""
        session = DynamicAnalysisSession(
            _build_ecosystem(GOLDEN_SERVICES)
        )
        assert _canonical(session.snapshot()) == _canonical(
            json.loads(GOLDEN.read_text(encoding="utf-8"))
        )
