"""Docs-and-examples drift tripwire (``make docs-check``; tier-1).

Two failure modes this file exists to catch:

- an example in ``examples/`` stops running because an API it uses
  moved (every example is executed headless as a subprocess, exactly as
  a reader would run it);
- a fenced ``python`` code block in ``docs/*.md`` or ``README.md``
  stops matching the current API (every block is executed in its own
  namespace; blocks are written to be self-contained and fast, and
  illustrative non-code uses ``text`` fences);
- a fenced ``sh`` block (the CLI cookbook in ``docs/cli.md``, the
  README quickstart pipeline) stops running: every ``sh`` block is
  executed under ``bash -e -u -o pipefail`` from the repo root with
  ``PYTHONPATH`` pointing at ``src``, exactly as a reader would paste
  it.  Shell shown for illustration only belongs in ``text`` fences.

Keeping this in tier-1 means the documentation cannot silently rot
against the code it describes.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
DOCUMENTS = sorted((REPO_ROOT / "docs").glob("*.md")) + [
    REPO_ROOT / "README.md"
]

#: Fenced python blocks: ```python ... ```
_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)

#: Fenced shell blocks: ```sh ... ``` (``bash``/``console`` fences are
#: deliberately not matched: runnable shell must opt in via ``sh``).
_SH_BLOCK = re.compile(r"```sh\n(.*?)```", re.DOTALL)


def _doc_blocks():
    for document in DOCUMENTS:
        for index, match in enumerate(_BLOCK.finditer(document.read_text())):
            yield pytest.param(
                match.group(1),
                id=f"{document.name}:block{index}",
            )


def _doc_sh_blocks():
    for document in DOCUMENTS:
        for index, match in enumerate(
            _SH_BLOCK.finditer(document.read_text())
        ):
            yield pytest.param(
                match.group(1),
                id=f"{document.name}:sh{index}",
            )


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.name for path in EXAMPLES]
)
def test_example_runs_headless(example):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    result = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} exited {result.returncode}\n"
        f"stderr tail:\n{result.stderr[-2000:]}"
    )


@pytest.mark.parametrize("block", _doc_blocks())
def test_doc_code_block_executes(block):
    namespace = {"__name__": "docs_block"}
    exec(compile(block, "<doc block>", "exec"), namespace)


@pytest.mark.parametrize("block", _doc_sh_blocks())
def test_doc_shell_block_executes(block):
    """``sh`` fences run exactly as a reader would paste them."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    result = subprocess.run(
        ["bash", "-e", "-u", "-o", "pipefail", "-c", block],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"sh block exited {result.returncode}\n"
        f"stderr tail:\n{result.stderr[-2000:]}"
    )


def test_every_document_has_at_least_one_checked_block():
    """The extraction regexes themselves must not silently rot: the
    quickstart docs are expected to carry runnable blocks."""
    checked = {
        param.id.split(":")[0] for param in _doc_blocks()
    }
    assert "architecture.md" in checked
    assert "serving.md" in checked
    assert "README.md" in checked
    shell_checked = {
        param.id.split(":")[0] for param in _doc_sh_blocks()
    }
    assert "cli.md" in shell_checked
    assert "README.md" in shell_checked
