"""Tests for ActFort stage 1: the Authentication Process."""

import pytest

from tests.conftest import make_path, simple_profile

from repro.core.authproc import (
    AuthenticationProcess,
    aggregate_path_statistics,
)
from repro.model.account import AuthPurpose as AP
from repro.model.account import PathType, ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import Platform as PL


@pytest.fixture()
def analyzer():
    return AuthenticationProcess()


def layered_profile():
    name = "layered"
    return ServiceProfile(
        name=name,
        domain="fintech",
        auth_paths=(
            make_path(name, PL.WEB, AP.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            make_path(
                name, PL.WEB, AP.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE
            ),
            make_path(
                name,
                PL.WEB,
                AP.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
                CF.CITIZEN_ID,
            ),
            make_path(
                name,
                PL.WEB,
                AP.SIGN_IN,
                CF.LINKED_ACCOUNT,
                linked=("gmail",),
            ),
        ),
        exposed_info={},
    )


class TestFlowConstruction:
    def test_flows_grouped_by_platform_and_purpose(self, analyzer):
        report = analyzer.analyze_profile(layered_profile())
        assert len(report.flows) == 2  # web sign-in, web reset
        purposes = {flow.purpose for flow in report.flows}
        assert purposes == {AP.SIGN_IN, AP.PASSWORD_RESET}

    def test_email_code_recurses_to_email_control(self, analyzer):
        """The top-down recursion: an email code needs the email account."""
        report = analyzer.analyze_profile(layered_profile())
        reset_flow = next(
            flow for flow in report.flows if flow.purpose is AP.PASSWORD_RESET
        )
        requirements = [leaf.requirement for leaf in reset_flow.root.leaves()]
        assert "control(email account)" in requirements

    def test_linked_account_recurses_to_provider(self, analyzer):
        report = analyzer.analyze_profile(layered_profile())
        signin_flow = next(
            flow for flow in report.flows if flow.purpose is AP.SIGN_IN
        )
        requirements = [leaf.requirement for leaf in signin_flow.root.leaves()]
        assert any("gmail" in r for r in requirements)

    def test_sms_code_recurses_to_channel(self, analyzer):
        report = analyzer.analyze_profile(layered_profile())
        reset_flow = next(
            flow for flow in report.flows if flow.purpose is AP.PASSWORD_RESET
        )
        requirements = [leaf.requirement for leaf in reset_flow.root.leaves()]
        assert "access(SMS channel)" in requirements

    def test_flow_depth_reflects_recursion(self, analyzer):
        report = analyzer.analyze_profile(layered_profile())
        reset_flow = next(
            flow for flow in report.flows if flow.purpose is AP.PASSWORD_RESET
        )
        assert reset_flow.root.depth() >= 4  # root -> path -> factor -> sub

    def test_distinct_signatures_deduplicate(self, analyzer):
        profile = simple_profile()
        report = analyzer.analyze_profile(profile)
        assert report.distinct_path_signatures == 2

    def test_path_type_counts(self, analyzer):
        report = analyzer.analyze_profile(layered_profile())
        counts = report.path_type_counts(PL.WEB)
        assert counts[PathType.GENERAL] == 3
        assert counts[PathType.INFO] == 1

    def test_sms_only_detection_filters(self, analyzer):
        report = analyzer.analyze_profile(simple_profile())
        assert report.has_sms_only_path(PL.WEB, AP.PASSWORD_RESET)
        assert not report.has_sms_only_path(PL.WEB, AP.SIGN_IN)


class TestAggregateStatistics:
    def test_aggregates_over_reports(self, analyzer):
        reports = {
            "a": analyzer.analyze_profile(simple_profile(name="a")),
            "b": analyzer.analyze_profile(
                simple_profile(name="b", sms_reset=False)
            ),
        }
        stats = aggregate_path_statistics(reports, PL.WEB)
        assert stats["services"] == 2.0
        assert stats["sms_only_reset"] == 0.5
        assert stats["sms_only_signin"] == 0.0
        assert 0.0 <= stats["general_share"] <= 1.0

    def test_empty_platform_rejected(self, analyzer):
        reports = {"a": analyzer.analyze_profile(simple_profile(name="a"))}
        with pytest.raises(ValueError):
            aggregate_path_statistics(reports, PL.MOBILE)

    def test_shares_sum_to_one(self, analyzer, default_actfort):
        stats = aggregate_path_statistics(
            default_actfort.auth_reports, PL.WEB
        )
        total = (
            stats["general_share"]
            + stats["info_share"]
            + stats["unique_share"]
        )
        assert abs(total - 1.0) < 1e-9

    def test_probe_and_profile_agree(self, analyzer):
        """Stage 1 must produce identical reports whether it reads the
        static profile or probes the deployed service black-box."""
        from repro.websim.crawler import ActFortProbe
        from repro.websim.internet import Internet

        profile = layered_profile()
        net = Internet()
        service = net.deploy(profile)
        observation = ActFortProbe(net).observe(service)
        from_probe = analyzer.analyze_observation(observation)
        from_profile = analyzer.analyze_profile(profile)
        assert set(from_probe.paths()) == set(from_profile.paths())
        assert (
            from_probe.distinct_path_signatures
            == from_profile.distinct_path_signatures
        )
