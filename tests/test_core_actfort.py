"""Tests for the ActFort facade."""

import pytest

from repro.core import ActFort
from repro.core.tdg import DependencyLevel
from repro.model.attacker import AttackerProfile
from repro.model.factors import Platform as PL


class TestFacade:
    def test_from_ecosystem_builds_all_reports(self, default_ecosystem, default_actfort):
        assert len(default_actfort.auth_reports) == len(default_ecosystem)
        assert len(default_actfort.collection_reports) == len(default_ecosystem)

    def test_tdg_is_cached(self, default_actfort):
        assert default_actfort.tdg() is default_actfort.tdg()

    def test_dependency_fractions_cover_all_levels(self, default_actfort):
        report = default_actfort.report()
        fractions = report.dependency_fractions(PL.WEB)
        assert set(fractions) == set(DependencyLevel)
        assert all(0.0 <= v <= 1.0 for v in fractions.values())

    def test_potential_victims_nonempty(self, default_actfort):
        closure = default_actfort.potential_victims()
        assert len(closure.compromised) > 150

    def test_attack_chain_for_known_target(self, default_actfort):
        chain = default_actfort.attack_chain("alipay", platform=PL.MOBILE)
        assert chain is not None
        assert chain.target == "alipay"

    def test_with_attacker_reanalyzes(self, default_actfort):
        weaker = default_actfort.with_attacker(
            AttackerProfile.passive_observer()
        )
        assert weaker.potential_victims().compromised == frozenset()
        # The original is untouched.
        assert len(default_actfort.potential_victims().compromised) > 0

    def test_probe_mode_matches_profile_mode_on_seeds(
        self, seed_ecosystem_deployed
    ):
        """The black-box probe must reconstruct the same TDG facts the
        static profiles imply -- the core fidelity check for the probe."""
        deployed = seed_ecosystem_deployed
        profile_mode = ActFort.from_ecosystem(deployed.ecosystem)
        probe_mode = ActFort.from_internet(deployed.internet)
        assert set(probe_mode.auth_reports) == set(profile_mode.auth_reports)
        for platform in (PL.WEB, PL.MOBILE):
            assert probe_mode.tdg().level_fractions(
                platform
            ) == pytest.approx(
                profile_mode.tdg().level_fractions(platform)
            )
        assert (
            probe_mode.potential_victims().compromised
            == profile_mode.potential_victims().compromised
        )
