"""In-process smoke of the multi-tenant HTTP tier (tier-1, no sockets
leave localhost).

One server on an ephemeral port serves every test in this module; tests
isolate by tenant.  Covers the serving tier's acceptance path
end-to-end: query -> mutate -> re-query -> paginate across the mutation,
snapshot migration onto a fresh shard while a second tenant keeps
serving, admission overflow (429 + ``Retry-After``), and the mutation
dead-letter queue with its audit trail.  ``make serve-check`` runs
exactly this file.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import AnalysisServer, ServeConfig

#: Small catalog tier: the HTTP contract does not need paper scale.
SERVICES = 24


def _request(url, method="GET", body=None, timeout=30.0):
    """(status, decoded payload, headers) for one HTTP exchange."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            raw = response.read()
            head = dict(response.headers)
    except urllib.error.HTTPError as error:
        status = error.code
        raw = error.read()
        head = dict(error.headers)
    if "json" in head.get("Content-Type", ""):
        return status, json.loads(raw), head
    return status, raw.decode("utf-8"), head


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    audit_path = tmp_path_factory.mktemp("serve") / "audit.ndjson"
    config = ServeConfig(
        mutation_retries=2,
        retry_backoff_base=0.01,
        retry_backoff_cap=0.05,
        audit_path=str(audit_path),
    )
    with AnalysisServer(config=config) as tier:
        tier.audit_path = audit_path
        yield tier


@pytest.fixture(scope="module")
def url(server):
    return server.url


def _create(url, tenant, name, services=SERVICES, **extra):
    status, payload, _ = _request(
        f"{url}/v1/{tenant}/sessions",
        method="POST",
        body={"name": name, "services": services, **extra},
    )
    assert status == 201, payload
    return payload


class TestInfrastructureRoutes:
    def test_health_ready_metrics(self, url):
        status, payload, _ = _request(f"{url}/health")
        assert (status, payload) == (200, {"status": "ok"})

        status, payload, _ = _request(f"{url}/ready")
        assert status == 200 and payload["ready"] is True

        status, text, head = _request(f"{url}/metrics")
        assert status == 200
        assert "text/plain" in head["Content-Type"]
        assert "repro_serve_requests_total" in text

    def test_unknown_routes_are_404(self, url):
        for path in ("/nope", "/v1/acme/nope", "/v1/acme/sessions/ghost"):
            status, payload, _ = _request(f"{url}{path}")
            assert status == 404, (path, payload)


class TestSessionLifecycle:
    def test_create_list_info_and_collision(self, url):
        created = _create(url, "life", "main")
        assert created["services"] == SERVICES
        assert created["version"] == 0
        assert created["warm_start"] is False

        status, payload, _ = _request(f"{url}/v1/life/sessions")
        assert status == 200 and payload["sessions"] == ["main"]

        status, info, _ = _request(f"{url}/v1/life/sessions/main")
        assert status == 200
        assert info["shard"] == created["shard"]
        assert info["attackers"] == ["baseline"]

        status, payload, _ = _request(
            f"{url}/v1/life/sessions",
            method="POST",
            body={"name": "main", "services": SERVICES},
        )
        assert status == 409, payload

    def test_create_validation_is_400(self, url):
        for body in (
            {"name": "bad"},  # neither cold nor warm
            {"name": "bad", "services": 4, "snapshot": {}},  # both
            {"name": "bad", "services": 0},  # out of bounds
            {},  # no name
        ):
            status, payload, _ = _request(
                f"{url}/v1/life/sessions", method="POST", body=body
            )
            assert status == 400, (body, payload)


class TestQueryMutateRequery:
    def test_query_mutate_requery_and_paginate_across_mutation(self, url):
        tenant = "acme"
        _create(url, tenant, "main")
        base = f"{url}/v1/{tenant}/sessions/main"

        status, before, _ = _request(
            f"{base}/query", method="POST", body={"kind": "measurement"}
        )
        assert status == 200 and before["kind"] == "measurement"

        status, batch, _ = _request(
            f"{base}/batch",
            method="POST",
            body={
                "queries": [
                    {"kind": "level_report"},
                    {"kind": "edge_summary", "include_weak": True},
                ]
            },
        )
        assert status == 200
        assert [entry["kind"] for entry in batch["results"]] == [
            "level_report",
            "edge_summary",
        ]

        # First page of the couple stream, pre-mutation.
        status, page1, _ = _request(
            f"{base}/query",
            method="POST",
            body={"kind": "couples", "cursor": 0, "page_size": 5},
        )
        assert status == 200 and page1["kind"] == "couple_page"
        cursor = page1["data"]["next_cursor"]
        assert cursor is not None

        status, receipt, _ = _request(
            f"{base}/mutations",
            method="POST",
            body={"kind": "apply_hardening", "defense": "unified_masking"},
        )
        assert status == 200
        assert receipt["outcome"] == "applied"
        assert receipt["version"] == 1
        assert receipt["attempts"] == 1

        status, after, _ = _request(
            f"{base}/query", method="POST", body={"kind": "measurement"}
        )
        assert status == 200
        assert after != before  # hardening moved the measurement

        # The pre-mutation cursor stays valid across the mutation: the
        # stream's watermark contract survives the HTTP surface.
        status, page2, _ = _request(
            f"{base}/query",
            method="POST",
            body={"kind": "couples", "cursor": cursor, "page_size": 5},
        )
        assert status == 200
        assert page2["data"]["cursor"] == cursor
        assert page2["data"]["records"] != page1["data"]["records"]

    def test_malformed_documents_are_400_never_dead_lettered(self, url):
        tenant = "acme-bad"
        _create(url, tenant, "main")
        base = f"{url}/v1/{tenant}/sessions/main"

        for path, body in (
            ("query", {"kind": "no-such-kind"}),
            ("query", {"kind": "closure", "extra_info": ["bogus"]}),
            ("batch", {"nope": []}),
            ("mutations", {"kind": "no-such-mutation"}),
            ("mutations", {"kind": "apply_hardening", "defense": "x"}),
        ):
            status, payload, _ = _request(
                f"{base}/{path}", method="POST", body=body
            )
            assert status == 400, (path, body, payload)

        status, payload, _ = _request(f"{url}/v1/{tenant}/dead-letters")
        assert status == 200 and payload["dead_letters"] == []


class TestDeadLetterQueue:
    def test_retry_exhaustion_dead_letters_then_requeue_and_cancel(
        self, server, url
    ):
        tenant = "dlq"
        _create(url, tenant, "main")
        base = f"{url}/v1/{tenant}/sessions/main"

        poison = {"kind": "remove_service", "service": "no-such-service"}
        status, payload, _ = _request(
            f"{base}/mutations", method="POST", body=poison
        )
        assert status == 500
        assert payload["outcome"] == "dead_lettered"
        entry = payload["dead_letter"]
        assert entry["state"] == "dead"
        assert entry["attempts"] == 3  # 1 initial + 2 retries
        assert "no-such-service" in entry["error"]

        status, listing, _ = _request(f"{url}/v1/{tenant}/dead-letters")
        assert status == 200
        assert [e["id"] for e in listing["dead_letters"]] == [entry["id"]]

        # Requeue: still-failing mutation chains a NEW entry.
        status, payload, _ = _request(
            f"{url}/v1/{tenant}/dead-letters/{entry['id']}/requeue",
            method="POST",
        )
        assert status == 200
        assert payload["outcome"] == "dead_lettered"
        second = payload["dead_letter"]
        assert second["id"] != entry["id"]
        assert second["retried_from"] == entry["id"]

        status, listing, _ = _request(f"{url}/v1/{tenant}/dead-letters")
        states = {
            e["id"]: e["state"] for e in listing["dead_letters"]
        }
        assert states == {entry["id"]: "requeued", second["id"]: "dead"}

        status, payload, _ = _request(
            f"{url}/v1/{tenant}/dead-letters/{second['id']}/cancel",
            method="POST",
        )
        assert status == 200 and payload["state"] == "cancelled"

        status, payload, _ = _request(
            f"{url}/v1/{tenant}/dead-letters/dl-999/requeue", method="POST"
        )
        assert status == 404, payload

        # The audit NDJSON file carries the whole story for this tenant.
        records = [
            json.loads(line)
            for line in server.audit_path.read_text().splitlines()
        ]
        outcomes = [
            r["outcome"] for r in records if r["tenant"] == tenant
        ]
        assert outcomes == [
            "dead_lettered",  # original exhaustion
            "requeued",  # operator requeue
            "dead_lettered",  # repeat failure -> chained entry
            "cancelled",  # operator cancel
        ]

    def test_audit_endpoint_serves_the_tail(self, url):
        tenant = "audited"
        _create(url, tenant, "main")
        status, receipt, _ = _request(
            f"{url}/v1/{tenant}/sessions/main/mutations",
            method="POST",
            body={"kind": "apply_hardening", "defense": "email_hardening"},
        )
        assert status == 200, receipt

        status, payload, _ = _request(f"{url}/v1/{tenant}/audit?tail=10")
        assert status == 200
        entries = payload["entries"]
        assert len(entries) == 1
        assert entries[0]["outcome"] in ("applied", "noop")
        assert entries[0]["mutation"]["kind"] == "apply_hardening"
        assert entries[0]["session"] == "main"


class TestMigration:
    def test_migrate_serves_identically_while_other_tenant_runs(self, url):
        """The acceptance proof: tenant alpha's session snapshots on one
        shard and restores on another with bit-identical results, while
        tenant beta's traffic proceeds uninterrupted throughout."""
        _create(url, "alpha", "main")
        _create(url, "beta", "main")
        alpha = f"{url}/v1/alpha/sessions/main"
        beta = f"{url}/v1/beta/sessions/main"
        workload = {
            "queries": [
                {"kind": "level_report"},
                {"kind": "measurement"},
                {"kind": "closure"},
                {"kind": "edge_summary", "include_weak": True},
                {"kind": "couples", "page_size": 8},
                {"kind": "defense_eval"},
            ]
        }

        status, before, _ = _request(
            f"{alpha}/batch", method="POST", body=workload
        )
        assert status == 200
        status, info_before, _ = _request(alpha)
        assert status == 200

        stop = threading.Event()
        beta_failures = []

        def beta_traffic():
            while not stop.is_set():
                status, payload, _ = _request(
                    f"{beta}/query",
                    method="POST",
                    body={"kind": "measurement"},
                )
                if status != 200:
                    beta_failures.append((status, payload))

        runner = threading.Thread(target=beta_traffic, daemon=True)
        runner.start()
        try:
            status, moved, _ = _request(
                f"{alpha}/migrate", method="POST"
            )
            assert status == 200
            assert moved["from_shard"] == info_before["shard"]
            assert moved["to_shard"] != moved["from_shard"]
            assert moved["version"] == info_before["version"]
            assert moved["warm_results"] > 0

            status, info_after, _ = _request(alpha)
            assert status == 200
            assert info_after["shard"] == moved["to_shard"]

            status, after, _ = _request(
                f"{alpha}/batch", method="POST", body=workload
            )
            assert status == 200
            assert after == before  # bit-for-bit across the migration
        finally:
            stop.set()
            runner.join(timeout=10.0)
        assert beta_failures == []

        # And the restored session keeps accepting mutations.
        status, receipt, _ = _request(
            f"{alpha}/mutations",
            method="POST",
            body={"kind": "apply_hardening", "defense": "unified_masking"},
        )
        assert status == 200 and receipt["outcome"] == "applied"

    def test_snapshot_endpoint_warm_starts_a_new_session(self, url):
        _create(url, "donor", "main")
        donor = f"{url}/v1/donor/sessions/main"
        status, result, _ = _request(
            f"{donor}/query", method="POST", body={"kind": "level_report"}
        )
        assert status == 200

        status, document, _ = _request(f"{donor}/snapshot")
        assert status == 200
        assert document["warm_results"]

        status, created, _ = _request(
            f"{url}/v1/recipient/sessions",
            method="POST",
            body={"name": "clone", "snapshot": document},
        )
        assert status == 201
        assert created["warm_start"] is True
        assert created["services"] == SERVICES

        status, replica, _ = _request(
            f"{url}/v1/recipient/sessions/clone/query",
            method="POST",
            body={"kind": "level_report"},
        )
        assert status == 200 and replica == result


class TestAdmissionControl:
    def test_overflow_is_429_with_retry_after(self):
        """With a 1-slot, 0-queue gate, a request arriving while a slow
        dead-lettering mutation holds the slot is rejected immediately
        with ``Retry-After`` -- and other tenants are unaffected."""
        config = ServeConfig(
            mutation_retries=2,
            retry_backoff_base=0.3,
            retry_backoff_cap=0.6,
            max_concurrent_per_tenant=1,
            max_queue_per_tenant=0,
            retry_after_seconds=2.5,
        )
        with AnalysisServer(config=config) as tier:
            url = tier.url
            _create(url, "busy", "main", services=8)
            _create(url, "calm", "main", services=8)

            slow_result = {}

            def slow_mutation():
                slow_result["response"] = _request(
                    f"{url}/v1/busy/sessions/main/mutations",
                    method="POST",
                    body={"kind": "remove_service", "service": "ghost"},
                )

            worker = threading.Thread(target=slow_mutation, daemon=True)
            worker.start()

            # Wait (via the admission-free infrastructure route) until
            # the mutation actually holds busy's only slot; polling the
            # tenant route here would steal the slot and reject the
            # mutation instead.
            for _ in range(500):
                status, snapshot, _ = _request(f"{url}/observability")
                assert status == 200
                gates = snapshot["admission"]
                if gates.get("busy", {}).get("active", 0) >= 1:
                    break
                time.sleep(0.002)
            else:
                pytest.fail("mutation never occupied the admission slot")

            status, payload, head = _request(
                f"{url}/v1/busy/sessions/main", timeout=5.0
            )
            assert status == 429, payload
            assert head["Retry-After"] == "2.5"
            assert payload["retry_after"] == 2.5

            # The other tenant's gate is independent.
            status, _payload, _ = _request(f"{url}/v1/calm/sessions/main")
            assert status == 200

            worker.join(timeout=30.0)
            status, payload, _ = slow_result["response"]
            assert status == 500
            assert payload["outcome"] == "dead_lettered"

            # Rejections surfaced on the serve-tier metrics.
            status, text, _ = _request(f"{url}/metrics")
            assert status == 200
            assert (
                'repro_serve_admission_rejects_total{tenant="busy"}'
                in text
            )


class TestObservabilityRoutes:
    def test_session_scoped_metrics_and_observability(self, url):
        tenant = "obs"
        _create(url, tenant, "main")
        base = f"{url}/v1/{tenant}/sessions/main"
        _request(
            f"{base}/query", method="POST", body={"kind": "measurement"}
        )

        status, snapshot, _ = _request(f"{base}/observability")
        assert status == 200
        assert snapshot["version"] == 0
        assert "layers" in snapshot and "metrics" in snapshot

        status, text, head = _request(f"{base}/metrics")
        assert status == 200
        assert "text/plain" in head["Content-Type"]
        assert "repro_api_queries_total" in text

        status, tier_snapshot, _ = _request(f"{url}/observability")
        assert status == 200
        routed = {
            (entry["tenant"], entry["session"])
            for entry in tier_snapshot["shards"]
        }
        assert (tenant, "main") in routed
