"""Tests for the black-box ActFort probe."""

from tests.conftest import make_path

from repro.model.account import AuthPurpose as AP
from repro.model.account import MaskSpec, ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL
from repro.websim.crawler import ActFortProbe
from repro.websim.internet import Internet


def deploy(profile):
    net = Internet()
    service = net.deploy(profile)
    return net, service


def rich_profile():
    name = "probe_target"
    return ServiceProfile(
        name=name,
        domain="travel",
        auth_paths=(
            make_path(name, PL.WEB, AP.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            make_path(name, PL.WEB, AP.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            make_path(
                name, PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
            ),
            make_path(name, PL.MOBILE, AP.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
        ),
        exposed_info={
            PL.WEB: frozenset({PI.REAL_NAME, PI.CITIZEN_ID}),
            PL.MOBILE: frozenset({PI.REAL_NAME}),
        },
        mask_specs={
            (PL.WEB, PI.CITIZEN_ID): MaskSpec(reveal_prefix=6, reveal_suffix=4)
        },
    )


class TestProbe:
    def test_observes_all_paths(self):
        net, service = deploy(rich_profile())
        observation = ActFortProbe(net).observe(service)
        assert len(observation.paths) == 4
        assert len(observation.paths_on(PL.WEB)) == 3
        assert len(observation.paths_on(PL.WEB, AP.PASSWORD_RESET)) == 1

    def test_verifies_both_platforms(self):
        net, service = deploy(rich_profile())
        observation = ActFortProbe(net).observe(service)
        assert observation.verified_platforms == frozenset({PL.WEB, PL.MOBILE})

    def test_records_exposure_per_platform(self):
        net, service = deploy(rich_profile())
        observation = ActFortProbe(net).observe(service)
        assert observation.exposed[PL.WEB] == frozenset(
            {PI.REAL_NAME, PI.CITIZEN_ID}
        )
        assert observation.exposed[PL.MOBILE] == frozenset({PI.REAL_NAME})

    def test_records_observed_mask_positions(self):
        net, service = deploy(rich_profile())
        observation = ActFortProbe(net).observe(service)
        positions = observation.observed_masks[(PL.WEB, PI.CITIZEN_ID)]
        assert positions == frozenset(range(6)) | frozenset(range(14, 18))

    def test_sms_only_service_probed_via_own_handset(self):
        """The probe reads its own canary handset -- owner-side power."""
        name = "smsonly"
        profile = ServiceProfile(
            name=name,
            domain="media",
            auth_paths=(
                make_path(
                    name, PL.WEB, AP.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE
                ),
            ),
            exposed_info={PL.WEB: frozenset({PI.REAL_NAME})},
        )
        net, service = deploy(profile)
        observation = ActFortProbe(net).observe(service)
        assert PL.WEB in observation.verified_platforms

    def test_biometric_only_service_still_probed(self):
        """The canary owns its device secrets, so unique paths verify."""
        name = "biom"
        profile = ServiceProfile(
            name=name,
            domain="fintech",
            auth_paths=(
                make_path(name, PL.WEB, AP.SIGN_IN, CF.FINGERPRINT),
            ),
            exposed_info={PL.WEB: frozenset({PI.REAL_NAME})},
        )
        net, service = deploy(profile)
        observation = ActFortProbe(net).observe(service)
        assert PL.WEB in observation.verified_platforms

    def test_observe_all_covers_every_service(self):
        net = Internet()
        from tests.conftest import simple_profile

        net.deploy(simple_profile(name="a"))
        net.deploy(simple_profile(name="b"))
        observations = ActFortProbe(net).observe_all()
        assert {o.service for o in observations} == {"a", "b"}
