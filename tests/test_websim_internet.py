"""Unit tests for the internet fabric: channels, mailboxes, sessions."""

import pytest

from tests.conftest import make_path, simple_profile

from repro.model.account import AuthPurpose as AP
from repro.model.account import ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL
from repro.model.identity import IdentityGenerator
from repro.websim.errors import InvalidSession
from repro.websim.internet import Internet
from repro.websim.sessions import SessionStore


def email_provider_profile(name="mailco"):
    return ServiceProfile(
        name=name,
        domain="email",
        auth_paths=(
            make_path(name, PL.WEB, AP.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            make_path(
                name, PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
            ),
        ),
        exposed_info={
            PL.WEB: frozenset({PI.EMAIL_ADDRESS, PI.MAILBOX_ACCESS})
        },
    )


@pytest.fixture()
def net():
    return Internet()


class TestDeployment:
    def test_duplicate_deploy_rejected(self, net):
        net.deploy(simple_profile(name="a"))
        with pytest.raises(ValueError):
            net.deploy(simple_profile(name="a"))

    def test_unknown_service_lookup(self, net):
        with pytest.raises(KeyError):
            net.service("ghost")

    def test_enroll_everywhere(self, net):
        net.deploy(simple_profile(name="a"))
        net.deploy(simple_profile(name="b"))
        victim = IdentityGenerator(1).generate()
        net.enroll_everywhere(victim)
        assert net.service("a").is_enrolled(victim.person_id)
        assert net.service("b").is_enrolled(victim.person_id)


class TestSMSChannel:
    def test_loopback_delivers_to_handset(self, net):
        net.send_sms("138", "hello", sender="svc")
        messages = net.handset_messages("138")
        assert messages[-1][1:] == ("svc", "hello")

    def test_gateway_takes_over_delivery(self, net):
        taps = []
        net.set_sms_gateway(lambda phone, text, sender: taps.append(phone))
        net.send_sms("138", "hello", sender="svc")
        # The gateway owns final delivery; loopback no longer applies.
        assert taps == ["138"]
        assert net.handset_messages("138") == ()

    def test_sms_counter(self, net):
        net.send_sms("138", "a", sender="s")
        net.send_sms("139", "b", sender="s")
        assert net.sms_sent == 2


class TestEmailChannel:
    def _setup(self, net):
        provider = net.deploy(email_provider_profile())
        net.register_email_domain("mail.test", "mailco")
        gen = IdentityGenerator(3)
        victim = gen.generate()
        # Pin the victim's address into the registered domain.
        import dataclasses

        victim = dataclasses.replace(
            victim, email_address="victim@mail.test"
        )
        provider.enroll(victim, "pw")
        return provider, victim

    def test_mailbox_read_requires_owner_session(self, net):
        provider, victim = self._setup(net)
        net.send_email("victim@mail.test", "subj", "body", sender="svc")
        session = provider.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        messages = net.read_mailbox("victim@mail.test", session)
        assert messages[-1].body == "body"

    def test_foreign_session_rejected(self, net):
        provider, victim = self._setup(net)
        other = net.deploy(simple_profile(name="other"))
        stranger = IdentityGenerator(4).generate()
        other.enroll(stranger, "pw")
        foreign = other.sign_in(
            PL.WEB,
            stranger.person_id,
            {CF.USERNAME: stranger.person_id, CF.PASSWORD: "pw"},
        )
        with pytest.raises(InvalidSession):
            net.read_mailbox("victim@mail.test", foreign)

    def test_unregistered_domain_rejected(self, net):
        provider, victim = self._setup(net)
        session = provider.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        with pytest.raises(InvalidSession):
            net.read_mailbox("x@unknown.test", session)

    def test_owner_reads_own_mailbox(self, net):
        _provider, victim = self._setup(net)
        net.send_email("victim@mail.test", "s", "b", sender="svc")
        messages = net.read_own_mailbox("victim@mail.test", victim)
        assert len(messages) == 1

    def test_non_owner_identity_rejected(self, net):
        self._setup(net)
        stranger = IdentityGenerator(5).generate()
        with pytest.raises(InvalidSession):
            net.read_own_mailbox("victim@mail.test", stranger)

    def test_email_domain_registration_requires_service(self, net):
        with pytest.raises(KeyError):
            net.register_email_domain("x.test", "ghost")

    def test_provider_lookup(self, net):
        self._setup(net)
        assert net.email_provider_for("anyone@mail.test") == "mailco"
        assert net.email_provider_for("anyone@elsewhere.test") is None


class TestSessionStore:
    def test_expired_session_rejected(self, net):
        store = SessionStore("svc", net.clock, ttl=10.0)
        session = store.issue("u1", PL.WEB)
        net.clock.advance(11.0)
        with pytest.raises(InvalidSession):
            store.validate(session)

    def test_forged_token_rejected(self, net):
        import dataclasses

        store = SessionStore("svc", net.clock)
        session = store.issue("u1", PL.WEB)
        forged = dataclasses.replace(session, person_id="u2")
        with pytest.raises(InvalidSession):
            store.validate(forged)

    def test_revoke_all_for_person(self, net):
        store = SessionStore("svc", net.clock)
        a = store.issue("u1", PL.WEB)
        store.issue("u1", PL.MOBILE)
        c = store.issue("u2", PL.WEB)
        assert store.revoke_all_for("u1") == 2
        with pytest.raises(InvalidSession):
            store.validate(a)
        store.validate(c)

    def test_active_count(self, net):
        store = SessionStore("svc", net.clock, ttl=10.0)
        store.issue("u1", PL.WEB)
        net.clock.advance(11.0)
        store.issue("u2", PL.WEB)
        assert store.active_count == 1

    def test_nonpositive_ttl_rejected(self, net):
        with pytest.raises(ValueError):
            SessionStore("svc", net.clock, ttl=0.0)


class TestBindingRegistry:
    def test_bind_and_lookup(self, net):
        net.bindings.bind("u1", "expedia", "gmail")
        assert net.bindings.providers_for("u1", "expedia") == frozenset(
            {"gmail"}
        )
        assert net.bindings.relying_services_of("u1", "gmail") == frozenset(
            {"expedia"}
        )

    def test_self_binding_rejected(self, net):
        with pytest.raises(ValueError):
            net.bindings.bind("u1", "gmail", "gmail")

    def test_unbind(self, net):
        net.bindings.bind("u1", "expedia", "gmail")
        net.bindings.unbind("u1", "expedia", "gmail")
        assert net.bindings.providers_for("u1", "expedia") == frozenset()
        assert net.bindings.binding_count() == 0

    def test_unbind_missing_is_noop(self, net):
        net.bindings.unbind("u1", "expedia", "gmail")
