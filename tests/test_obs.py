"""The unified instrumentation layer (:mod:`repro.obs`).

Covers the primitives (histogram bucket-edge semantics, thread-safe
labeled counters, span nesting, exception tagging, ring-buffer
eviction, the no-op handle's per-op bound), the exporters (JSON
snapshot, Prometheus text parsed line by line, NDJSON span-log
round-trip plus the ``tools/obsreport.py`` renderer), and the
equality pinning of the four legacy stats surfaces -- which are thin
views over the registry now and must keep returning the exact numbers
they always did.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import (
    AnalysisService,
    ClosureQuery,
    CoupleFileQuery,
    EdgeSummaryQuery,
    LevelReportQuery,
    MeasurementQuery,
)
from repro.catalog import CatalogBuilder, CatalogSpec
from repro.dynamic import MutationStream
from repro.obs import (
    Histogram,
    Instrumentation,
    MetricsRegistry,
    NDJSONSpanWriter,
    Tracer,
    metrics_snapshot,
)
from repro.obs.report import load_ndjson, render_report
from repro.obs.selfcheck import parse_prometheus_lines


def _small_ecosystem(services=40, seed=7):
    return CatalogBuilder(
        CatalogSpec(total_services=services), seed=seed
    ).build_ecosystem()


def _mutate_and_serve(service, mutations=2, seed=2021):
    """A small real serve session: batch, mutate, re-serve, repeat."""
    workload = [
        LevelReportQuery(),
        MeasurementQuery(),
        ClosureQuery(),
        EdgeSummaryQuery(),
        CoupleFileQuery(max_size=3, page_size=10),
    ]
    service.execute_batch(workload)
    service.execute_batch(workload)  # warm repeat: all result-cache hits
    stream = MutationStream(seed=seed)
    for _ in range(mutations):
        service.apply(stream.next_mutation(service.ecosystem))
        service.execute_batch(workload)
    return workload


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------


class TestHistogram:
    def test_le_bucket_edges(self):
        h = Histogram((1, 2, 5))
        for value in (0, 1, 1.5, 2, 5, 7):
            h.observe(value)
        # le semantics: a value equal to an edge lands in that edge's
        # bucket; beyond the last edge is the implicit +Inf bucket.
        assert h.bucket_counts == (2, 2, 1, 1)
        assert h.count == 6
        assert h.sum == pytest.approx(16.5)

    def test_quantile_is_conservative_upper_edge(self):
        h = Histogram((1, 2, 5))
        for value in (0, 1, 1.5, 2, 5, 7):
            h.observe(value)
        assert h.quantile(0.5) == 2.0
        # Mass past the last edge cannot be resolved further than the
        # last edge.
        assert h.quantile(1.0) == 5.0
        assert Histogram((1,)).quantile(0.5) is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram((1, 1, 2))
        with pytest.raises(ValueError):
            Histogram(())


class TestRegistry:
    def test_get_or_create_interns_families_and_children(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", labels=("kind",))
        assert registry.counter("c_total", labels=("kind",)) is family
        child = family.labels(kind="a")
        assert family.labels(kind="a") is child

    def test_redeclaration_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("kind",))
        with pytest.raises(ValueError):
            registry.gauge("m", labels=("kind",))
        with pytest.raises(ValueError):
            registry.counter("m")  # different label set
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_wrong_label_names_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("m", labels=("kind",))
        with pytest.raises(ValueError):
            family.labels(flavor="a")

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("m").inc(-1)

    def test_value_reads_zero_for_untouched(self):
        registry = MetricsRegistry()
        assert registry.value("never_registered") == 0
        registry.counter("m", labels=("kind",))
        assert registry.value("m", {"kind": "a"}) == 0

    def test_threaded_labeled_counters_lose_nothing(self):
        registry = MetricsRegistry()
        family = registry.counter("m_total", labels=("kind",))
        per_thread, threads = 10_000, 8

        def worker(kind):
            child = family.labels(kind=kind)
            for _ in range(per_thread):
                child.inc()

        workers = [
            threading.Thread(target=worker, args=("even" if i % 2 else "odd",))
            for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        total = threads // 2 * per_thread
        assert registry.value("m_total", {"kind": "even"}) == total
        assert registry.value("m_total", {"kind": "odd"}) == total


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_lexically(self):
        tracer = Tracer()
        with tracer.span("outer", depth=0) as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        (root,) = tracer.recent()
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner"]
        assert root.duration_seconds >= inner.duration_seconds
        assert root.self_seconds >= 0.0
        assert root.attributes == {"depth": 0}

    def test_exception_tagging_does_not_swallow(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (root,) = tracer.recent()
        assert root.error == "ValueError: boom"
        assert root.finished

    def test_ring_buffer_evicts_oldest_roots(self):
        tracer = Tracer(max_recent=3)
        for index in range(5):
            with tracer.span(f"root-{index}"):
                pass
        assert [span.name for span in tracer.recent()] == [
            "root-2",
            "root-3",
            "root-4",
        ]

    def test_to_dict_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("op", kind="closure", obj=object()) as span:
            span.set_attribute("count", 3)
        encoded = json.loads(json.dumps(tracer.recent()[0].to_dict()))
        assert encoded["name"] == "op"
        assert encoded["attributes"]["count"] == 3
        # Non-primitive attribute values are stringified, not rejected.
        assert isinstance(encoded["attributes"]["obj"], str)


class TestNoopHandle:
    def test_disabled_handle_is_inert_but_complete(self):
        obs = Instrumentation.disabled()
        counter = obs.counter("c_total", labels=("kind",)).labels(kind="a")
        counter.inc()
        assert counter.value == 0
        with obs.span("op") as span:
            span.set_attribute("k", "v")
        assert obs.snapshot() == {"metrics": {}, "recent_spans": []}
        assert obs.prometheus() == ""

    def test_noop_per_op_overhead_is_tiny(self):
        obs = Instrumentation.disabled()
        counter = obs.counter("c_total")
        ops = 100_000
        start = time.perf_counter()
        for _ in range(ops):
            counter.inc()
            with obs.span("op"):
                pass
        elapsed = time.perf_counter() - start
        # ~1.5us/op of pure interpreter overhead on slow hardware; the
        # bound only fires if the disabled path starts doing real work.
        assert elapsed / ops < 20e-6, (
            f"no-op instrumentation costs {elapsed / ops * 1e6:.2f}us/op"
        )


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExporters:
    def test_snapshot_shape_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", labels=("kind",)).labels(
            kind="x"
        ).inc(3)
        hist = registry.histogram("h", "a histogram", buckets=(1, 2))
        for value in (0.5, 1.5, 9):
            hist.observe(value)
        snapshot = json.loads(json.dumps(metrics_snapshot(registry)))
        assert snapshot["c_total"]["type"] == "counter"
        assert snapshot["c_total"]["samples"] == [
            {"labels": {"kind": "x"}, "value": 3}
        ]
        (sample,) = snapshot["h"]["samples"]
        assert sample["buckets"] == {"1.0": 1, "2.0": 2, "+Inf": 3}
        assert sample["count"] == 3

    def test_prometheus_parses_line_by_line(self):
        ecosystem = _small_ecosystem()
        service = AnalysisService(ecosystem)
        _mutate_and_serve(service, mutations=1)
        text = service.prometheus_metrics()
        samples, metas = parse_prometheus_lines(text.rstrip("\n"))
        assert samples and metas
        joined = "\n".join(samples)
        assert "repro_api_queries_total{" in joined
        assert "repro_session_apply_seconds_bucket{" in joined
        assert "repro_session_apply_seconds_sum" in joined
        assert "repro_session_apply_seconds_count" in joined
        assert 'le="+Inf"' in joined

    def test_prometheus_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_lines("not a metric line")
        with pytest.raises(ValueError):
            parse_prometheus_lines('m{unclosed="x' + '"')


class TestNDJSONRoundTrip:
    def test_span_log_from_real_session_renders_report(self, tmp_path):
        log_path = str(tmp_path / "run.ndjson")
        service = AnalysisService(_small_ecosystem())
        writer = service.instrumentation.log_spans_to(log_path)
        try:
            _mutate_and_serve(service, mutations=2)
            writer.write_snapshot()
        finally:
            writer.close()

        spans, snapshots = load_ndjson(log_path)
        assert spans and len(snapshots) == 1
        names = {span["name"] for span in spans}
        assert {"api.plan", "api.run", "api.apply"} <= names
        # The api.apply tree nests the session's engine spans.
        apply_roots = [s for s in spans if s["name"] == "api.apply"]
        nested = {
            child["name"]
            for root in apply_roots
            for child in root["children"]
        }
        assert "session.apply" in nested
        assert "repro_api_queries_total" in snapshots[0]

        report = render_report(spans, snapshots)
        assert "top spans by self-time" in report
        assert "cache efficacy" in report
        assert "invalidation-cone distribution" in report
        assert "api queries (hit / computed)" in report

    def test_writer_accepts_open_file_without_owning_it(self, tmp_path):
        path = tmp_path / "log.ndjson"
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        with open(path, "w", encoding="utf-8") as handle:
            writer = NDJSONSpanWriter(handle)
            writer.write_snapshot(registry)
            writer.close()
            assert not handle.closed
        _spans, snapshots = load_ndjson(str(path))
        assert snapshots[0]["c_total"]["samples"][0]["value"] == 1


# ----------------------------------------------------------------------
# The serving stack: one registry, thin legacy views, full snapshot
# ----------------------------------------------------------------------


class TestServiceObservability:
    def test_legacy_stats_surfaces_equal_registry_values(self):
        service = AnalysisService(_small_ecosystem())
        _mutate_and_serve(service, mutations=2)
        registry = service.instrumentation.registry

        stats = service.cache_stats()
        assert stats.hits == registry.value("repro_result_cache_hits_total")
        assert stats.misses == registry.value(
            "repro_result_cache_misses_total"
        )
        for value in (stats.hits, stats.misses, stats.entries):
            assert isinstance(value, int)

        for label in service.attackers:
            graph = service.session.graph(label)
            by = {"attacker": label}
            closure = graph.closure_cache_stats()
            assert closure["hits"] == registry.value(
                "repro_closure_cache_hits_total", by
            )
            assert closure["computes"] == registry.value(
                "repro_closure_cache_computes_total", by
            )
            assert closure["resumes"] == registry.value(
                "repro_closure_cache_resumes_total", by
            )
            assert closure["revalidations"] == registry.value(
                "repro_closure_cache_revalidations_total", by
            )
            parents = graph.parents_view().stats()
            assert parents["retractions"] == registry.value(
                "repro_parents_retractions_total", by
            )
            assert parents["derivations"] == registry.value(
                "repro_parents_derivations_total", by
            )
            streams = graph.streams_engine().stats()
            assert streams["computed"] == registry.value(
                "repro_stream_segments_computed_total", by
            )
            assert streams["reused"] == registry.value(
                "repro_stream_segments_reused_total", by
            )
            assert streams["invalidated"] == registry.value(
                "repro_stream_segments_invalidated_total", by
            )

    def test_warm_repeat_counts_as_api_hits(self):
        service = AnalysisService(_small_ecosystem())
        workload = [LevelReportQuery(), MeasurementQuery()]
        service.execute_batch(workload)
        service.execute_batch(workload)
        registry = service.instrumentation.registry
        hits = sum(
            child.value
            for labels, child in registry.get(
                "repro_api_queries_total"
            ).samples()
            if labels["outcome"] == "hit"
        )
        assert hits == len(workload)

    def test_observability_snapshot_covers_five_layers(self):
        service = AnalysisService(_small_ecosystem())
        _mutate_and_serve(service, mutations=2)
        snapshot = service.observability_snapshot()
        json.dumps(snapshot)  # must round-trip
        assert set(snapshot["layers"]) == {
            "result_cache",
            "closure",
            "levels",
            "parents",
            "streams",
        }
        label = service.primary_attacker
        assert snapshot["layers"]["levels"][label]["flushes"] >= 1
        assert snapshot["layers"]["parents"][label]["derivations"] >= 1
        assert snapshot["layers"]["streams"][label]["computed"] >= 1
        assert snapshot["layers"]["result_cache"]["hits"] >= 1
        assert snapshot["version"] == service.version
        metrics = snapshot["metrics"]
        assert "repro_session_mutations_total" in metrics
        assert "repro_invalidation_cone_services" in metrics
        assert "repro_levels_touched_signatures" in metrics
        assert any(
            span["name"] == "api.run" for span in snapshot["recent_spans"]
        )

    def test_disabled_handle_keeps_results_identical(self):
        ecosystem = _small_ecosystem()
        enabled = AnalysisService(ecosystem)
        disabled = AnalysisService(
            ecosystem, instrumentation=Instrumentation.disabled()
        )
        workload = _mutate_and_serve(enabled, mutations=2)
        _mutate_and_serve(disabled, mutations=2)
        assert enabled.execute_batch(workload) == disabled.execute_batch(
            workload
        )
        # The thin views still answer, reading zeros off the null registry.
        assert disabled.cache_stats().hits == 0
        assert disabled.closure_cache_stats()["computes"] == 0
        assert disabled.observability_snapshot()["metrics"] == {}

    def test_obsreport_cli_renders_real_session_log(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        log_path = str(tmp_path / "run.ndjson")
        service = AnalysisService(_small_ecosystem())
        writer = service.instrumentation.log_spans_to(log_path)
        try:
            _mutate_and_serve(service, mutations=1)
            writer.write_snapshot()
        finally:
            writer.close()
        completed = subprocess.run(
            [sys.executable, str(repo_root / "tools" / "obsreport.py"),
             log_path, "--top", "5"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(repo_root / "src")},
        )
        assert completed.returncode == 0, completed.stderr
        assert "top spans by self-time" in completed.stdout
        assert "cache efficacy" in completed.stdout
