"""Unit tests for the segmented record-stream engine.

The differential suites (``tests/test_dynamic_equivalence.py``,
``tests/test_api_service.py``) prove stream *contents* equal scratch
rebuilds under mutations; this file pins the engine's mechanics:
watermark token round-trips and rejection, segment reuse vs re-derive
accounting under deltas, and flat-offset/token cursor agreement.
"""

from __future__ import annotations

import pytest

from repro.api import AnalysisService, CoupleFileQuery
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.dynamic import DynamicAnalysisSession, MutationStream
from repro.streams import StreamCursor


def build_ecosystem(size=28, seed=5021):
    return CatalogBuilder(
        CatalogSpec(total_services=size), seed=seed
    ).build_ecosystem()


class TestStreamCursor:
    def test_token_round_trip(self):
        cursor = StreamCursor(ordinal=17, offset=403)
        assert StreamCursor.parse(cursor.token()) == cursor

    @pytest.mark.parametrize("garbage", ["", "17", "a:b", "-1:0", "0:-2"])
    def test_rejects_malformed_tokens(self, garbage):
        with pytest.raises(ValueError):
            StreamCursor.parse(garbage)

    def test_malformed_token_surfaces_through_the_query(self):
        service = AnalysisService(build_ecosystem(size=12))
        with pytest.raises(ValueError):
            service.execute(CoupleFileQuery(cursor="not-a-token"))


class TestSegmentSplicing:
    def test_full_scan_then_rescan_reuses_every_segment(self):
        session = DynamicAnalysisSession(build_ecosystem())
        engine = session.graph().streams_engine()
        first = tuple(engine.iter_records("couples"))
        computed_once = engine.stats()["computed"]
        second = tuple(engine.iter_records("couples"))
        assert first == second
        assert engine.stats()["computed"] == computed_once

    def test_mutation_drops_only_the_dirty_cone(self):
        session = DynamicAnalysisSession(build_ecosystem())
        engine = session.graph().streams_engine()
        tuple(engine.iter_records("couples"))
        total = engine.stats()["segments"]
        stream = MutationStream(seed=3)
        session.mutate(stream.next_mutation(session.ecosystem))
        tuple(engine.iter_records("couples"))
        stats = engine.stats()
        # Some segments were invalidated and re-derived, but never the
        # whole stream: splicing must keep the untouched majority.
        assert 0 < stats["invalidated"] < total

    def test_record_budget_bounds_a_full_scan(self, monkeypatch):
        """The memo is a sliding window: a full drain past the budget
        evicts least-recently-read segments instead of holding the whole
        output-bound stream."""
        import repro.streams.segments as segments_module

        monkeypatch.setattr(segments_module, "MAX_BUFFERED_RECORDS", 12)
        session = DynamicAnalysisSession(build_ecosystem())
        graph = session.graph()
        engine = graph.streams_engine()
        full = tuple(engine.iter_records("couples"))
        assert len(full) > 12  # the scan itself is complete and exact
        assert full == graph.couple_file()
        buffered = sum(
            len(records)
            for records in engine.segment_snapshot("couples").values()
        )
        # The window may overshoot by at most one segment (the budget is
        # enforced between segments), never hold the whole stream.
        assert buffered < len(full)

    def test_flat_offset_agrees_with_token_resumption(self):
        service = AnalysisService(build_ecosystem())
        graph = service.session.graph()
        full = graph.couple_file()
        assert len(full) > 40
        page = service.execute(CoupleFileQuery(cursor=0, page_size=25))
        via_token = service.execute(
            CoupleFileQuery(cursor=page.next_cursor, page_size=15)
        )
        via_offset = service.execute(
            CoupleFileQuery(cursor=25, page_size=15)
        )
        assert via_token.records == via_offset.records == full[25:40]
