"""Unit tests for the clock, seeded RNG streams and table rendering."""

import pytest

from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence
from repro.utils.tables import format_percent, format_table


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_advance(self):
        clock = Clock()
        clock.advance(5.0)
        clock.tick()
        assert clock.now() == 6.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1.0)

    def test_callbacks_fire_in_time_order(self):
        clock = Clock()
        fired = []
        clock.call_at(3.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_after(5.0, lambda: fired.append("c"))
        clock.advance(10.0)
        assert fired == ["a", "b", "c"]

    def test_callback_sees_its_deadline_time(self):
        clock = Clock()
        seen = []
        clock.call_at(2.0, lambda: seen.append(clock.now()))
        clock.advance(10.0)
        assert seen == [2.0]

    def test_undue_callbacks_stay_pending(self):
        clock = Clock()
        clock.call_at(100.0, lambda: None)
        clock.advance(1.0)
        assert clock.pending_events == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Clock().call_after(-1.0, lambda: None)


class TestSeedSequence:
    def test_same_name_same_stream(self):
        assert (
            SeedSequence(1).stream("x").random()
            == SeedSequence(1).stream("x").random()
        )

    def test_different_names_differ(self):
        root = SeedSequence(1)
        assert root.stream("x").random() != root.stream("y").random()

    def test_different_roots_differ(self):
        assert (
            SeedSequence(1).stream("x").random()
            != SeedSequence(2).stream("x").random()
        )

    def test_child_sequences_are_stable(self):
        a = SeedSequence(9).child("sub").derive("leaf")
        b = SeedSequence(9).child("sub").derive("leaf")
        assert a == b


class TestTables:
    def test_basic_alignment(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title_included(self):
        assert format_table(("h",), [("x",)], title="T").startswith("T")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_format_percent(self):
        assert format_percent(0.7413) == "74.13%"
        assert format_percent(1.0, digits=0) == "100%"
