"""Tests for ActFort stage 3: the Transformation Dependency Graph.

The small hand-built ecosystem used here mirrors the paper's worked
examples: an SMS-resettable travel site leaking the citizen ID (ctrip-like),
an email provider, a fintech service demanding citizen ID + SMS, a
biometric-only vault, and a pair of services leaking complementary masked
bankcard views.
"""

import pytest

from tests.conftest import make_path

from repro.core.tdg import (
    DependencyLevel,
    TransformationDependencyGraph,
)
from repro.model.account import AuthPurpose as AP
from repro.model.account import MaskSpec, ServiceProfile
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


def profile(name, domain, paths, exposed, masks=None):
    return ServiceProfile(
        name=name,
        domain=domain,
        auth_paths=tuple(paths),
        exposed_info={PL.WEB: frozenset(exposed)},
        mask_specs=masks or {},
    )


@pytest.fixture()
def toy_ecosystem():
    travel = profile(
        "travel",
        "travel",
        [
            make_path(
                "travel", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
            )
        ],
        {PI.CITIZEN_ID, PI.REAL_NAME, PI.CELLPHONE_NUMBER, PI.EMAIL_ADDRESS},
    )
    mail = profile(
        "mail",
        "email",
        [
            make_path(
                "mail", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
            )
        ],
        {PI.MAILBOX_ACCESS, PI.EMAIL_ADDRESS},
    )
    pay = profile(
        "pay",
        "fintech",
        [
            make_path(
                "pay", PL.WEB, AP.PASSWORD_RESET, CF.CITIZEN_ID, CF.SMS_CODE
            )
        ],
        {PI.REAL_NAME},
    )
    relay = profile(
        "relay",
        "social",
        [
            make_path(
                "relay", PL.WEB, AP.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE
            )
        ],
        {PI.SECURITY_ANSWERS},
    )
    deep = profile(
        "deep",
        "fintech",
        [
            make_path(
                "deep",
                PL.WEB,
                AP.PASSWORD_RESET,
                CF.SECURITY_QUESTION,
                CF.SMS_CODE,
            )
        ],
        {PI.REAL_NAME},
    )
    vault = profile(
        "vault",
        "fintech",
        [make_path("vault", PL.WEB, AP.PASSWORD_RESET, CF.U2F_KEY)],
        {PI.REAL_NAME},
    )
    card_a = profile(
        "card_a",
        "fintech",
        [
            make_path(
                "card_a", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
            )
        ],
        {PI.BANKCARD_NUMBER},
        masks={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_prefix=10)},
    )
    card_b = profile(
        "card_b",
        "fintech",
        [
            make_path(
                "card_b", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
            )
        ],
        {PI.BANKCARD_NUMBER},
        masks={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=8)},
    )
    bank = profile(
        "bank",
        "fintech",
        [
            make_path(
                "bank",
                PL.WEB,
                AP.PASSWORD_RESET,
                CF.BANKCARD_NUMBER,
                CF.SMS_CODE,
            )
        ],
        {PI.REAL_NAME},
    )
    return Ecosystem(
        [travel, mail, pay, relay, deep, vault, card_a, card_b, bank]
    )


@pytest.fixture()
def tdg(toy_ecosystem):
    return TransformationDependencyGraph.from_ecosystem(
        toy_ecosystem, AttackerProfile.baseline()
    )


class TestCoverage:
    def test_direct_node(self, tdg):
        assert tdg.is_direct("travel")
        assert tdg.is_direct("mail")
        assert not tdg.is_direct("pay")

    def test_robust_path_blocked(self, tdg):
        node = tdg.node("vault")
        cover = tdg.coverage(node, node.takeover_paths[0])
        assert cover.is_blocked
        assert CF.U2F_KEY in cover.unsatisfiable

    def test_residual_identified(self, tdg):
        node = tdg.node("pay")
        cover = tdg.coverage(node, node.takeover_paths[0])
        assert cover.residual == frozenset({CF.CITIZEN_ID})
        assert CF.SMS_CODE in cover.innate

    def test_password_paths_not_chainable(self, tdg):
        """A path demanding the current password is a dead end."""
        from tests.conftest import simple_profile

        eco = Ecosystem([simple_profile(name="pwonly", sms_reset=False)])
        graph = TransformationDependencyGraph.from_ecosystem(
            eco, AttackerProfile.baseline()
        )
        node = graph.node("pwonly")
        cover = graph.coverage(node, node.takeover_paths[0])
        assert cover.is_blocked


class TestParentsAndCouples:
    def test_full_capacity_parent(self, tdg):
        """travel exposes the citizen ID pay's reset demands (Def. 1)."""
        assert "travel" in tdg.full_capacity_parents("pay")

    def test_email_provider_is_parent_of_email_reset(self, tdg):
        assert "mail" in tdg.full_capacity_parents("relay")

    def test_direct_node_has_no_parents_needed(self, tdg):
        assert tdg.full_capacity_parents("travel") == frozenset()

    def test_half_capacity_parent(self, tdg):
        """A node providing only part of a multi-factor residual (Def. 2)."""
        eco_extra = profile(
            "strict",
            "fintech",
            [
                make_path(
                    "strict",
                    PL.WEB,
                    AP.PASSWORD_RESET,
                    CF.CITIZEN_ID,
                    CF.SECURITY_QUESTION,
                    CF.SMS_CODE,
                )
            ],
            {PI.REAL_NAME},
        )
        base = [tdg.node(n) for n in tdg._nodes]  # reuse built nodes
        graph = TransformationDependencyGraph(
            base + [TransformationDependencyGraph.node_from_profile(eco_extra)],
            AttackerProfile.baseline(),
        )
        halves = graph.half_capacity_parents("strict")
        assert "travel" in halves  # provides CID but not the answers
        assert "relay" in halves  # provides answers but not CID

    def test_couples_jointly_cover(self, tdg):
        """card_a + card_b masked views combine to the full bankcard
        (Insight 4 as Definition-3 couples)."""
        records = tdg.couples("bank")
        joint_sets = {record.providers for record in records}
        assert frozenset({"card_a", "card_b"}) in joint_sets

    def test_weak_edges_from_couples(self, tdg):
        weak = tdg.weak_edges()
        assert ("card_a", "bank") in weak
        assert ("card_b", "bank") in weak

    def test_strong_edges_exported_to_networkx(self, tdg):
        graph = tdg.to_networkx()
        assert graph.has_edge("travel", "pay")
        assert graph.nodes["travel"]["fringe"]
        assert not graph.nodes["pay"]["fringe"]


class TestDependencyLevels:
    def test_direct_level(self, tdg):
        levels = tdg.dependency_levels(PL.WEB)
        assert DependencyLevel.DIRECT in levels["travel"]

    def test_one_layer_level(self, tdg):
        levels = tdg.dependency_levels(PL.WEB)
        assert DependencyLevel.ONE_LAYER in levels["pay"]
        assert DependencyLevel.ONE_LAYER in levels["relay"]

    def test_two_layer_full(self, tdg):
        """deep needs security answers; only relay has them; relay needs
        the mail account first: mail -> relay -> deep."""
        levels = tdg.dependency_levels(PL.WEB)
        assert DependencyLevel.TWO_LAYER_FULL in levels["deep"]

    def test_two_layer_mixed_via_combining(self, tdg):
        levels = tdg.dependency_levels(PL.WEB)
        assert DependencyLevel.TWO_LAYER_MIXED in levels["bank"]

    def test_safe_level(self, tdg):
        levels = tdg.dependency_levels(PL.WEB)
        assert levels["vault"] == frozenset({DependencyLevel.SAFE})

    def test_level_fractions_sum_over_levels(self, tdg):
        fractions = tdg.level_fractions(PL.WEB)
        assert fractions[DependencyLevel.DIRECT] == pytest.approx(4 / 9)
        assert fractions[DependencyLevel.SAFE] == pytest.approx(1 / 9)

    def test_fringe_nodes(self, tdg):
        assert tdg.fringe_nodes() == frozenset(
            {"travel", "mail", "card_a", "card_b"}
        )


class TestAttackerSensitivity:
    def test_no_interception_no_fringe(self, toy_ecosystem):
        graph = TransformationDependencyGraph.from_ecosystem(
            toy_ecosystem, AttackerProfile.passive_observer()
        )
        assert graph.fringe_nodes() == frozenset()
        levels = graph.dependency_levels(PL.WEB)
        assert all(
            ls == frozenset({DependencyLevel.SAFE}) for ls in levels.values()
        )

    def test_email_channel_capability_gates_email_edges(self, toy_ecosystem):
        from repro.model.attacker import AttackerCapability

        attacker = AttackerProfile.baseline().without_capability(
            AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
        )
        graph = TransformationDependencyGraph.from_ecosystem(
            toy_ecosystem, attacker
        )
        assert "mail" not in graph.full_capacity_parents("relay")

    def test_duplicate_nodes_rejected(self, toy_ecosystem):
        nodes = [
            TransformationDependencyGraph.node_from_profile(p)
            for p in toy_ecosystem
        ]
        with pytest.raises(ValueError):
            TransformationDependencyGraph(
                nodes + [nodes[0]], AttackerProfile.baseline()
            )


class TestGomeStyleSelfLeak:
    def test_complementary_own_masks_count_as_complete(self):
        """A service whose own platforms reveal complementary halves leaks
        the full value by itself (the Gome example)."""
        gome_like = ServiceProfile(
            name="gome_like",
            domain="ecommerce",
            auth_paths=(
                make_path("gome_like", PL.WEB, AP.SIGN_IN, CF.PASSWORD),
                make_path("gome_like", PL.MOBILE, AP.SIGN_IN, CF.PASSWORD),
            ),
            exposed_info={
                PL.WEB: frozenset({PI.CITIZEN_ID}),
                PL.MOBILE: frozenset({PI.CITIZEN_ID}),
            },
            mask_specs={
                (PL.WEB, PI.CITIZEN_ID): MaskSpec(reveal_prefix=6, reveal_suffix=4),
                (PL.MOBILE, PI.CITIZEN_ID): MaskSpec(reveal_middle=(6, 14)),
            },
        )
        node = TransformationDependencyGraph.node_from_profile(gome_like)
        assert PI.CITIZEN_ID in node.pia
