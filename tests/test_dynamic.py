"""Unit tests for the incremental ecosystem engine.

Covers the mutation model's delta semantics, the session's maintained
reports, the streaming weak-edge generator, the what-if rollout planner
(including its endpoint agreeing with the all-at-once defense
evaluation), the incremental measurement re-aggregation, churn-stream
determinism, and the catalog builder's explicit-rng reproducibility.
"""

import pytest

from repro.analysis.measurement import MeasurementStudy
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.actfort import ActFort
from repro.core.tdg import TransformationDependencyGraph
from repro.defense.evaluation import DefenseEvaluation
from repro.defense.hardening import EmailHardening, SymmetryRepair
from repro.dynamic import (
    AddAuthPath,
    AddService,
    ApplyHardening,
    ChangeMasking,
    DynamicAnalysisSession,
    MutationStream,
    RemoveAuthPath,
    RemoveService,
    email_hardening_rollout,
    symmetry_repair_rollout,
)
from repro.dynamic.rollout import RolloutPlanner
from repro.model.account import AuthPurpose, MaskSpec
from repro.model.attacker import AttackerProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL

from tests.conftest import make_path, simple_profile


def small_ecosystem(size=16, seed=5):
    return CatalogBuilder(
        CatalogSpec(total_services=size), seed=seed
    ).build_ecosystem()


# ----------------------------------------------------------------------
# Mutation model / delta semantics
# ----------------------------------------------------------------------


class TestMutations:
    def test_add_service_delta_and_immutability(self):
        eco = small_ecosystem()
        before = tuple(eco.service_names)
        profile = simple_profile(name="newcomer")
        mutated, delta = eco.apply(AddService(profile=profile))
        assert tuple(eco.service_names) == before, "receiver mutated"
        assert mutated.service_names[-1] == "newcomer"
        assert delta.added == (profile,)
        assert not delta.removed and not delta.replaced
        assert not delta.is_noop
        assert "newcomer" in delta.describe()

    def test_add_duplicate_service_rejected(self):
        eco = small_ecosystem()
        existing = eco.services[0]
        with pytest.raises(ValueError):
            eco.apply(AddService(profile=existing))

    def test_remove_service_drops_accounts(self, identity):
        from repro.model.account import OnlineAccount
        from repro.model.ecosystem import Ecosystem

        a = simple_profile(name="a")
        b = simple_profile(name="b")
        eco = Ecosystem(
            [a, b],
            [
                OnlineAccount(service=a, identity=identity),
                OnlineAccount(service=b, identity=identity),
            ],
        )
        mutated, delta = eco.apply(RemoveService(service="a"))
        assert delta.removed == (a,)
        assert tuple(mutated.service_names) == ("b",)
        assert all(acc.service.name == "b" for acc in mutated.accounts)
        with pytest.raises(KeyError):
            eco.apply(RemoveService(service="ghost"))

    def test_add_auth_path_validates_service_and_duplicates(self):
        eco = small_ecosystem()
        name = eco.service_names[0]
        with pytest.raises(ValueError):
            AddAuthPath(
                service=name,
                path=make_path(
                    "other", PL.WEB, AuthPurpose.SIGN_IN, CF.PASSWORD
                ),
            )
        existing = eco.service(name).auth_paths[0]
        with pytest.raises(ValueError):
            eco.apply(AddAuthPath(service=name, path=existing))
        fresh = make_path(
            name, PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS,
            CF.EMAIL_CODE,
        )
        mutated, delta = eco.apply(AddAuthPath(service=name, path=fresh))
        (old, new), = delta.replaced
        assert old == eco.service(name)
        assert fresh in new.auth_paths and fresh not in old.auth_paths

    def test_remove_auth_path_requires_presence(self):
        eco = small_ecosystem()
        name = eco.service_names[0]
        path = eco.service(name).auth_paths[-1]
        mutated, delta = eco.apply(RemoveAuthPath(service=name, path=path))
        assert path not in mutated.service(name).auth_paths
        with pytest.raises(ValueError):
            mutated.apply(RemoveAuthPath(service=name, path=path))

    def test_change_masking_noop_delta(self):
        eco = small_ecosystem()
        # Removing a rule that was never set leaves the profile identical.
        name = next(
            p.name
            for p in eco
            if (PL.WEB, PI.CITIZEN_ID) not in p.mask_specs
        )
        mutated, delta = eco.apply(
            ChangeMasking(
                service=name, platform=PL.WEB, kind=PI.CITIZEN_ID, spec=None
            )
        )
        assert delta.is_noop
        assert mutated is eco
        assert delta.describe() == "(no-op)"

    def test_change_masking_explicit_rule_produces_delta(self):
        eco = small_ecosystem()
        name = eco.service_names[0]
        mutated, delta = eco.apply(
            ChangeMasking(
                service=name,
                platform=PL.WEB,
                kind=PI.CITIZEN_ID,
                spec=MaskSpec(reveal_suffix=4),
            )
        )
        (old, new), = delta.replaced
        assert new.mask_for(PL.WEB, PI.CITIZEN_ID) == MaskSpec(reveal_suffix=4)
        assert mutated.service(name) == new

    def test_apply_hardening_restricted_scope(self):
        eco = small_ecosystem(size=24)
        hardening = EmailHardening()
        targets = hardening.targets(eco)
        assert targets, "catalog should contain hardenable email providers"
        first = targets[0]
        mutated, delta = eco.apply(
            ApplyHardening(transform=hardening, services=(first,))
        )
        assert delta.replaced_names == {first}
        # Re-applying to the already-hardened service is a no-op.
        again, delta2 = mutated.apply(
            ApplyHardening(transform=hardening, services=(first,))
        )
        assert delta2.is_noop and again is mutated


# ----------------------------------------------------------------------
# Session layer
# ----------------------------------------------------------------------


class TestSession:
    def test_history_version_and_query(self):
        session = DynamicAnalysisSession(small_ecosystem())
        assert session.version == 0
        profile = simple_profile(name="latecomer")
        delta = session.mutate(AddService(profile=profile))
        assert session.version == 1
        assert session.history == (delta,)
        assert "latecomer" in session.ecosystem
        assert session.query("is_direct", "latecomer")
        assert session.query(lambda g: len(g.nodes)) == len(session)

    def test_maintained_reports_track_mutations(self):
        session = DynamicAnalysisSession(small_ecosystem())
        name = session.ecosystem.service_names[0]
        before = session.auth_reports[name]
        path = make_path(
            name, PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS,
            CF.EMAIL_CODE,
        )
        session.mutate(AddAuthPath(service=name, path=path))
        after = session.auth_reports[name]
        assert len(after.paths()) == len(before.paths()) + 1
        session.mutate(RemoveService(service=name))
        assert name not in session.auth_reports
        assert name not in session.collection_reports

    def test_noop_mutation_counts_but_touches_nothing(self):
        session = DynamicAnalysisSession(small_ecosystem())
        graph = session.graph()
        graph.level_fractions(PL.WEB)
        coverage_entries = dict(graph._coverage_cache)
        name = next(
            p.name
            for p in session.ecosystem
            if (PL.WEB, PI.CITIZEN_ID) not in p.mask_specs
        )
        delta = session.mutate(
            ChangeMasking(
                service=name, platform=PL.WEB, kind=PI.CITIZEN_ID, spec=None
            )
        )
        assert delta.is_noop
        assert session.version == 1
        assert graph._coverage_cache == coverage_entries
        engine = graph.levels_engine()
        assert engine._levels[PL.WEB], "no-op must not drop the level memo"
        assert not engine._pending_touched, "no-op must not reach the engine"

    def test_attacker_and_attackers_are_exclusive(self):
        with pytest.raises(ValueError):
            DynamicAnalysisSession(
                small_ecosystem(),
                attacker=AttackerProfile.baseline(),
                attackers={"x": AttackerProfile.baseline()},
            )
        with pytest.raises(ValueError):
            DynamicAnalysisSession(small_ecosystem(), attackers={})


# ----------------------------------------------------------------------
# Streaming weak edges
# ----------------------------------------------------------------------


class TestIterWeakEdges:
    def test_matches_weak_edges_without_couple_materialization(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            small_ecosystem(size=24, seed=9), AttackerProfile.baseline()
        )
        streamed = list(graph.iter_weak_edges())
        assert len(streamed) == len(set(streamed)), "edges must be deduped"
        assert not graph._couples_cache, (
            "streaming must not populate the per-service Couple File memo"
        )
        assert frozenset(streamed) == graph.weak_edges()

    def test_reuses_memoized_couples_when_present(self):
        graph = TransformationDependencyGraph.from_ecosystem(
            small_ecosystem(size=20, seed=11), AttackerProfile.baseline()
        )
        reference = graph.weak_edges()
        for node in graph.nodes:
            graph.couples(node.service)
        assert graph._couples_cache
        assert frozenset(graph.iter_weak_edges()) == reference


# ----------------------------------------------------------------------
# Rollout planner
# ----------------------------------------------------------------------


class TestRollout:
    def test_trajectory_shape_and_final_state_matches_full_apply(self):
        eco = small_ecosystem(size=24, seed=13)
        steps = email_hardening_rollout(eco)
        assert steps, "expected at least one email provider to harden"
        planner = RolloutPlanner(eco, include_weak=True)
        trajectory = planner.replay(steps)
        assert len(trajectory.points) == len(steps) + 1
        assert trajectory.baseline.step == "baseline"
        assert trajectory.baseline.weak_edges is not None
        # The endpoint must agree exactly with the one-shot countermeasure.
        hardened = EmailHardening().apply(eco)
        oracle = ActFort.from_ecosystem(hardened).tdg()
        for platform in (PL.WEB, PL.MOBILE):
            assert trajectory.final.level_fractions[
                platform
            ] == oracle.level_fractions(platform)
        assert trajectory.final.strong_edges == len(oracle.strong_edges())
        assert trajectory.final.weak_edges == len(oracle.weak_edges())
        series = trajectory.series(
            PL.WEB, next(iter(trajectory.baseline.level_fractions[PL.WEB]))
        )
        assert len(series) == len(trajectory.points)
        assert len(trajectory.rows()) == len(trajectory.points)

    def test_symmetry_rollout_groups_by_domain(self):
        eco = small_ecosystem(size=28, seed=17)
        steps = symmetry_repair_rollout(eco)
        repair = SymmetryRepair()
        stepped_domains = [step.label.split(":", 1)[1] for step in steps]
        assert len(stepped_domains) == len(set(stepped_domains))
        expected = {
            eco.service(name).domain for name in repair.targets(eco)
        }
        assert set(stepped_domains) == expected

    def test_evaluate_rollout_default_plan(self):
        eco = small_ecosystem(size=20, seed=19)
        trajectory = DefenseEvaluation(eco).evaluate_rollout()
        assert trajectory.points[0].step == "baseline"
        assert len(trajectory.points) >= 2
        # Hardening only ever adds factors, so the web SAFE fraction is
        # monotone along the default plan.
        from repro.core.tdg import DependencyLevel

        safe = trajectory.series(PL.WEB, DependencyLevel.SAFE)
        assert all(b >= a - 1e-12 for a, b in zip(safe, safe[1:]))


# ----------------------------------------------------------------------
# Incremental measurement re-aggregation
# ----------------------------------------------------------------------


class TestMeasurementSession:
    def test_run_session_equals_from_scratch_measurement(self):
        session = DynamicAnalysisSession(small_ecosystem(size=20, seed=23))
        stream = MutationStream(seed=29)
        study = MeasurementStudy()
        for _ in range(6):
            session.mutate(stream.next_mutation(session.ecosystem))
        incremental = study.run_session(session)
        oracle = study.run_on_ecosystem(session.ecosystem)
        assert incremental == oracle


# ----------------------------------------------------------------------
# Churn stream + builder reproducibility
# ----------------------------------------------------------------------


class TestReproducibility:
    def test_mutation_stream_replays_bit_for_bit(self):
        eco = small_ecosystem(size=18, seed=31)
        first = MutationStream(seed=37).take(eco, 25)
        second = MutationStream(seed=37).take(eco, 25)
        assert first == second
        assert first != MutationStream(seed=38).take(eco, 25)

    def test_builder_is_idempotent_run_to_run(self):
        builder = CatalogBuilder(CatalogSpec(total_services=40), seed=41)
        assert tuple(builder.build_ecosystem().services) == tuple(
            builder.build_ecosystem().services
        )

    def test_synthesize_service_threads_explicit_rng(self):
        import random

        builder = CatalogBuilder(CatalogSpec(total_services=10), seed=43)
        domain = builder.spec.domains[0]
        one = builder.synthesize_service(0, domain, random.Random(7))
        two = builder.synthesize_service(0, domain, random.Random(7))
        assert one == two
        named = builder.synthesize_service(
            1, domain, random.Random(7), name="custom_name"
        )
        assert named.name == "custom_name"
