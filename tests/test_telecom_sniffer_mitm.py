"""Tests for the passive sniffer, the jammer and the active MitM rig."""

import pytest

from repro.telecom.cipher import CipherSuite, CrackModel
from repro.telecom.jammer import FourGJammer
from repro.telecom.mitm import ActiveMitM, MitMStep
from repro.telecom.network import GSMNetwork, RadioTech
from repro.telecom.sniffer import OsmocomSniffer
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence


def make_network(cipher=CipherSuite.A5_0, arfcns=(512, 514, 516, 518)):
    net = GSMNetwork(clock=Clock(), seeds=SeedSequence(9))
    net.add_cell("cell-A", arfcns=arfcns, cipher=cipher)
    net.add_cell("cell-B", arfcns=(700,), cipher=cipher)
    return net


class TestSnifferCapture:
    def test_captures_plaintext_burst(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(net, "cell-A", monitors=16)
        sniffer.start()
        net.deliver_sms("138", "your code is 123456", sender="svc")
        assert sniffer.latest_code_from("svc") == "123456"

    def test_out_of_cell_burst_not_captured(self):
        """The paper's range limit: the rig must share the victim's cell."""
        net = make_network()
        net.provision_phone("138", "cell-B", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(net, "cell-A", monitors=16)
        sniffer.start()
        net.deliver_sms("138", "your code is 123456", sender="svc")
        assert sniffer.latest_code_from("svc") is None

    def test_under_provisioned_rig_misses_dark_arfcns(self):
        """Fewer C118s than ARFCNs leaves frequencies unmonitored."""
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(net, "cell-A", monitors=1)
        sniffer.start()
        for _ in range(30):
            net.clock.advance(61)
            net.deliver_sms("138", "your code is 111111", sender="svc")
        stats = sniffer.stats
        assert stats["missed_dark_arfcn"] > 0
        assert stats["captured"] > 0

    def test_encrypted_burst_requires_crack(self):
        net = make_network(cipher=CipherSuite.A5_1)
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(
            net,
            "cell-A",
            monitors=16,
            crack_model=CrackModel(success_probability=1.0, crack_seconds=30.0),
        )
        sniffer.start()
        net.deliver_sms("138", "your code is 654321", sender="svc")
        capture = sniffer.captures[0]
        assert capture.was_encrypted
        assert capture.available_at > capture.captured_at
        assert capture.otp_code == "654321"

    def test_failed_crack_is_a_miss(self):
        net = make_network(cipher=CipherSuite.A5_1)
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(
            net,
            "cell-A",
            monitors=16,
            crack_model=CrackModel(success_probability=0.0),
        )
        sniffer.start()
        net.deliver_sms("138", "your code is 654321", sender="svc")
        assert sniffer.captures == ()
        assert sniffer.stats["missed_crack_failure"] == 1

    def test_ready_by_deadline_filters_slow_cracks(self):
        net = make_network(cipher=CipherSuite.A5_1)
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(
            net,
            "cell-A",
            monitors=16,
            crack_model=CrackModel(success_probability=1.0, crack_seconds=1000.0),
        )
        sniffer.start()
        net.deliver_sms("138", "your code is 654321", sender="svc")
        assert sniffer.latest_code_from("svc", ready_by=300.0) is None
        assert sniffer.latest_code_from("svc", ready_by=10_000.0) == "654321"

    def test_stopped_sniffer_captures_nothing(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(net, "cell-A", monitors=16)
        sniffer.start()
        sniffer.stop()
        net.deliver_sms("138", "your code is 123456", sender="svc")
        assert sniffer.captures == ()

    def test_non_otp_messages_filtered_by_query(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        sniffer = OsmocomSniffer(net, "cell-A", monitors=16)
        sniffer.start()
        net.deliver_sms("138", "lunch at noon?", sender="friend")
        assert sniffer.latest_code_from("friend") is None
        assert len(sniffer.captures) == 1

    def test_monitor_count_validated(self):
        net = make_network()
        with pytest.raises(ValueError):
            OsmocomSniffer(net, "cell-A", monitors=0)


class TestJammer:
    def test_context_manager_activates_and_restores(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.LTE)
        jammer = FourGJammer(net, "cell-A")
        with jammer:
            assert net.effective_tech("138") is RadioTech.GSM
            assert jammer.active
        assert net.effective_tech("138") is RadioTech.LTE
        assert not jammer.active


class TestActiveMitM:
    def test_fails_without_downgrade(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.LTE)
        outcome = ActiveMitM(net, "cell-A").execute("138")
        assert not outcome.success
        assert outcome.failed_step is MitMStep.FORCE_GSM_DOWNGRADE

    def test_fails_out_of_cell(self):
        net = make_network()
        net.provision_phone("138", "cell-B", preferred_tech=RadioTech.GSM)
        outcome = ActiveMitM(net, "cell-A").execute("138")
        assert not outcome.success
        assert "out of radio range" in outcome.transcript[0].detail

    def test_fails_for_unknown_number(self):
        net = make_network()
        outcome = ActiveMitM(net, "cell-A").execute("000")
        assert not outcome.success

    def test_full_sequence_with_jammer(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.LTE)
        with FourGJammer(net, "cell-A"):
            mitm = ActiveMitM(net, "cell-A")
            outcome = mitm.execute("138")
        assert outcome.success
        steps = [record.step for record in outcome.transcript]
        assert steps == list(MitMStep)  # the full Fig. 10 sequence, in order
        assert outcome.imsi is not None
        assert outcome.msisdn == "138"

    def test_interception_swallows_victim_copy(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        mitm = ActiveMitM(net, "cell-A")
        assert mitm.execute("138").success
        radiated = []
        net.bus.subscribe(radiated.append)
        net.deliver_sms("138", "your code is 999999", sender="bank")
        assert mitm.latest_code_from("bank") == "999999"
        assert radiated == []  # covert: nothing for the victim or sniffers

    def test_release_restores_delivery(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        mitm = ActiveMitM(net, "cell-A")
        mitm.execute("138")
        mitm.release()
        assert not net.is_intercepted("138")

    def test_transcript_timestamps_advance(self):
        net = make_network()
        net.provision_phone("138", "cell-A", preferred_tech=RadioTech.GSM)
        outcome = ActiveMitM(net, "cell-A").execute("138")
        times = [record.at for record in outcome.transcript]
        assert times == sorted(times)
        assert times[-1] > times[0]
