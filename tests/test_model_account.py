"""Unit tests for auth paths, mask specs and service profiles."""

import pytest

from tests.conftest import make_path, simple_profile

from repro.model.account import (
    AuthPath,
    AuthPurpose,
    MaskSpec,
    PathType,
    ServiceProfile,
    count_paths,
)
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


class TestAuthPath:
    def test_empty_factors_rejected(self):
        with pytest.raises(ValueError):
            AuthPath(
                service="x",
                platform=PL.WEB,
                purpose=AuthPurpose.SIGN_IN,
                factors=frozenset(),
            )

    def test_linked_providers_require_linked_factor(self):
        with pytest.raises(ValueError):
            AuthPath(
                service="x",
                platform=PL.WEB,
                purpose=AuthPurpose.SIGN_IN,
                factors=frozenset({CF.PASSWORD}),
                linked_providers=frozenset({"gmail"}),
            )

    def test_sms_only_detection(self):
        path = make_path(
            "x", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
        )
        assert path.is_sms_only

    def test_sms_plus_extra_is_not_sms_only(self):
        path = make_path(
            "x", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.SMS_CODE, CF.CITIZEN_ID
        )
        assert not path.is_sms_only

    def test_describe_uses_paper_shorthand(self):
        path = make_path(
            "x", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE
        )
        assert path.describe() == "reset[web]: PN+SC"


class TestPathType:
    def test_password_path_is_general(self):
        path = make_path("x", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD)
        assert path.path_type is PathType.GENERAL

    def test_otp_path_is_general(self):
        path = make_path(
            "x", PL.WEB, AuthPurpose.SIGN_IN, CF.EMAIL_ADDRESS, CF.EMAIL_CODE
        )
        assert path.path_type is PathType.GENERAL

    def test_citizen_id_path_is_info(self):
        path = make_path(
            "x", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.SMS_CODE, CF.CITIZEN_ID
        )
        assert path.path_type is PathType.INFO

    def test_biometric_path_is_unique(self):
        path = make_path(
            "x", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.SMS_CODE, CF.FACE_SCAN
        )
        assert path.path_type is PathType.UNIQUE

    def test_unique_dominates_info(self):
        """A fingerprint path stays unique even with a real-name factor."""
        path = make_path(
            "x",
            PL.WEB,
            AuthPurpose.PASSWORD_RESET,
            CF.FINGERPRINT,
            CF.REAL_NAME,
        )
        assert path.path_type is PathType.UNIQUE


class TestMaskSpec:
    def test_prefix_suffix_positions(self):
        spec = MaskSpec(reveal_prefix=2, reveal_suffix=3)
        assert spec.revealed_positions(10) == frozenset({0, 1, 7, 8, 9})

    def test_middle_positions(self):
        spec = MaskSpec(reveal_middle=(3, 6))
        assert spec.revealed_positions(10) == frozenset({3, 4, 5})

    def test_full_reveals_everything(self):
        assert MaskSpec.full().revealed_positions(18) == frozenset(range(18))

    def test_hidden_reveals_nothing(self):
        assert MaskSpec.hidden().revealed_positions(18) == frozenset()

    def test_short_value_clamps(self):
        spec = MaskSpec(reveal_prefix=100, reveal_suffix=100)
        assert spec.revealed_positions(4) == frozenset(range(4))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MaskSpec(reveal_prefix=-1)

    def test_invalid_middle_rejected(self):
        with pytest.raises(ValueError):
            MaskSpec(reveal_middle=(5, 2))


class TestServiceProfile:
    def test_mismatched_path_service_rejected(self):
        path = make_path("other", PL.WEB, AuthPurpose.SIGN_IN, CF.PASSWORD)
        with pytest.raises(ValueError):
            ServiceProfile(
                name="svc",
                domain="media",
                auth_paths=(path,),
                exposed_info={},
            )

    def test_platform_discovery(self):
        profile = simple_profile()
        assert profile.platforms == frozenset({PL.WEB})

    def test_path_filtering(self):
        profile = simple_profile()
        assert len(profile.signin_paths(PL.WEB)) == 1
        assert len(profile.reset_paths(PL.WEB)) == 1
        assert len(profile.paths(PL.MOBILE)) == 0

    def test_fringe_detection(self):
        assert simple_profile(sms_reset=True).is_fringe
        assert not simple_profile(sms_reset=False).is_fringe

    def test_all_exposed_info_unions_platforms(self):
        profile = ServiceProfile(
            name="svc",
            domain="media",
            auth_paths=(
                make_path("svc", PL.WEB, AuthPurpose.SIGN_IN, CF.PASSWORD),
                make_path("svc", PL.MOBILE, AuthPurpose.SIGN_IN, CF.PASSWORD),
            ),
            exposed_info={
                PL.WEB: frozenset({PI.REAL_NAME}),
                PL.MOBILE: frozenset({PI.CITIZEN_ID}),
            },
        )
        assert profile.all_exposed_info() == frozenset(
            {PI.REAL_NAME, PI.CITIZEN_ID}
        )

    def test_unspecified_mask_is_full(self):
        profile = simple_profile()
        assert profile.mask_for(PL.WEB, PI.REAL_NAME) == MaskSpec.full()

    def test_strongest_path_type(self):
        profile = ServiceProfile(
            name="svc",
            domain="fintech",
            auth_paths=(
                make_path("svc", PL.WEB, AuthPurpose.SIGN_IN, CF.PASSWORD),
                make_path(
                    "svc", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.FACE_SCAN
                ),
            ),
            exposed_info={},
        )
        assert profile.strongest_path_type() is PathType.UNIQUE

    def test_count_paths(self):
        profiles = [simple_profile(name="a"), simple_profile(name="b")]
        assert count_paths(profiles) == 4
