"""Wire-format round-trips for the API result types.

Every result the facade serves must be JSON-serializable: ``to_dict``
output survives ``json.dumps``/``json.loads``, and ``from_dict`` inverts
it exactly (dataclass equality), so a serving layer can ship responses
with no post-processing.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import (
    AnalysisService,
    ClosureQuery,
    ClosureSummary,
    CoupleFileQuery,
    CouplePage,
    DefenseEvalQuery,
    DefenseEvalResult,
    DependencyLevelsQuery,
    DependencyLevelsResult,
    EdgePage,
    EdgeSummary,
    EdgeSummaryQuery,
    LevelReportQuery,
    LevelReportResult,
    MeasurementQuery,
    RolloutQuery,
    WeakEdgeQuery,
)
from repro.analysis.measurement import MeasurementResults
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.defense.evaluation import DefenseOutcome
from repro.dynamic.rollout import (
    RolloutTrajectory,
    email_hardening_rollout,
)
from repro.model.factors import Platform


@pytest.fixture(scope="module")
def service():
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=30), seed=6021
    ).build_ecosystem()
    return AnalysisService(ecosystem)


def roundtrip(result):
    """to_dict -> json -> from_dict must reproduce the value exactly."""
    document = json.loads(json.dumps(result.to_dict()))
    return type(result).from_dict(document)


def test_measurement_results_roundtrip(service):
    measured = service.execute(MeasurementQuery())
    assert isinstance(measured, MeasurementResults)
    assert roundtrip(measured) == measured
    assert all(isinstance(line, str) for line in measured.summary_lines())


def test_level_and_dependency_results_roundtrip(service):
    report = service.execute(LevelReportQuery())
    assert isinstance(report, LevelReportResult)
    assert roundtrip(report) == report

    levels = service.execute(DependencyLevelsQuery(platform=Platform.WEB))
    assert isinstance(levels, DependencyLevelsResult)
    assert roundtrip(levels) == levels


def test_closure_summary_roundtrip(service):
    summary = service.execute(ClosureQuery())
    assert isinstance(summary, ClosureSummary)
    assert roundtrip(summary) == summary


def test_edge_summary_and_pages_roundtrip(service):
    edges = service.execute(EdgeSummaryQuery(include_weak=True))
    assert isinstance(edges, EdgeSummary)
    assert roundtrip(edges) == edges

    couple_page = service.execute(CoupleFileQuery(page_size=20))
    assert isinstance(couple_page, CouplePage)
    restored = roundtrip(couple_page)
    # Provider sets serialize sorted; record identity is preserved.
    assert restored == couple_page

    edge_page = service.execute(WeakEdgeQuery(page_size=50))
    assert isinstance(edge_page, EdgePage)
    assert roundtrip(edge_page) == edge_page


def test_defense_eval_result_roundtrip(service):
    result = service.execute(DefenseEvalQuery())
    assert isinstance(result, DefenseEvalResult)
    assert result.variants[0] == "baseline"
    assert roundtrip(result) == result
    outcome = result.row(service.primary_attacker)[0]
    assert isinstance(outcome, DefenseOutcome)
    assert DefenseOutcome.from_dict(
        json.loads(json.dumps(outcome.to_dict()))
    ) == outcome


def test_rollout_trajectory_and_step_records_roundtrip(service):
    steps = email_hardening_rollout(service.ecosystem)[:2]
    trajectory = service.execute(RolloutQuery(steps=steps))
    assert isinstance(trajectory, RolloutTrajectory)
    assert roundtrip(trajectory) == trajectory
    for step in steps:
        document = json.loads(json.dumps(step.to_dict()))
        assert document["label"] == step.label
        assert len(document["mutations"]) == len(step.mutations)


def test_legacy_results_from_shims_serialize_too(service):
    from repro.analysis.measurement import MeasurementStudy

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        measured = MeasurementStudy().run_on_ecosystem(service.ecosystem)
    assert roundtrip(measured) == measured
