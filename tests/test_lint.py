"""The in-repo AST linter (tools/lint.py) and the repo-wide clean gate.

No third-party linter ships in the repro environment, so ``make verify``
and this test both run ``tools/lint.py`` -- dead locals and unused
imports fail tier-1.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint  # noqa: E402


def _codes(source):
    return [f.code for f in lint.check_source(textwrap.dedent(source))]


class TestUnusedLocal:
    def test_flags_dead_assignment(self):
        findings = lint.check_source(
            textwrap.dedent(
                """
                def f(tdg):
                    attacker = tdg.attacker
                    return tdg.nodes
                """
            )
        )
        assert [f.code for f in findings] == ["unused-local"]
        assert "attacker" in findings[0].message
        assert findings[0].line == 3

    def test_used_assignment_is_clean(self):
        assert _codes(
            """
            def f(tdg):
                attacker = tdg.attacker
                return attacker
            """
        ) == []

    def test_use_in_nested_scope_counts(self):
        assert _codes(
            """
            def f(tdg):
                attacker = tdg.attacker
                return lambda: attacker
            """
        ) == []

    def test_underscore_loop_targets_and_unpacking_are_exempt(self):
        assert _codes(
            """
            def f(pairs):
                _scratch = object()
                total = 0
                for unused, value in pairs:
                    total += value
                return total
            """
        ) == []

    def test_flags_dead_with_and_except_bindings(self):
        assert _codes(
            """
            def f(cm):
                with cm() as handle:
                    pass
                try:
                    pass
                except ValueError as exc:
                    return None
            """
        ) == ["unused-local", "unused-local"]

    def test_noqa_suppresses(self):
        assert _codes(
            """
            def f(tdg):
                attacker = tdg.attacker  # noqa
                return tdg.nodes
            """
        ) == []

    def test_dynamic_scope_disables_the_check(self):
        assert _codes(
            """
            def f(tdg):
                attacker = tdg.attacker
                return locals()
            """
        ) == []


class TestUnusedImport:
    def test_flags_unused_import(self):
        findings = lint.check_source(
            "import os\nimport sys\n\nprint(sys.argv)\n"
        )
        assert [f.code for f in findings] == ["unused-import"]
        assert "os" in findings[0].message

    def test_from_import_and_alias(self):
        assert _codes("from typing import List, Optional\nx: List = []\n") == [
            "unused-import"
        ]
        assert _codes("import numpy as np\nprint(np)\n") == []

    def test_reexport_all_and_type_checking_are_exempt(self):
        assert _codes("from repro import thing as thing\n") == []
        assert _codes(
            """
            from repro import thing

            __all__ = ["thing"]
            """
        ) == []
        assert _codes(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro import OnlyForAnnotations

            def f(x: "OnlyForAnnotations"):
                return x
            """
        ) == []

    def test_future_import_is_exempt(self):
        assert _codes("from __future__ import annotations\n") == []


class TestRawTiming:
    SOURCE = """
        import time

        def f():
            start = time.perf_counter()
            return time.time() - start
        """

    def test_flags_raw_clock_calls_in_engine_code(self):
        findings = lint.check_source(
            textwrap.dedent(self.SOURCE), path="src/repro/levels/engine.py"
        )
        assert [f.code for f in findings] == ["raw-timing", "raw-timing"]
        assert "time.perf_counter" in findings[0].message
        assert "repro.obs" in findings[0].message

    def test_flags_bare_perf_counter_import_form(self):
        findings = lint.check_source(
            textwrap.dedent(
                """
                from time import perf_counter

                def f():
                    return perf_counter()
                """
            ),
            path="src/repro/dynamic/churn.py",
        )
        assert [f.code for f in findings] == ["raw-timing"]

    def test_obs_package_and_non_src_paths_are_exempt(self):
        source = textwrap.dedent(self.SOURCE)
        assert lint.check_source(source, path="src/repro/obs/trace.py") == []
        assert lint.check_source(source, path="tests/test_perf.py") == []
        assert lint.check_source(source, path="benchmarks/bench.py") == []

    def test_sanctioned_clock_is_clean(self):
        assert lint.check_source(
            textwrap.dedent(
                """
                from repro.obs import monotonic

                def f():
                    return monotonic()
                """
            ),
            path="src/repro/dynamic/churn.py",
        ) == []

    def test_noqa_suppresses(self):
        findings = lint.check_source(
            textwrap.dedent(
                """
                import time

                def f():
                    return time.perf_counter()  # noqa: raw timing on purpose
                """
            ),
            path="src/repro/core/tdg.py",
        )
        assert findings == []


class TestObjectPosting:
    def test_flags_name_collection_dict_in_hot_module(self):
        source = textwrap.dedent(
            """
            from typing import Dict, FrozenSet

            class Index:
                def __init__(self):
                    self._demanders: Dict[str, FrozenSet[str]] = {}
            """
        )
        findings = lint.check_source(
            source, path="src/repro/core/index.py"
        )
        assert [f.code for f in findings] == ["object-posting"]

    def test_decoded_view_marker_and_noqa_suppress(self):
        source = textwrap.dedent(
            """
            from typing import Dict, FrozenSet

            class Index:
                def __init__(self):
                    self._views: Dict[str, FrozenSet[str]] = {}  # decoded view
                    self._odd: Dict[str, FrozenSet[str]] = {}  # noqa
            """
        )
        assert lint.check_source(
            source, path="src/repro/levels/parents.py"
        ) == []

    def test_mask_postings_and_key_position_names_are_clean(self):
        source = textwrap.dedent(
            """
            from typing import Dict, Optional, Tuple

            class Engine:
                def __init__(self):
                    self._children: Dict[str, int] = {}
                    self._memo: Dict[Tuple[str, Optional[int]], Tuple[int, ...]] = {}
            """
        )
        assert lint.check_source(
            source, path="src/repro/levels/engine.py"
        ) == []

    def test_rule_only_covers_hot_modules(self):
        source = textwrap.dedent(
            """
            from typing import Dict, FrozenSet

            class Other:
                def __init__(self):
                    self._postings: Dict[str, FrozenSet[str]] = {}
            """
        )
        assert lint.check_source(
            source, path="src/repro/core/tdg.py"
        ) == []


class TestSwallowedException:
    SERVE_PATH = "src/repro/serve/shard.py"

    def test_flags_pass_only_handler_in_serve_layer(self):
        source = textwrap.dedent(
            """
            def handle(request):
                try:
                    apply(request)
                except Exception:
                    pass
            """
        )
        findings = lint.check_source(source, path=self.SERVE_PATH)
        assert [f.code for f in findings] == ["swallowed-exception"]

    def test_flags_ellipsis_and_docstring_only_bodies(self):
        source = textwrap.dedent(
            """
            def handle(request):
                try:
                    apply(request)
                except ValueError:
                    ...
                except KeyError:
                    "deliberately ignored"
            """
        )
        findings = lint.check_source(source, path=self.SERVE_PATH)
        assert [f.code for f in findings] == [
            "swallowed-exception",
            "swallowed-exception",
        ]

    def test_handler_that_reports_is_clean(self):
        source = textwrap.dedent(
            """
            def handle(request, audit, dlq):
                try:
                    apply(request)
                except ValueError as exc:
                    audit.record("rejected", error=str(exc))
                except Exception as exc:
                    dlq.add(request, exc)
                    raise
            """
        )
        assert lint.check_source(source, path=self.SERVE_PATH) == []

    def test_rule_only_covers_serve_layer_and_noqa_suppresses(self):
        swallow = textwrap.dedent(
            """
            def probe(value):
                try:
                    coerce(value)
                except TypeError:
                    pass
            """
        )
        assert (
            lint.check_source(swallow, path="src/repro/core/tdg.py") == []
        )
        suppressed = textwrap.dedent(
            """
            def probe(value):
                try:
                    coerce(value)
                except TypeError:  # noqa: best-effort probe
                    pass
            """
        )
        assert (
            lint.check_source(suppressed, path=self.SERVE_PATH) == []
        )


class TestBarePrint:
    CLI_PATH = "src/repro/cli/main.py"

    def test_flags_print_in_cli_package(self):
        source = textwrap.dedent(
            """
            def emit(record):
                print(record)
            """
        )
        findings = lint.check_source(source, path=self.CLI_PATH)
        assert [f.code for f in findings] == ["bare-print"]
        assert "RecordWriter" in findings[0].message

    def test_record_writer_and_stderr_are_clean(self):
        source = textwrap.dedent(
            """
            import sys

            def emit(writer, record):
                writer.record(record)
                sys.stderr.write("progress\\n")
            """
        )
        assert lint.check_source(source, path=self.CLI_PATH) == []

    def test_rule_only_covers_the_cli_package(self):
        source = textwrap.dedent(
            """
            def report(rows):
                print(rows)
            """
        )
        assert (
            lint.check_source(source, path="src/repro/core/tdg.py") == []
        )
        assert (
            lint.check_source(source, path="tools/make_golden_cli.py") == []
        )

    def test_noqa_suppresses(self):
        source = textwrap.dedent(
            """
            def debug(record):
                print(record)  # noqa: debugging hook
            """
        )
        assert lint.check_source(source, path=self.CLI_PATH) == []

    def test_shadowed_print_attribute_is_clean(self):
        source = textwrap.dedent(
            """
            def emit(printer, record):
                printer.print(record)
            """
        )
        assert lint.check_source(source, path=self.CLI_PATH) == []


def test_repository_is_lint_clean():
    """The gate ``make verify`` also runs: the whole tree stays clean."""
    targets = [
        REPO_ROOT / name
        for name in lint.DEFAULT_TARGETS
        if (REPO_ROOT / name).exists()
    ]
    findings = lint.check_paths(targets)
    assert findings == [], "\n".join(f.render() for f in findings)
