"""Unit tests for the simulated service state machines."""

import pytest

from tests.conftest import make_path

from repro.model.account import AuthPurpose as AP
from repro.model.account import MaskSpec, ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL
from repro.model.identity import IdentityGenerator
from repro.websim.errors import (
    AccountLocked,
    FactorMismatch,
    InvalidSession,
    MissingFactor,
    OTPError,
    UnknownHandle,
    UnknownPath,
)
from repro.websim.internet import Internet
from repro.websim.service import device_secret


def build_service(extra_paths=(), exposed=None, masks=None, name="svc"):
    paths = (
        make_path(name, PL.WEB, AP.SIGN_IN, CF.USERNAME, CF.PASSWORD),
        make_path(name, PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
    ) + tuple(extra_paths)
    profile = ServiceProfile(
        name=name,
        domain="media",
        auth_paths=paths,
        exposed_info={
            PL.WEB: frozenset(
                exposed
                if exposed is not None
                else {PI.REAL_NAME, PI.CITIZEN_ID, PI.CELLPHONE_NUMBER}
            )
        },
        mask_specs=masks or {},
    )
    internet = Internet()
    service = internet.deploy(profile)
    return internet, service


@pytest.fixture()
def victim():
    return IdentityGenerator(seed=11).generate()


def read_code(internet, phone, sender):
    import re

    for _at, msg_sender, text in reversed(internet.handset_messages(phone)):
        if msg_sender == sender:
            return re.search(r"code is (\d+)", text).group(1)
    raise AssertionError("no code delivered")


class TestEnrollment:
    def test_double_enrollment_rejected(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        with pytest.raises(ValueError):
            service.enroll(victim, "pw")

    def test_handles_resolve(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        for handle in (
            victim.person_id,
            victim.cellphone_number,
            victim.email_address,
        ):
            session = service.sign_in(
                PL.WEB, handle, {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"}
            )
            assert session.person_id == victim.person_id

    def test_unknown_handle_rejected(self):
        _net, service = build_service()
        with pytest.raises(UnknownHandle):
            service.sign_in(PL.WEB, "nobody", {})


class TestSignIn:
    def test_password_sign_in(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        session = service.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        assert service.validate_session(session)

    def test_wrong_password_rejected(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        with pytest.raises(FactorMismatch):
            service.sign_in(
                PL.WEB,
                victim.person_id,
                {CF.USERNAME: victim.person_id, CF.PASSWORD: "wrong"},
            )

    def test_missing_factor_reported(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        with pytest.raises(MissingFactor):
            service.sign_in(PL.WEB, victim.person_id, {CF.USERNAME: victim.person_id})

    def test_unknown_platform_rejected(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        with pytest.raises(UnknownPath):
            service.sign_in(PL.MOBILE, victim.person_id, {CF.PASSWORD: "pw"})


class TestSMSReset:
    def test_reset_with_intercepted_code(self, victim):
        net, service = build_service()
        service.enroll(victim, "pw")
        service.request_otp(
            victim.cellphone_number, CF.SMS_CODE, AP.PASSWORD_RESET
        )
        code = read_code(net, victim.cellphone_number, "svc")
        session = service.reset_password(
            PL.WEB,
            victim.cellphone_number,
            {CF.CELLPHONE_NUMBER: victim.cellphone_number, CF.SMS_CODE: code},
            "new-pw",
        )
        assert service.validate_session(session)
        # Old password no longer works; new one does.
        with pytest.raises(FactorMismatch):
            service.sign_in(
                PL.WEB,
                victim.person_id,
                {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
            )
        service.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "new-pw"},
        )

    def test_reset_revokes_existing_sessions(self, victim):
        net, service = build_service()
        service.enroll(victim, "pw")
        old_session = service.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        service.request_otp(
            victim.cellphone_number, CF.SMS_CODE, AP.PASSWORD_RESET
        )
        code = read_code(net, victim.cellphone_number, "svc")
        service.reset_password(
            PL.WEB,
            victim.cellphone_number,
            {CF.CELLPHONE_NUMBER: victim.cellphone_number, CF.SMS_CODE: code},
            "new-pw",
        )
        with pytest.raises(InvalidSession):
            service.validate_session(old_session)

    def test_signin_code_rejected_for_reset(self, victim):
        """Purpose separation: a sign-in code cannot reset the password."""
        net, service = build_service()
        service.enroll(victim, "pw")
        service.request_otp(victim.cellphone_number, CF.SMS_CODE, AP.SIGN_IN)
        code = read_code(net, victim.cellphone_number, "svc")
        with pytest.raises(OTPError):
            service.reset_password(
                PL.WEB,
                victim.cellphone_number,
                {
                    CF.CELLPHONE_NUMBER: victim.cellphone_number,
                    CF.SMS_CODE: code,
                },
                "x",
            )


class TestLocking:
    def test_account_locks_after_repeated_reset_failures(self, victim):
        net, service = build_service()
        service.enroll(victim, "pw")
        for _ in range(10):
            with pytest.raises((FactorMismatch, OTPError, AccountLocked)):
                service.reset_password(
                    PL.WEB,
                    victim.cellphone_number,
                    {
                        CF.CELLPHONE_NUMBER: victim.cellphone_number,
                        CF.SMS_CODE: "000000",
                    },
                    "x",
                )
        with pytest.raises(AccountLocked):
            service.reset_password(
                PL.WEB,
                victim.cellphone_number,
                {
                    CF.CELLPHONE_NUMBER: victim.cellphone_number,
                    CF.SMS_CODE: "000000",
                },
                "x",
            )


class TestKnowledgeFactors:
    def test_citizen_id_path(self, victim):
        net, service = build_service(
            extra_paths=(
                make_path(
                    "svc", PL.WEB, AP.PASSWORD_RESET, CF.CITIZEN_ID, CF.SMS_CODE
                ),
            )
        )
        service.enroll(victim, "pw")
        service.request_otp(
            victim.cellphone_number, CF.SMS_CODE, AP.PASSWORD_RESET
        )
        code = read_code(net, victim.cellphone_number, "svc")
        session = service.reset_password(
            PL.WEB,
            victim.cellphone_number,
            {CF.CITIZEN_ID: victim.citizen_id, CF.SMS_CODE: code},
            "x",
        )
        assert session is not None

    def test_wrong_citizen_id_rejected(self, victim):
        net, service = build_service(
            extra_paths=(
                make_path(
                    "svc", PL.WEB, AP.PASSWORD_RESET, CF.CITIZEN_ID, CF.SMS_CODE
                ),
            )
        )
        service.enroll(victim, "pw")
        service.request_otp(
            victim.cellphone_number, CF.SMS_CODE, AP.PASSWORD_RESET
        )
        code = read_code(net, victim.cellphone_number, "svc")
        with pytest.raises(FactorMismatch):
            service.reset_password(
                PL.WEB,
                victim.cellphone_number,
                {CF.CITIZEN_ID: "0" * 18, CF.SMS_CODE: code},
                "x",
            )


class TestRobustFactors:
    def test_device_secret_accepted(self, victim):
        _net, service = build_service(
            extra_paths=(
                make_path("svc", PL.WEB, AP.SIGN_IN, CF.FINGERPRINT),
            )
        )
        service.enroll(victim, "pw")
        secret = device_secret(victim.person_id, CF.FINGERPRINT)
        session = service.sign_in(
            PL.WEB, victim.person_id, {CF.FINGERPRINT: secret}
        )
        assert session is not None

    def test_forged_biometric_rejected(self, victim):
        _net, service = build_service(
            extra_paths=(
                make_path("svc", PL.WEB, AP.SIGN_IN, CF.FINGERPRINT),
            )
        )
        service.enroll(victim, "pw")
        with pytest.raises(FactorMismatch):
            service.sign_in(
                PL.WEB, victim.person_id, {CF.FINGERPRINT: "fake-finger"}
            )


class TestCustomerService:
    def _cs_service(self):
        return build_service(
            extra_paths=(
                make_path("svc", PL.WEB, AP.PASSWORD_RESET, CF.CUSTOMER_SERVICE),
            )
        )

    def test_dossier_with_three_facts_accepted(self, victim):
        _net, service = self._cs_service()
        service.enroll(victim, "pw")
        dossier = {
            PI.REAL_NAME: victim.real_name,
            PI.CITIZEN_ID: victim.citizen_id,
            PI.ADDRESS: victim.address,
        }
        session = service.reset_password(
            PL.WEB,
            victim.cellphone_number,
            {CF.CUSTOMER_SERVICE: dossier},
            "x",
        )
        assert session is not None

    def test_thin_dossier_rejected(self, victim):
        _net, service = self._cs_service()
        service.enroll(victim, "pw")
        with pytest.raises(FactorMismatch):
            service.reset_password(
                PL.WEB,
                victim.cellphone_number,
                {CF.CUSTOMER_SERVICE: {PI.REAL_NAME: victim.real_name}},
                "x",
            )

    def test_wrong_facts_rejected(self, victim):
        _net, service = self._cs_service()
        service.enroll(victim, "pw")
        dossier = {
            PI.REAL_NAME: "Wrong Name",
            PI.CITIZEN_ID: "0" * 18,
            PI.ADDRESS: "nowhere",
        }
        with pytest.raises(FactorMismatch):
            service.reset_password(
                PL.WEB,
                victim.cellphone_number,
                {CF.CUSTOMER_SERVICE: dossier},
                "x",
            )


class TestProfilePageAndPayments:
    def test_profile_page_masks_citizen_id(self, victim):
        _net, service = build_service(
            masks={(PL.WEB, PI.CITIZEN_ID): MaskSpec(reveal_prefix=6)}
        )
        service.enroll(victim, "pw")
        session = service.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        page = service.profile_page(session, PL.WEB)
        assert PI.CITIZEN_ID in page.masked_views()
        assert PI.REAL_NAME in page.complete_values()

    def test_profile_page_requires_live_session(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        with pytest.raises(InvalidSession):
            service.profile_page(None, PL.WEB)

    def test_payment_requires_valid_session(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        session = service.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        receipt = service.authorize_payment(session, 10.0)
        assert receipt.startswith("receipt-svc-")
        assert service.payments == ((victim.person_id, 10.0),)

    def test_nonpositive_payment_rejected(self, victim):
        _net, service = build_service()
        service.enroll(victim, "pw")
        session = service.sign_in(
            PL.WEB,
            victim.person_id,
            {CF.USERNAME: victim.person_id, CF.PASSWORD: "pw"},
        )
        with pytest.raises(ValueError):
            service.authorize_payment(session, 0.0)
