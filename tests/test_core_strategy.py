"""Tests for ActFort stage 4: the strategy engine."""

import pytest

from tests.conftest import make_path

from repro.core.strategy import StrategyEngine
from repro.core.tdg import TransformationDependencyGraph
from repro.model.account import AuthPurpose as AP
from repro.model.account import MaskSpec, ServiceProfile
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


def profile(name, domain, paths, exposed, masks=None, mobile_paths=()):
    exposed_info = {PL.WEB: frozenset(exposed)}
    all_paths = tuple(paths) + tuple(mobile_paths)
    if mobile_paths:
        exposed_info[PL.MOBILE] = frozenset(exposed)
    return ServiceProfile(
        name=name,
        domain=domain,
        auth_paths=all_paths,
        exposed_info=exposed_info,
        mask_specs=masks or {},
    )


@pytest.fixture()
def chain_ecosystem():
    """ctrip-like -> alipay-like chain, plus email -> paypal-like chain."""
    ctrip = profile(
        "ctrip_like",
        "travel",
        [make_path("ctrip_like", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.CITIZEN_ID, PI.REAL_NAME, PI.EMAIL_ADDRESS},
    )
    alipay = profile(
        "alipay_like",
        "fintech",
        [make_path("alipay_like", PL.WEB, AP.PASSWORD_RESET, CF.CITIZEN_ID, CF.SMS_CODE)],
        {PI.BANKCARD_NUMBER},
        masks={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=4)},
        mobile_paths=[
            make_path(
                "alipay_like",
                PL.MOBILE,
                AP.PASSWORD_RESET,
                CF.FACE_SCAN,
                CF.SMS_CODE,
            )
        ],
    )
    mail_a = profile(
        "mail_a",
        "email",
        [make_path("mail_a", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.MAILBOX_ACCESS, PI.EMAIL_ADDRESS},
    )
    mail_b = profile(
        "mail_b",
        "email",
        [make_path("mail_b", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.MAILBOX_ACCESS, PI.EMAIL_ADDRESS},
    )
    paypal = profile(
        "paypal_like",
        "fintech",
        [
            make_path(
                "paypal_like",
                PL.WEB,
                AP.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
                CF.EMAIL_CODE,
            )
        ],
        {PI.REAL_NAME},
    )
    fortress = profile(
        "fortress",
        "fintech",
        [make_path("fortress", PL.WEB, AP.PASSWORD_RESET, CF.U2F_KEY)],
        {PI.REAL_NAME},
    )
    return Ecosystem([ctrip, alipay, mail_a, mail_b, paypal, fortress])


@pytest.fixture()
def engine(chain_ecosystem):
    tdg = TransformationDependencyGraph.from_ecosystem(
        chain_ecosystem, AttackerProfile.baseline()
    )
    return StrategyEngine(tdg)


class TestForwardClosure:
    def test_pav_includes_chained_targets(self, engine):
        closure = engine.forward_closure()
        assert "alipay_like" in closure.compromised
        assert "paypal_like" in closure.compromised

    def test_fortress_is_safe(self, engine):
        closure = engine.forward_closure()
        assert "fortress" in closure.safe

    def test_rounds_reflect_chain_depth(self, engine):
        closure = engine.forward_closure()
        assert closure.entry("ctrip_like").round == 1
        assert closure.entry("alipay_like").round == 2

    def test_provenance_recorded(self, engine):
        closure = engine.forward_closure()
        entry = closure.entry("alipay_like")
        assert entry.factor_sources[CF.CITIZEN_ID] == "ctrip_like"

    def test_final_info_accumulates(self, engine):
        closure = engine.forward_closure()
        assert PI.CITIZEN_ID in closure.final_info
        assert PI.MAILBOX_ACCESS in closure.final_info

    def test_seeded_closure_starts_from_oaas(self, chain_ecosystem):
        """Scenario 1 with a pre-compromised account and no interception."""
        tdg = TransformationDependencyGraph.from_ecosystem(
            chain_ecosystem, AttackerProfile.passive_observer()
        )
        engine = StrategyEngine(tdg)
        closure = engine.forward_closure()
        assert closure.compromised == frozenset()
        seeded = engine.forward_closure(
            initially_compromised=["ctrip_like"]
        )
        assert "ctrip_like" in seeded.compromised
        # Without SMS interception the citizen ID alone opens nothing else.
        assert "alipay_like" not in seeded.compromised

    def test_breach_extra_info(self, engine):
        closure = engine.forward_closure(extra_info=[PI.CITIZEN_ID])
        entry = closure.entry("alipay_like")
        # With breached data the citizen ID needs no source account.
        assert entry.round == 1

    def test_by_round_grouping(self, engine):
        closure = engine.forward_closure()
        by_round = closure.by_round()
        assert set(by_round) == {1, 2}
        assert "ctrip_like" in by_round[1]

    def test_unknown_entry_raises(self, engine):
        closure = engine.forward_closure()
        with pytest.raises(KeyError):
            closure.entry("fortress")


class TestAttackChain:
    def test_chain_to_alipay_via_ctrip(self, engine):
        chain = engine.attack_chain("alipay_like", platform=PL.WEB)
        assert chain is not None
        assert chain.services == ("ctrip_like", "alipay_like")
        assert chain.depth == 1

    def test_platform_restriction_blocks_biometric_only(self, engine):
        """The mobile variant only offers face-scan reset: no chain."""
        chain = engine.attack_chain("alipay_like", platform=PL.MOBILE)
        assert chain is None

    def test_chain_to_fortress_is_none(self, engine):
        assert engine.attack_chain("fortress") is None

    def test_chain_is_topologically_ordered(self, engine):
        chain = engine.attack_chain("paypal_like")
        assert chain is not None
        seen = set()
        for step in chain.steps:
            for source in step.factor_sources.values():
                if "+" in source or source.startswith("<"):
                    continue
                assert source in seen
            seen.add(step.service)

    def test_email_provider_pinning(self, engine):
        chain = engine.attack_chain("paypal_like", email_provider="mail_b")
        assert chain is not None
        assert "mail_b" in chain.services
        assert "mail_a" not in chain.services

    def test_direct_target_single_step(self, engine):
        chain = engine.attack_chain("ctrip_like")
        assert chain is not None
        assert chain.depth == 0

    def test_describe_renders_sources(self, engine):
        chain = engine.attack_chain("alipay_like", platform=PL.WEB)
        text = chain.describe()
        assert "citizen_id<-ctrip_like" in text

    def test_reachable_targets(self, engine):
        reachable = engine.reachable_targets()
        assert "fortress" not in reachable
        assert len(reachable) == 5
