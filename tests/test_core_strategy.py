"""Tests for ActFort stage 4: the strategy engine."""

import pytest

from tests.conftest import make_path

from repro.core.strategy import StrategyEngine
from repro.core.tdg import TDGNode, TransformationDependencyGraph
from repro.model.account import AuthPurpose as AP
from repro.model.account import MaskSpec, ServiceProfile
from repro.model.attacker import (
    BASELINE_CAPABILITIES,
    AttackerCapability,
    AttackerProfile,
)
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


def profile(name, domain, paths, exposed, masks=None, mobile_paths=()):
    exposed_info = {PL.WEB: frozenset(exposed)}
    all_paths = tuple(paths) + tuple(mobile_paths)
    if mobile_paths:
        exposed_info[PL.MOBILE] = frozenset(exposed)
    return ServiceProfile(
        name=name,
        domain=domain,
        auth_paths=all_paths,
        exposed_info=exposed_info,
        mask_specs=masks or {},
    )


def assert_topologically_ordered(chain):
    """Every chained factor's source services fell strictly earlier.

    Combining sources name several contributors joined with ``"+"``; each
    split part must already have its own step.  Synthetic markers
    (``"<dossier>"``, ``"<attacker-profile>"``) need no step.
    """
    seen = set()
    for step in chain.steps:
        for source in step.factor_sources.values():
            for part in source.split("+"):
                if part.startswith("<"):
                    continue
                assert part in seen, (step.service, source, part)
        seen.add(step.service)


@pytest.fixture()
def chain_ecosystem():
    """ctrip-like -> alipay-like chain, plus email -> paypal-like chain."""
    ctrip = profile(
        "ctrip_like",
        "travel",
        [make_path("ctrip_like", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.CITIZEN_ID, PI.REAL_NAME, PI.EMAIL_ADDRESS},
    )
    alipay = profile(
        "alipay_like",
        "fintech",
        [make_path("alipay_like", PL.WEB, AP.PASSWORD_RESET, CF.CITIZEN_ID, CF.SMS_CODE)],
        {PI.BANKCARD_NUMBER},
        masks={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=4)},
        mobile_paths=[
            make_path(
                "alipay_like",
                PL.MOBILE,
                AP.PASSWORD_RESET,
                CF.FACE_SCAN,
                CF.SMS_CODE,
            )
        ],
    )
    mail_a = profile(
        "mail_a",
        "email",
        [make_path("mail_a", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.MAILBOX_ACCESS, PI.EMAIL_ADDRESS},
    )
    mail_b = profile(
        "mail_b",
        "email",
        [make_path("mail_b", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.MAILBOX_ACCESS, PI.EMAIL_ADDRESS},
    )
    paypal = profile(
        "paypal_like",
        "fintech",
        [
            make_path(
                "paypal_like",
                PL.WEB,
                AP.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
                CF.EMAIL_CODE,
            )
        ],
        {PI.REAL_NAME},
    )
    fortress = profile(
        "fortress",
        "fintech",
        [make_path("fortress", PL.WEB, AP.PASSWORD_RESET, CF.U2F_KEY)],
        {PI.REAL_NAME},
    )
    return Ecosystem([ctrip, alipay, mail_a, mail_b, paypal, fortress])


@pytest.fixture()
def engine(chain_ecosystem):
    tdg = TransformationDependencyGraph.from_ecosystem(
        chain_ecosystem, AttackerProfile.baseline()
    )
    return StrategyEngine(tdg)


class TestForwardClosure:
    def test_pav_includes_chained_targets(self, engine):
        closure = engine.forward_closure()
        assert "alipay_like" in closure.compromised
        assert "paypal_like" in closure.compromised

    def test_fortress_is_safe(self, engine):
        closure = engine.forward_closure()
        assert "fortress" in closure.safe

    def test_rounds_reflect_chain_depth(self, engine):
        closure = engine.forward_closure()
        assert closure.entry("ctrip_like").round == 1
        assert closure.entry("alipay_like").round == 2

    def test_provenance_recorded(self, engine):
        closure = engine.forward_closure()
        entry = closure.entry("alipay_like")
        assert entry.factor_sources[CF.CITIZEN_ID] == "ctrip_like"

    def test_final_info_accumulates(self, engine):
        closure = engine.forward_closure()
        assert PI.CITIZEN_ID in closure.final_info
        assert PI.MAILBOX_ACCESS in closure.final_info

    def test_seeded_closure_starts_from_oaas(self, chain_ecosystem):
        """Scenario 1 with a pre-compromised account and no interception."""
        tdg = TransformationDependencyGraph.from_ecosystem(
            chain_ecosystem, AttackerProfile.passive_observer()
        )
        engine = StrategyEngine(tdg)
        closure = engine.forward_closure()
        assert closure.compromised == frozenset()
        seeded = engine.forward_closure(
            initially_compromised=["ctrip_like"]
        )
        assert "ctrip_like" in seeded.compromised
        # Without SMS interception the citizen ID alone opens nothing else.
        assert "alipay_like" not in seeded.compromised

    def test_breach_extra_info(self, engine):
        closure = engine.forward_closure(extra_info=[PI.CITIZEN_ID])
        entry = closure.entry("alipay_like")
        # With breached data the citizen ID needs no source account.
        assert entry.round == 1

    def test_by_round_grouping(self, engine):
        closure = engine.forward_closure()
        by_round = closure.by_round()
        assert set(by_round) == {1, 2}
        assert "ctrip_like" in by_round[1]

    def test_unknown_entry_raises(self, engine):
        closure = engine.forward_closure()
        with pytest.raises(KeyError):
            closure.entry("fortress")


class TestAttackChain:
    def test_chain_to_alipay_via_ctrip(self, engine):
        chain = engine.attack_chain("alipay_like", platform=PL.WEB)
        assert chain is not None
        assert chain.services == ("ctrip_like", "alipay_like")
        assert chain.depth == 1

    def test_platform_restriction_blocks_biometric_only(self, engine):
        """The mobile variant only offers face-scan reset: no chain."""
        chain = engine.attack_chain("alipay_like", platform=PL.MOBILE)
        assert chain is None

    def test_chain_to_fortress_is_none(self, engine):
        assert engine.attack_chain("fortress") is None

    def test_chain_is_topologically_ordered(self, engine):
        chain = engine.attack_chain("paypal_like")
        assert chain is not None
        assert_topologically_ordered(chain)

    def test_email_provider_pinning(self, engine):
        chain = engine.attack_chain("paypal_like", email_provider="mail_b")
        assert chain is not None
        assert "mail_b" in chain.services
        assert "mail_a" not in chain.services

    def test_direct_target_single_step(self, engine):
        chain = engine.attack_chain("ctrip_like")
        assert chain is not None
        assert chain.depth == 0

    def test_describe_renders_sources(self, engine):
        chain = engine.attack_chain("alipay_like", platform=PL.WEB)
        text = chain.describe()
        assert "citizen_id<-ctrip_like" in text

    def test_reachable_targets(self, engine):
        reachable = engine.reachable_targets()
        assert "fortress" not in reachable
        assert len(reachable) == 5


@pytest.fixture()
def combining_ecosystem():
    """Two shards each leak half of a bankcard number; the vault's reset
    demands the full value (Insight 4's combining takeover)."""
    shard_a = profile(
        "shard_a",
        "retail",
        [make_path("shard_a", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.BANKCARD_NUMBER},
        masks={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_prefix=8)},
    )
    shard_b = profile(
        "shard_b",
        "retail",
        [make_path("shard_b", PL.WEB, AP.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)],
        {PI.BANKCARD_NUMBER},
        masks={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=8)},
    )
    vault = profile(
        "vault",
        "fintech",
        [
            make_path(
                "vault",
                PL.WEB,
                AP.PASSWORD_RESET,
                CF.BANKCARD_NUMBER,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
            )
        ],
        {PI.REAL_NAME},
    )
    return Ecosystem([shard_a, shard_b, vault])


@pytest.fixture()
def combining_engine(combining_ecosystem):
    tdg = TransformationDependencyGraph.from_ecosystem(
        combining_ecosystem, AttackerProfile.baseline()
    )
    return StrategyEngine(tdg)


class TestCombiningChain:
    def test_closure_joins_contributors(self, combining_engine):
        closure = combining_engine.forward_closure()
        entry = closure.entry("vault")
        assert entry.factor_sources[CF.BANKCARD_NUMBER] == "shard_a+shard_b"
        assert entry.source_services() == ("shard_a", "shard_b")

    def test_chain_includes_every_combining_contributor(self, combining_engine):
        """Regression: the joined ``"a+b"`` source used to match nothing in
        the backward walk, silently dropping both contributor takeovers."""
        chain = combining_engine.attack_chain("vault")
        assert chain is not None
        assert chain.services == ("shard_a", "shard_b", "vault")
        assert chain.depth == 2
        assert_topologically_ordered(chain)

    def test_support_index_posts_both_contributors(self, combining_engine):
        closure = combining_engine.forward_closure()
        index = closure.support_index()
        assert index["shard_a"] == frozenset({"vault"})
        assert index["shard_b"] == frozenset({"vault"})


@pytest.fixture()
def seeded_engine(chain_ecosystem):
    """chain_ecosystem plus a pathless service only a seed can supply."""
    nodes = [
        TransformationDependencyGraph.node_from_profile(p)
        for p in chain_ecosystem
    ]
    nodes.append(
        TDGNode(
            service="handed_over",
            domain="fintech",
            takeover_paths=(),
            pia=frozenset({PI.CITIZEN_ID}),
        )
    )
    tdg = TransformationDependencyGraph(nodes, AttackerProfile.baseline())
    return StrategyEngine(tdg)


class TestSeededTargetChain:
    def test_pathless_service_is_safe_without_a_seed(self, seeded_engine):
        assert seeded_engine.attack_chain("handed_over") is None

    def test_seeded_target_chain_has_no_replay_path(self, seeded_engine):
        chain = seeded_engine.attack_chain(
            "handed_over", initially_compromised=["handed_over"]
        )
        assert chain is not None
        assert chain.depth == 0
        assert chain.steps[0].path is None
        assert "(already compromised)" in chain.describe()

    def test_seeded_target_platform_restriction_returns_none(self, seeded_engine):
        """Regression: ``path.platform`` on a seeded entry's ``None`` path
        raised AttributeError instead of reporting 'no chain'."""
        chain = seeded_engine.attack_chain(
            "handed_over",
            platform=PL.WEB,
            initially_compromised=["handed_over"],
        )
        assert chain is None

    def test_seeded_info_feeds_downstream_chain(self, seeded_engine):
        chain = seeded_engine.attack_chain(
            "alipay_like", initially_compromised=["handed_over"]
        )
        assert chain is not None
        assert "handed_over" in chain.services
        step = next(
            s for s in chain.steps if s.service == "handed_over"
        )
        assert step.path is None
        assert chain.steps[-1].factor_sources[CF.CITIZEN_ID] == "handed_over"
        assert_topologically_ordered(chain)


class TestPlatformRetarget:
    @staticmethod
    def _wallet(with_donor=True):
        wallet = ServiceProfile(
            name="wallet",
            domain="fintech",
            auth_paths=(
                make_path(
                    "wallet",
                    PL.MOBILE,
                    AP.PASSWORD_RESET,
                    CF.CELLPHONE_NUMBER,
                    CF.SMS_CODE,
                ),
                make_path(
                    "wallet",
                    PL.WEB,
                    AP.PASSWORD_RESET,
                    CF.CITIZEN_ID,
                    CF.CELLPHONE_NUMBER,
                    CF.SMS_CODE,
                ),
            ),
            exposed_info={
                PL.MOBILE: frozenset({PI.CITIZEN_ID}),
                PL.WEB: frozenset({PI.CITIZEN_ID}),
            },
        )
        services = [wallet]
        if with_donor:
            services.insert(
                0,
                profile(
                    "donor",
                    "travel",
                    [
                        make_path(
                            "donor",
                            PL.WEB,
                            AP.PASSWORD_RESET,
                            CF.CELLPHONE_NUMBER,
                            CF.SMS_CODE,
                        )
                    ],
                    {PI.CITIZEN_ID},
                ),
            )
        tdg = TransformationDependencyGraph.from_ecosystem(
            Ecosystem(services), AttackerProfile.baseline()
        )
        return StrategyEngine(tdg)

    def test_closure_prefers_the_short_mobile_path(self):
        engine = self._wallet()
        entry = engine.forward_closure().entry("wallet")
        assert entry.round == 1
        assert entry.path.platform is PL.MOBILE

    def test_web_retarget_keeps_kinds_other_accounts_hold(self):
        """Regression: subtracting ``target.pia`` wholesale also dropped
        the citizen ID the donor legitimately holds, losing the chain."""
        engine = self._wallet()
        chain = engine.attack_chain("wallet", platform=PL.WEB)
        assert chain is not None
        assert chain.services == ("donor", "wallet")
        step = chain.steps[-1]
        assert step.path.platform is PL.WEB
        assert step.factor_sources[CF.CITIZEN_ID] == "donor"

    def test_web_retarget_sees_breach_extra_info(self):
        engine = self._wallet(with_donor=False)
        assert engine.attack_chain("wallet", platform=PL.WEB) is None
        chain = engine.attack_chain(
            "wallet", platform=PL.WEB, extra_info=[PI.CITIZEN_ID]
        )
        assert chain is not None
        assert chain.depth == 0
        step = chain.steps[0]
        assert step.path.platform is PL.WEB
        assert step.factor_sources[CF.CITIZEN_ID] == "<attacker-profile>"


class TestDossierProvenance:
    def test_customer_service_source_is_canonical(self):
        """The dossier kind is the sorted minimum, not hash-iteration
        order, so provenance is stable across runs and resumes."""
        donors = [
            profile(
                name,
                "media",
                [
                    make_path(
                        name,
                        PL.WEB,
                        AP.PASSWORD_RESET,
                        CF.CELLPHONE_NUMBER,
                        CF.SMS_CODE,
                    )
                ],
                {PI.ACQUAINTANCE_NAME, PI.REAL_NAME},
            )
            # zeta deliberately precedes alpha: a provenance pick that
            # leaked insertion order would name zeta.
            for name in ("zeta", "alpha")
        ]
        helpdesk = profile(
            "helpdesk",
            "fintech",
            [make_path("helpdesk", PL.WEB, AP.PASSWORD_RESET, CF.CUSTOMER_SERVICE)],
            {PI.ORDER_HISTORY},
        )
        attacker = AttackerProfile(
            capabilities=BASELINE_CAPABILITIES
            | frozenset({AttackerCapability.SOCIAL_ENGINEERING}),
            known_info=frozenset({PI.CELLPHONE_NUMBER}),
        )
        tdg = TransformationDependencyGraph.from_ecosystem(
            Ecosystem(donors + [helpdesk]), attacker
        )
        closure = StrategyEngine(tdg).forward_closure()
        entry = closure.entry("helpdesk")
        assert entry.round == 2
        # min(info & DOSSIER_KINDS) is acquaintance_name; its
        # alphabetically-first compromised holder is alpha.
        assert entry.factor_sources[CF.CUSTOMER_SERVICE] == "alpha"
