"""Differential tests: the indexed TDG engine vs the brute-force reference.

:class:`repro.core.reference.ReferenceTDG` preserves the seed's all-pairs
scanning semantics verbatim; :class:`repro.core.tdg.TransformationDependencyGraph`
answers the same queries from inverted indexes with memoization.  These
tests lock the two engines together bit-for-bit across seeded
:class:`~repro.catalog.builder.CatalogBuilder` ecosystems and attacker
profiles covering every :class:`~repro.model.attacker.AttackerCapability`:

- identical :class:`PathCoverage` splits for every path,
- identical full- and half-capacity parent sets per service,
- identical couple records (same tuples, same order -- the Couple File),
- identical strong/weak edge sets and fringe nodes,
- identical dependency-level maps and exact level fractions per platform.
"""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.reference import ReferenceTDG
from repro.core.tdg import TransformationDependencyGraph
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import Platform

#: Twenty seeded ecosystems of varying size (the ISSUE's floor).
ECOSYSTEM_CASES = tuple((seed, 12 + 4 * (seed % 5)) for seed in range(20))

#: The three named profiles of the paper's narrative.
NAMED_PROFILES = {
    "baseline": AttackerProfile.baseline(),
    "se_database": AttackerProfile.with_se_database(),
    "passive": AttackerProfile.passive_observer(),
}

#: One ablation per capability, so every AttackerCapability member gates at
#: least one compared graph (the SE profile holds all six capabilities).
ABLATED_PROFILES = {
    capability.value: AttackerProfile.with_se_database().without_capability(
        capability
    )
    for capability in AttackerCapability
}


def _build_ecosystem(seed: int, size: int):
    return CatalogBuilder(
        CatalogSpec(total_services=size), seed=seed
    ).build_ecosystem()


def _assert_engines_equivalent(ecosystem, attacker):
    indexed = TransformationDependencyGraph.from_ecosystem(ecosystem, attacker)
    reference = ReferenceTDG.from_ecosystem(ecosystem, attacker)

    for node in reference.nodes:
        service = node.service
        for path in node.takeover_paths:
            assert indexed.coverage(node, path) == reference.coverage(
                node, path
            ), (service, path)
        assert indexed.full_capacity_parents(
            service
        ) == reference.full_capacity_parents(service), service
        assert indexed.half_capacity_parents(
            service
        ) == reference.half_capacity_parents(service), service
        # Couple records must match as ordered tuples: same providers, same
        # target path, same enumeration order (the Couple File is an
        # artifact, not just a set).
        assert indexed.couples(service) == reference.couples(service), service
        for platform in (None, Platform.WEB, Platform.MOBILE):
            assert indexed.is_direct(service, platform) == reference.is_direct(
                service, platform
            ), (service, platform)

    assert indexed.strong_edges() == reference.strong_edges()
    assert indexed.weak_edges() == reference.weak_edges()
    assert indexed.fringe_nodes() == reference.fringe_nodes()

    for platform in (Platform.WEB, Platform.MOBILE):
        new_levels = indexed.dependency_levels(platform)
        old_levels = reference.dependency_levels(platform)
        assert new_levels == old_levels, platform
        if old_levels:
            # Exact float equality: both engines must count identically.
            assert indexed.level_fractions(platform) == reference.level_fractions(
                platform
            ), platform


@pytest.mark.parametrize("seed,size", ECOSYSTEM_CASES)
def test_indexed_engine_matches_reference(seed, size):
    """Bit-for-bit equivalence on 20 seeded catalog ecosystems under the
    three named attacker profiles."""
    ecosystem = _build_ecosystem(seed, size)
    for attacker in NAMED_PROFILES.values():
        _assert_engines_equivalent(ecosystem, attacker)


@pytest.mark.parametrize("capability", sorted(ABLATED_PROFILES))
def test_capability_ablations_match_reference(capability):
    """Removing any single capability changes both engines identically."""
    attacker = ABLATED_PROFILES[capability]
    for seed, size in ((3, 24), (11, 28)):
        _assert_engines_equivalent(_build_ecosystem(seed, size), attacker)


def test_shared_index_batch_matches_individual_graphs():
    """analyze_many graphs (shared EcosystemIndex) equal per-profile builds."""
    ecosystem = _build_ecosystem(5, 24)
    profiles = tuple(NAMED_PROFILES.values())
    batched = TransformationDependencyGraph.analyze_many(ecosystem, profiles)
    assert len(batched) == len(profiles)
    first_index = batched[0].ecosystem_index()
    for graph, attacker in zip(batched, profiles):
        assert graph.ecosystem_index() is first_index
        solo = TransformationDependencyGraph.from_ecosystem(
            ecosystem, attacker
        )
        assert graph.strong_edges() == solo.strong_edges()
        assert graph.weak_edges() == solo.weak_edges()
        for platform in (Platform.WEB, Platform.MOBILE):
            assert graph.dependency_levels(platform) == solo.dependency_levels(
                platform
            )
