"""Tests for the calibrated catalog: spec, seeds, builder, deployment."""

import pytest

from repro.catalog.builder import CatalogBuilder
from repro.catalog.seeds import (
    EMAIL_DOMAIN_OWNERS,
    SEED_SERVICE_NAMES,
    seed_profiles,
)
from repro.catalog.spec import DEFAULT_SPEC, CatalogSpec, DomainSpec
from repro.model.account import AuthPurpose as AP
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL


class TestSpec:
    def test_default_weights_sum_to_one(self):
        assert abs(sum(d.weight for d in DEFAULT_SPEC.domains) - 1.0) < 1e-9

    def test_mismatched_weights_rejected(self):
        bad = (
            DomainSpec(
                name="x",
                weight=0.5,
                sms_only_reset=0.5,
                sms_only_signin_web=0.1,
                sms_only_signin_mobile=0.1,
                email_reset=0.1,
                info_reset=0.1,
                unique_path=0.1,
                has_mobile=0.5,
            ),
        )
        with pytest.raises(ValueError):
            CatalogSpec(domains=bad)

    def test_domain_lookup(self):
        assert DEFAULT_SPEC.domain("fintech").name == "fintech"
        with pytest.raises(KeyError):
            DEFAULT_SPEC.domain("nope")

    def test_fintech_is_strictest_by_construction(self):
        fintech = DEFAULT_SPEC.domain("fintech")
        for domain in DEFAULT_SPEC.domains:
            assert fintech.sms_only_reset <= domain.sms_only_reset


class TestSeeds:
    def test_seed_names_unique(self):
        assert len(set(SEED_SERVICE_NAMES)) == len(SEED_SERVICE_NAMES)

    def test_paper_named_services_present(self):
        for name in (
            "gmail",
            "ctrip",
            "alipay",
            "paypal",
            "baidu_wallet",
            "china_railway",
            "baidu_pan",
            "dropbox",
            "jd",
            "linkedin",
            "gome",
            "xiaozhu",
            "facebook",
            "expedia",
        ):
            assert name in SEED_SERVICE_NAMES

    def test_ctrip_exposes_full_citizen_id(self):
        """Case III's pivot: Ctrip shows the whole citizen ID."""
        ctrip = {p.name: p for p in seed_profiles()}["ctrip"]
        assert PI.CITIZEN_ID in ctrip.info_on(PL.WEB)
        spec = ctrip.mask_for(PL.WEB, PI.CITIZEN_ID)
        assert len(spec.revealed_positions(18)) == 18

    def test_ctrip_signin_is_sms_only(self):
        ctrip = {p.name: p for p in seed_profiles()}["ctrip"]
        assert any(
            p.is_sms_only for p in ctrip.signin_paths(PL.WEB)
        )

    def test_alipay_mobile_has_citizen_id_reset(self):
        alipay = {p.name: p for p in seed_profiles()}["alipay"]
        combos = [p.factors for p in alipay.reset_paths(PL.MOBILE)]
        assert frozenset({CF.CITIZEN_ID, CF.SMS_CODE}) in combos

    def test_alipay_web_has_customer_service(self):
        alipay = {p.name: p for p in seed_profiles()}["alipay"]
        combos = [p.factors for p in alipay.reset_paths(PL.WEB)]
        assert frozenset({CF.CUSTOMER_SERVICE}) in combos

    def test_paypal_needs_sms_and_email(self):
        paypal = {p.name: p for p in seed_profiles()}["paypal"]
        for path in paypal.reset_paths():
            assert CF.SMS_CODE in path.factors
            assert CF.EMAIL_CODE in path.factors

    def test_email_providers_are_sms_resettable(self):
        profiles = {p.name: p for p in seed_profiles()}
        for name in ("gmail", "netease_mail", "outlook", "aliyun_mail"):
            assert any(
                p.is_sms_only for p in profiles[name].reset_paths()
            ), name

    def test_gome_masks_are_complementary(self):
        """Insight 2's example: web and mobile hide different SSN parts."""
        gome = {p.name: p for p in seed_profiles()}["gome"]
        web = gome.mask_for(PL.WEB, PI.CITIZEN_ID).revealed_positions(18)
        mobile = gome.mask_for(PL.MOBILE, PI.CITIZEN_ID).revealed_positions(18)
        assert web != mobile
        assert len(web | mobile) == 18  # jointly they leak everything

    def test_china_railway_not_fringe(self):
        """12306 wants the citizen ID everywhere -- one layer behind Ctrip."""
        railway = {p.name: p for p in seed_profiles()}["china_railway"]
        assert not railway.is_fringe

    def test_email_domain_owners_are_seed_services(self):
        for owner in EMAIL_DOMAIN_OWNERS.values():
            assert owner in SEED_SERVICE_NAMES


class TestBuilder:
    def test_deterministic_for_same_seed(self):
        a = CatalogBuilder(seed=77).build_ecosystem()
        b = CatalogBuilder(seed=77).build_ecosystem()
        assert a.service_names == b.service_names
        for name in a.service_names:
            assert a.service(name) == b.service(name)

    def test_different_seeds_differ(self):
        a = CatalogBuilder(seed=77).build_ecosystem()
        b = CatalogBuilder(seed=78).build_ecosystem()
        assert any(
            a.service(n) != b.service(n)
            for n in a.service_names
            if n in b.service_names
        )

    def test_total_service_count(self, default_ecosystem):
        assert len(default_ecosystem) == DEFAULT_SPEC.total_services

    def test_every_service_has_a_reset_path(self, default_ecosystem):
        for service in default_ecosystem:
            assert service.reset_paths(), service.name

    def test_every_service_has_web_presence(self, default_ecosystem):
        for service in default_ecosystem:
            assert PL.WEB in service.platforms

    def test_direct_rate_matches_paper_shape(self, default_ecosystem):
        web = default_ecosystem.on_platform(PL.WEB)
        direct = sum(
            1
            for s in web
            if any(p.is_sms_only for p in s.paths(platform=PL.WEB))
        )
        rate = direct / len(web)
        assert 0.64 < rate < 0.84  # paper: 74.13%

    def test_signin_sms_rarer_than_reset_sms(self, default_ecosystem):
        for platform in (PL.WEB, PL.MOBILE):
            services = default_ecosystem.on_platform(platform)
            signin = sum(
                1
                for s in services
                if any(
                    p.is_sms_only
                    for p in s.paths(platform=platform, purpose=AP.SIGN_IN)
                )
            )
            reset = sum(
                1
                for s in services
                if any(
                    p.is_sms_only
                    for p in s.paths(
                        platform=platform, purpose=AP.PASSWORD_RESET
                    )
                )
            )
            assert signin < reset

    def test_bankcards_never_fully_exposed(self, default_ecosystem):
        """Paper: none of the accounts expose the whole bankcard number."""
        for service in default_ecosystem:
            for platform in service.platforms:
                if PI.BANKCARD_NUMBER in service.info_on(platform):
                    spec = service.mask_for(platform, PI.BANKCARD_NUMBER)
                    assert len(spec.revealed_positions(16)) < 16, service.name


class TestDeployment:
    def test_deploy_wires_everything(self):
        spec = CatalogSpec(
            total_services=len(seed_profiles()), victims=2, cells=1
        )
        deployed = CatalogBuilder(spec, seed=3).deploy()
        assert len(deployed.internet.service_names) == spec.total_services
        assert len(deployed.victims) == 2
        for victim in deployed.victims:
            assert deployed.network.has_phone(victim.cellphone_number)
            assert deployed.internet.service("gmail").is_enrolled(
                victim.person_id
            )
        assert deployed.internet.email_provider_for(
            "x@gmail.test"
        ) == "gmail"

    def test_accounts_registered_in_ecosystem(self):
        spec = CatalogSpec(
            total_services=len(seed_profiles()), victims=2, cells=1
        )
        deployed = CatalogBuilder(spec, seed=3).deploy()
        assert len(deployed.ecosystem.accounts) == 2 * spec.total_services
