#!/usr/bin/env python
"""Regenerate the golden CLI NDJSON fixtures in tests/fixtures/.

The fixtures pin the record **bytes** the CLI emits for the seed
ecosystem (201 services, seed 2021) -- a bounded couple-file prefix, a
bounded weak-edge prefix, and the level report -- exactly as::

    repro build | repro query --kind couples    --page-size 32 --max-records 64
    repro build | repro query --kind weak-edges --page-size 32 --max-records 64
    repro build | repro query --kind levels

would print them.  Generation goes through the same
:func:`repro.cli.stream_query.records_for` layer the CLI uses, and
``tests/test_cli_pipeline.py`` re-checks one fixture through a real
subprocess pipe, so drift in either the library or the CLI surface shows
up as a byte diff.

Run from the repo root after an intentional behavior change::

    PYTHONPATH=src python tools/make_golden_cli.py
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.service import AnalysisService  # noqa: E402
from repro.catalog import CatalogBuilder, CatalogSpec  # noqa: E402
from repro.cli.records import dump_record  # noqa: E402
from repro.cli.stream_query import QuerySpec, records_for  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures"

#: Fixture name -> the query it pins.  Keep in sync with
#: ``GOLDEN_SPECS`` in tests/test_cli_pipeline.py.
GOLDEN_SPECS = {
    "golden_cli_couples.ndjson": QuerySpec(
        kind="couples", page_size=32, max_records=64
    ),
    "golden_cli_weak_edges.ndjson": QuerySpec(
        kind="weak-edges", page_size=32, max_records=64
    ),
    "golden_cli_levels.ndjson": QuerySpec(kind="levels"),
}


def main() -> int:
    service = AnalysisService(
        CatalogBuilder(
            CatalogSpec(total_services=201), seed=2021
        ).build_ecosystem()
    )
    FIXTURES.mkdir(parents=True, exist_ok=True)
    for name, spec in GOLDEN_SPECS.items():
        text = "".join(
            dump_record(record) for record in records_for(service, spec)
        )
        path = FIXTURES / name
        path.write_text(text, encoding="utf-8")
        sys.stderr.write(
            f"wrote {path.relative_to(REPO_ROOT)} "
            f"({len(text.splitlines())} records)\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
