"""Render a human-readable run report from an NDJSON span log, or pull
observability state from a running serve tier.

File mode reports on what
:meth:`repro.obs.Instrumentation.log_spans_to` writes while a service
runs (one finished root span tree per line, plus optional
metrics-snapshot records from
:meth:`~repro.obs.export.NDJSONSpanWriter.write_snapshot`): top spans by
self-time, a cache-efficacy table for every engine cache, and the
invalidation-cone size distribution.  URL mode hits a live
:class:`~repro.serve.server.AnalysisServer` instead -- ``/metrics`` for
the Prometheus text, ``/observability`` (or a per-session endpoint) for
the JSON snapshot::

    PYTHONPATH=src python tools/obsreport.py run.ndjson [--top N]
    PYTHONPATH=src python tools/obsreport.py --url http://127.0.0.1:8321
    PYTHONPATH=src python tools/obsreport.py --url http://127.0.0.1:8321 \\
        --path /v1/acme/sessions/main/observability
    PYTHONPATH=src python tools/obsreport.py --url http://127.0.0.1:8321 --prometheus
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request


def _fetch(url: str, timeout: float):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
    if "json" in content_type:
        return json.loads(raw)
    return raw.decode("utf-8")


def _render_metric_samples(metrics: dict) -> list:
    """Non-empty metric families as ``name{labels}: value`` rows.

    ``metrics`` follows :func:`repro.obs.export.metrics_snapshot`:
    ``{name: {"type", "help", "label_names", "samples": [...]}}``.
    Histogram samples render as ``count/sum`` instead of the bucket map.
    """
    rows = []
    for name in sorted(metrics):
        family = metrics[name]
        samples = family.get("samples") or ()
        for sample in samples:
            labels = sample.get("labels") or {}
            label_str = (
                "{" + ",".join(
                    f"{key}={value}" for key, value in sorted(labels.items())
                ) + "}"
                if labels
                else ""
            )
            if "buckets" in sample:
                value = (
                    f"count={sample.get('count')} sum={sample.get('sum')}"
                )
            else:
                value = sample.get("value")
            rows.append(f"  {name}{label_str}: {value}")
    if rows:
        rows.insert(0, "metrics (non-empty families):")
    return rows


def _render_url_report(base: str, path: str, timeout: float) -> str:
    document = _fetch(base.rstrip("/") + path, timeout)
    if isinstance(document, str):
        return document
    lines = [f"observability snapshot from {base}{path}", ""]
    if "version" in document:
        lines.append(f"session version: {document['version']}")
    if "attackers" in document:
        lines.append(f"attackers: {', '.join(document['attackers'])}")
    shards = document.get("shards")
    if shards is not None:
        lines.append(f"shards routed: {len(shards)}")
        for shard in shards:
            state = "live" if shard.get("alive") else "DEAD"
            lines.append(
                f"  {shard['tenant']}/{shard['session']} "
                f"on {shard['shard']} [{state}]"
            )
    admission = document.get("admission")
    if admission:
        lines.append("admission gates:")
        for tenant, depths in sorted(admission.items()):
            lines.append(
                f"  {tenant}: active={depths['active']} "
                f"waiting={depths['waiting']}"
            )
    layers = document.get("layers")
    if layers is not None:
        cache = layers.get("result_cache", {})
        lines.append(
            "result cache: "
            f"hits={cache.get('hits')} misses={cache.get('misses')} "
            f"entries={cache.get('entries')} "
            f"hit_rate={cache.get('hit_rate', 0.0):.3f}"
        )
    metrics = document.get("metrics")
    if isinstance(metrics, dict):
        lines.extend(_render_metric_samples(metrics))
    spans = document.get("recent_spans")
    if spans is not None:
        lines.append(f"recent root spans: {len(spans)}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="obsreport", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "log",
        nargs="?",
        help="NDJSON span log to report on (omit when using --url)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        help="rows in the top-spans-by-self-time table (default 15)",
    )
    parser.add_argument(
        "--url",
        help="base URL of a running serve tier to pull state from "
        "instead of reading a span log",
    )
    parser.add_argument(
        "--path",
        default="/observability",
        help="endpoint to fetch in --url mode "
        "(default /observability; e.g. "
        "/v1/{tenant}/sessions/{name}/observability)",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="in --url mode, fetch /metrics and print the raw "
        "Prometheus text instead of the JSON snapshot",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="HTTP timeout in seconds for --url mode (default 10)",
    )
    args = parser.parse_args(argv)

    if args.url:
        if args.log is not None:
            parser.error("pass either a span log or --url, not both")
        path = "/metrics" if args.prometheus else args.path
        print(_render_url_report(args.url, path, args.timeout))
        return 0

    if args.log is None:
        parser.error("a span log path is required without --url")

    from repro.obs.report import load_ndjson, render_report

    spans, snapshots = load_ndjson(args.log)
    print(render_report(spans, snapshots, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
