"""Render a human-readable run report from an NDJSON span log.

The log is what :meth:`repro.obs.Instrumentation.log_spans_to` writes
while a service runs (one finished root span tree per line, plus
optional metrics-snapshot records from
:meth:`~repro.obs.export.NDJSONSpanWriter.write_snapshot`).  The report
shows the top spans by self-time, a cache-efficacy table for every
engine cache, and the invalidation-cone size distribution::

    PYTHONPATH=src python tools/obsreport.py run.ndjson [--top N]
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="obsreport", description=__doc__.splitlines()[0]
    )
    parser.add_argument("log", help="NDJSON span log to report on")
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        help="rows in the top-spans-by-self-time table (default 15)",
    )
    args = parser.parse_args(argv)

    from repro.obs.report import load_ndjson, render_report

    spans, snapshots = load_ndjson(args.log)
    print(render_report(spans, snapshots, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
