"""Regenerate ``tests/fixtures/golden_snapshot.json``.

The golden fixture pins the session-snapshot wire format
(:data:`repro.dynamic.snapshot.SNAPSHOT_FORMAT`): tier-1 asserts both
that the committed document keeps restoring and that today's builder
reproduces it byte-for-byte from the same seed.  Re-run this script
(and bump the format tag) only when the snapshot schema intentionally
changes::

    PYTHONPATH=src python tools/make_golden_snapshot.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.dynamic import DynamicAnalysisSession

#: Keep in sync with ``tests/test_snapshot.py::GOLDEN_SERVICES``.
GOLDEN_SERVICES = 60

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "fixtures"
    / "golden_snapshot.json"
)


def main() -> int:
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=GOLDEN_SERVICES), seed=2021
    ).build_ecosystem()
    document = DynamicAnalysisSession(ecosystem).snapshot()
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":"))
        + "\n",
        encoding="utf-8",
    )
    print(
        f"wrote {FIXTURE} "
        f"({FIXTURE.stat().st_size} bytes, {GOLDEN_SERVICES} services, "
        f"format {document['format']!r})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
