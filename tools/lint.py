"""A dependency-free AST linter for the two defect classes that have
actually bitten this codebase: dead local variables (assigned, never
read -- e.g. a leftover ``attacker = self._tdg.attacker``) and unused
imports.

No third-party linter is vendored into the repro environment, so this
small checker is wired into ``make verify`` (and run by
``tests/test_lint.py``) to keep those regressions out of tier-1.

Deliberately conservative -- it only reports patterns that are
unambiguously dead:

- **unused-local**: a name bound by a plain assignment (``x = ...``),
  annotated assignment, ``with ... as x`` or ``except ... as x`` inside a
  function, never loaded anywhere in that function's subtree (nested
  scopes included) and not declared ``global``/``nonlocal``.  Loop
  targets, unpacking targets, walrus bindings and ``_``-prefixed names
  are never reported; functions calling ``locals``/``eval``/``exec`` are
  skipped wholesale.
- **unused-import**: a module- or function-level import whose bound name
  is never loaded anywhere in the file, not listed in ``__all__``, not an
  explicit re-export (``import x as x``), and not under an
  ``if TYPE_CHECKING:`` guard.
- **raw-timing**: a ``time.time()`` / ``time.perf_counter()`` (or bare
  ``perf_counter()``) call in engine code under ``src/``.  Timings there
  belong on the instrumentation layer's sanctioned clock
  (``repro.obs.monotonic``) or inside a span, so histograms, spans and
  ad-hoc measurements stay mutually comparable; the :mod:`repro.obs`
  package itself (which *defines* that clock) is exempt.
- **object-posting**: an annotated binding whose type is a dict of
  name collections (``Dict[..., Set[str]]``, ``FrozenSet[str]``,
  ``List[str]`` or ``Tuple[str, ...]`` values) in one of the
  id-compacted hot modules (``core/index.py``, ``levels/parents.py``,
  ``levels/engine.py``).  Since the id-compaction pass, postings there
  are int bitmasks keyed by interned ids; a names-keyed dict is either
  a regression back to boxed-object postings or a decoding view -- a
  view must say so with a ``# decoded view`` comment on the binding
  line, which suppresses the finding.
- **bare-print**: a ``print(...)`` call in the CLI package
  (``src/repro/cli/``).  CLI stdout is an NDJSON record stream consumed
  by the next pipe stage; every write must go through the record writer
  (``repro.cli.records.RecordWriter``) so one stray ``print`` cannot
  corrupt the stream mid-pipeline.  Diagnostics belong on stderr
  (``sys.stderr.write``).
- **swallowed-exception**: an ``except`` handler in the serving tier
  (``src/repro/serve/``) whose body does nothing (only ``pass``,
  ``...`` or a bare string).  Serve-layer failure paths must surface
  somewhere an operator can see -- re-raise, reply with an error,
  write an audit record, or dead-letter the mutation; silently eating
  the exception drops a tenant's request on the floor.

A trailing ``# noqa`` comment on the offending line suppresses any
finding.  Exit status is non-zero when anything is reported::

    python tools/lint.py [paths...]     # defaults to src tests benchmarks tools
"""

from __future__ import annotations

import ast
import dataclasses
import re
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

#: Calls that make local liveness undecidable for a whole function.
_DYNAMIC_SCOPE_CALLS = {"locals", "vars", "eval", "exec"}

#: ``time.<attr>()`` calls the raw-timing rule reports in engine code.
_RAW_TIMING_ATTRS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
}

#: Bare-name call forms of the same (``from time import perf_counter``).
#: ``monotonic`` is deliberately absent: ``repro.obs.monotonic`` is the
#: sanctioned clock these call sites should migrate to.
_RAW_TIMING_NAMES = {"perf_counter", "perf_counter_ns", "monotonic_ns"}

#: Modules the object-posting rule covers: the id-compacted hot paths,
#: where postings must be int bitmasks (decoding views excepted).
_HOT_POSTING_MODULES = (
    ("core", "index.py"),
    ("levels", "parents.py"),
    ("levels", "engine.py"),
)

#: Name-collection value types that mark a dict as an object posting.
_NAME_COLLECTION_VALUES = re.compile(
    r"(?:FrozenSet|Set|List)\[str\]|Tuple\[str,"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


def _noqa_lines(source: str) -> Set[int]:
    """1-indexed lines carrying a ``# noqa`` suppression comment."""
    return {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "# noqa" in text
    }


def _loaded_names(tree: ast.AST) -> Set[str]:
    """Every identifier the tree reads (``Load`` contexts only)."""
    loaded: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loaded.add(node.id)
    return loaded


def _dunder_all(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
    return names


def _is_type_checking_guard(node: ast.AST) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _iter_imports(
    tree: ast.Module,
) -> Iterable[Tuple[str, int, bool]]:
    """Yield (bound name, line, explicit re-export) per import binding,
    skipping ``if TYPE_CHECKING:`` blocks (bindings that exist only for
    string annotations the AST cannot see as loads)."""

    def walk(nodes: Iterable[ast.stmt]) -> Iterable[Tuple[str, int, bool]]:
        for node in nodes:
            if _is_type_checking_guard(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    reexport = alias.asname == alias.name
                    yield bound, node.lineno, reexport
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    reexport = alias.asname == alias.name
                    yield bound, node.lineno, reexport
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    yield from walk([child])
                elif hasattr(child, "body"):
                    # e.g. If/Try branch lists live on the parent already.
                    pass

    yield from walk(tree.body)


def _function_bindings(
    function: ast.AST,
) -> Iterable[Tuple[str, int, str]]:
    """(name, line, kind) for every plainly-dead-checkable binding in one
    function body, without descending into nested functions/classes."""

    def walk(nodes: Iterable[ast.stmt]) -> Iterable[Tuple[str, int, str]]:
        for node in nodes:
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    yield node.targets[0].id, node.lineno, "assignment"
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and isinstance(
                    node.target, ast.Name
                ):
                    yield node.target.id, node.lineno, "assignment"
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        yield (
                            item.optional_vars.id,
                            node.lineno,
                            "context manager",
                        )
            elif isinstance(node, ast.Try):
                for handler in node.handlers:
                    if handler.name is not None:
                        yield handler.name, handler.lineno, "exception"
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    yield from walk([child])
                elif isinstance(child, (ast.ExceptHandler,)):
                    yield from walk(child.body)
                elif hasattr(child, "body") and isinstance(
                    getattr(child, "body"), list
                ):
                    yield from walk(child.body)

    body = getattr(function, "body", [])
    yield from walk(body)


def _declared_escapes(function: ast.AST) -> Set[str]:
    """Names declared ``global``/``nonlocal`` anywhere in the subtree."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


def _calls_dynamic_scope(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _DYNAMIC_SCOPE_CALLS
        ):
            return True
    return False


def _raw_timing_applies(path: str) -> bool:
    """The raw-timing rule covers engine code under ``src/`` but exempts
    the :mod:`repro.obs` package, which defines the sanctioned clock."""
    parts = re.split(r"[\\/]", path)
    return "src" in parts and "obs" not in parts


def _raw_timing_findings(
    tree: ast.Module, noqa: Set[int], path: str
) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or node.lineno in noqa:
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _RAW_TIMING_ATTRS
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            called = f"time.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in _RAW_TIMING_NAMES:
            called = func.id
        else:
            continue
        yield Finding(
            path,
            node.lineno,
            "raw-timing",
            f"{called}() in engine code; time through repro.obs "
            "(monotonic or a span) so measurements share one clock",
        )


def _object_posting_applies(path: str) -> bool:
    parts = re.split(r"[\\/]", path)
    return any(
        len(parts) >= 2 and tuple(parts[-2:]) == module
        for module in _HOT_POSTING_MODULES
    )


def _decoded_view_lines(source: str) -> Set[int]:
    """1-indexed lines carrying the ``# decoded view`` marker."""
    return {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "# decoded view" in text
    }


def _dict_value_annotation(annotation: ast.AST) -> "str | None":
    """The unparsed value type of a ``Dict[key, value]`` annotation (or
    ``None`` when the annotation is not a two-slot Dict/dict subscript).
    Only the value slot is inspected, so name collections in *key*
    position (e.g. a ``Tuple[str, Platform]`` memo key) never match."""
    if not isinstance(annotation, ast.Subscript):
        return None
    base = annotation.value
    name = base.attr if isinstance(base, ast.Attribute) else getattr(
        base, "id", None
    )
    if name not in {"Dict", "dict", "Mapping", "MutableMapping"}:
        return None
    if not (
        isinstance(annotation.slice, ast.Tuple)
        and len(annotation.slice.elts) == 2
    ):
        return None
    return ast.unparse(annotation.slice.elts[1])


def _object_posting_findings(
    tree: ast.Module, source: str, noqa: Set[int], path: str
) -> Iterable[Finding]:
    marked = _decoded_view_lines(source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.AnnAssign):
            continue
        if node.lineno in noqa or node.lineno in marked:
            continue
        value_type = _dict_value_annotation(node.annotation)
        if value_type is None:
            continue
        if not _NAME_COLLECTION_VALUES.search(value_type):
            continue
        annotation = ast.unparse(node.annotation)
        target = ast.unparse(node.target)
        yield Finding(
            path,
            node.lineno,
            "object-posting",
            f"{target} is a names-keyed dict posting ({annotation}) in an "
            "id-compacted hot module; store an int bitmask keyed by "
            "interned ids, or mark a decoding view with '# decoded view'",
        )


def _bare_print_applies(path: str) -> bool:
    """The bare-print rule covers the CLI package only: stdout there is
    an NDJSON stream, and one stray ``print`` corrupts it mid-pipe."""
    parts = re.split(r"[\\/]", path)
    return "src" in parts and "cli" in parts


def _bare_print_findings(
    tree: ast.Module, noqa: Set[int], path: str
) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or node.lineno in noqa:
            continue
        if not (
            isinstance(node.func, ast.Name) and node.func.id == "print"
        ):
            continue
        yield Finding(
            path,
            node.lineno,
            "bare-print",
            "print() in the CLI package; stdout is an NDJSON record "
            "stream -- write through repro.cli.records.RecordWriter "
            "(or sys.stderr for diagnostics)",
        )


def _swallowed_exception_applies(path: str) -> bool:
    """The swallowed-exception rule covers the serving tier only: that
    is where an eaten exception silently drops a tenant's request."""
    parts = re.split(r"[\\/]", path)
    return "serve" in parts and "src" in parts


def _handler_does_nothing(handler: ast.ExceptHandler) -> bool:
    """True when the handler body is pure filler: ``pass``, ``...`` or a
    bare constant expression (a string used as a pseudo-comment)."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
        for stmt in handler.body
    )


def _swallowed_exception_findings(
    tree: ast.Module, noqa: Set[int], path: str
) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.lineno in noqa:
            continue
        if not _handler_does_nothing(node):
            continue
        caught = (
            ast.unparse(node.type) if node.type is not None else "everything"
        )
        yield Finding(
            path,
            node.lineno,
            "swallowed-exception",
            f"handler catches {caught} and does nothing; serve-layer "
            "failure paths must re-raise, reply with an error, audit, "
            "or dead-letter",
        )


def check_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source; returns all findings, line-ordered."""
    tree = ast.parse(source, filename=path)
    noqa = _noqa_lines(source)
    findings: List[Finding] = []

    if _raw_timing_applies(path):
        findings.extend(_raw_timing_findings(tree, noqa, path))

    if _object_posting_applies(path):
        findings.extend(
            _object_posting_findings(tree, source, noqa, path)
        )

    if _bare_print_applies(path):
        findings.extend(_bare_print_findings(tree, noqa, path))

    if _swallowed_exception_applies(path):
        findings.extend(
            _swallowed_exception_findings(tree, noqa, path)
        )

    loaded_anywhere = _loaded_names(tree)
    exported = _dunder_all(tree)
    for name, line, reexport in _iter_imports(tree):
        if reexport or line in noqa or name.startswith("_"):
            continue
        if name in loaded_anywhere or name in exported:
            continue
        findings.append(
            Finding(path, line, "unused-import", f"{name!r} is never used")
        )

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _calls_dynamic_scope(node):
            continue
        loaded = _loaded_names(node)
        escapes = _declared_escapes(node)
        seen: Set[str] = set()
        for name, line, kind in _function_bindings(node):
            if (
                name.startswith("_")
                or name in loaded
                or name in escapes
                or name in seen
                or line in noqa
            ):
                continue
            seen.add(name)
            findings.append(
                Finding(
                    path,
                    line,
                    "unused-local",
                    f"{kind} binds {name!r} but it is never read",
                )
            )

    findings.sort(key=lambda f: f.line)
    return findings


def check_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            findings.extend(
                check_source(file.read_text(encoding="utf-8"), str(file))
            )
    return findings


DEFAULT_TARGETS = ("src", "tests", "benchmarks", "tools")


def main(argv: List[str]) -> int:
    targets = [Path(arg) for arg in argv] if argv else [
        Path(name) for name in DEFAULT_TARGETS if Path(name).exists()
    ]
    findings = check_paths(targets)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} lint finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
