"""No-op instrumentation: what a disabled handle hands to hot paths.

Every object here is a stateless singleton whose methods do nothing and
return immediately, so code can be written unconditionally instrumented
(``self._hits.inc()``, ``with obs.span(...)``) and the disabled
configuration costs one attribute access plus an empty call -- the
overhead the no-op smoke test in ``tests/test_obs.py`` bounds per-op
and the gate in ``tests/test_perf_smoke.py`` bounds at the serve tier.

The null registry intentionally satisfies the same surface as
:class:`~repro.obs.metrics.MetricsRegistry` (every instrument request
returns the one null instrument; ``collect()`` is empty), so exporters
against a disabled handle render empty output instead of raising.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullInstrument",
    "NullRegistry",
    "NullSpan",
    "NullTracer",
]


class NullInstrument:
    """Counter, gauge, histogram and family, all at once, all inert."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def labels(self, **labels) -> "NullInstrument":
        return self

    def quantile(self, q) -> Optional[float]:
        return None

    @property
    def value(self) -> int:
        return 0


class NullSpan:
    """An inert span usable as a context manager."""

    __slots__ = ()

    name = ""
    attributes: dict = {}
    children: tuple = ()
    error = None
    duration_seconds = 0.0
    self_seconds = 0.0
    finished = True

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key, value) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


class NullRegistry:
    """Registry surface that mints nothing and remembers nothing."""

    __slots__ = ()

    def counter(self, name, help="", labels=()) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name, help="", labels=()) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name, help="", labels=(), buckets=()) -> NullInstrument:
        return NULL_INSTRUMENT

    def get(self, name) -> None:
        return None

    def collect(self) -> Tuple:
        return ()

    def value(self, name, labels=None) -> int:
        return 0


class NullTracer:
    """Tracer surface that spans nothing and retains nothing."""

    __slots__ = ()

    def span(self, name, **attributes) -> NullSpan:
        return NULL_SPAN

    def current_span(self) -> None:
        return None

    def recent(self) -> Tuple:
        return ()

    def add_sink(self, sink) -> None:
        pass

    def remove_sink(self, sink) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()
NULL_SPAN = NullSpan()
NULL_REGISTRY = NullRegistry()
NULL_TRACER = NullTracer()
