"""The thread-safe metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` is the numeric half of an
:class:`~repro.obs.Instrumentation` handle.  Three instrument kinds,
all label-aware:

- **Counter** -- a monotonically non-decreasing total (cache hits,
  fixpoint rounds, retracted entries).
- **Gauge** -- a point-in-time level that moves both ways (live cache
  entries, materialized segments).
- **Histogram** -- fixed upper-edge buckets with ``le`` (less-or-equal)
  semantics: an observation lands in the *first* bucket whose edge is
  ``>= value``; values above the last edge land in the implicit
  ``+Inf`` bucket.  Edges are fixed at creation, so merging, exporting
  and quantile estimation never resample.

A **family** is one named metric plus its label names
(``registry.counter("repro_api_queries_total", labels=("kind",))``);
``family.labels(kind="closure")`` returns the per-label-set **child**
that actually counts.  Children are interned, so hot paths resolve a
child once and call ``inc()``/``observe()`` on it directly.  A family
declared with no labels proxies its instrument methods straight to the
single anonymous child.

Thread safety: family/child creation takes the registry lock; every
update takes the owning child's lock.  All values are plain Python
numbers -- integer counters stay integers, which keeps the
behavior-compatible stats views (``ResultCache.stats()``,
``closure_cache_stats()``, ...) returning the exact ints they always
returned.

This module is dependency-free (stdlib only) by design: it must be
importable from every engine layer without adding an import cycle or a
third-party requirement.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default latency buckets (seconds): 100us .. 10s, roughly log-spaced.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default magnitude buckets (entry/cone/set sizes).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000,
)

Number = Union[int, float]


class Counter:
    """A monotonic total.  ``inc`` of a negative amount is an error."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value


class Gauge:
    """A level that moves both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        return self._value


class Histogram:
    """Fixed-bucket histogram with ``le`` (less-or-equal) edges.

    ``bucket_counts`` are per-bucket (non-cumulative) counts aligned
    with ``edges``; the trailing element counts the implicit ``+Inf``
    bucket.  Exporters cumulate on the way out (Prometheus semantics).
    """

    __slots__ = ("_lock", "edges", "_counts", "_sum", "_count")

    def __init__(self, edges: Sequence[Number]) -> None:
        ordered = tuple(float(edge) for edge in edges)
        if not ordered:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"bucket edges must strictly increase: {ordered}")
        self._lock = threading.Lock()
        self.edges = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._sum: Number = 0
        self._count = 0

    def observe(self, value: Number) -> None:
        # le semantics: first bucket whose edge >= value; bisect_left on
        # the sorted edges finds exactly that (value == edge stays in
        # that edge's bucket), one past the end is +Inf.
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        return tuple(self._counts)

    @property
    def sum(self) -> Number:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> Optional[float]:
        """Upper-edge estimate of the ``q`` quantile (0 <= q <= 1).

        Returns the edge of the first bucket whose cumulative count
        reaches ``q * count`` -- a conservative (never-underestimating)
        bucket-resolution answer -- or ``None`` when empty.  Observations
        beyond the last edge report the last edge (the histogram cannot
        resolve further).
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return None
        threshold = q * self._count
        cumulative = 0
        for edge, bucket in zip(self.edges, self._counts):
            cumulative += bucket
            if cumulative >= threshold:
                return edge
        return self.edges[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-set children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str) -> object:
        """The child instrument for one label-value set (interned)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self.buckets)
                    else:
                        child = _KINDS[self.kind]()
                    self._children[key] = child
        return child

    def samples(self) -> Iterable[Tuple[Dict[str, str], object]]:
        """(labels dict, child) per live child, insertion-ordered."""
        for key, child in list(self._children.items()):
            yield dict(zip(self.label_names, key)), child

    # -- no-label convenience: the family proxies the single anonymous
    # child, so unlabeled instruments read like plain counters.

    def _default(self) -> object:
        return self.labels()

    def inc(self, amount: Number = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: Number = 1) -> None:
        self._default().dec(amount)

    def set(self, value: Number) -> None:
        self._default().set(value)

    def observe(self, value: Number) -> None:
        self._default().observe(value)

    @property
    def value(self) -> Number:
        return self._default().value


class MetricsRegistry:
    """A process-local, thread-safe collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the existing family (so independently
    constructed engines can share one registry), but re-declaring it
    with a different kind, label set, or bucket edges raises -- silent
    divergence is how ad-hoc stats dicts happen.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[Number]] = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        bucket_edges = (
            tuple(float(b) for b in buckets) if buckets is not None else None
        )
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (
                    family.kind != kind
                    or family.label_names != label_names
                    or family.buckets != bucket_edges
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.label_names} "
                        f"(buckets={family.buckets}); cannot re-register as "
                        f"{kind}{label_names} (buckets={bucket_edges})"
                    )
                return family
            family = MetricFamily(
                name, kind, help, label_names, bucket_edges, self._lock
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[Number] = DEFAULT_SECONDS_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labels, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def collect(self) -> Tuple[MetricFamily, ...]:
        """Every family, sorted by name (the exporters' iteration order)."""
        with self._lock:
            return tuple(
                self._families[name] for name in sorted(self._families)
            )

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Number:
        """Convenience point read: the child's value, or 0 if the child
        (or family) was never touched -- what the thin stats views use."""
        family = self._families.get(name)
        if family is None:
            return 0
        key = tuple(
            str((labels or {})[label]) for label in family.label_names
        )
        child = family._children.get(key)
        if child is None:
            return 0
        return child.value
