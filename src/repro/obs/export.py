"""Exporters: JSON snapshot, Prometheus text format, NDJSON span log.

Three views over the same instruments:

- :func:`metrics_snapshot` -- a point-in-time, JSON-serializable dict
  (what :meth:`repro.api.AnalysisService.observability_snapshot`
  embeds);
- :func:`render_prometheus` -- the text exposition format a ``/metrics``
  endpoint serves (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le="..."}`` histogram series with ``_sum`` / ``_count``);
- :class:`NDJSONSpanWriter` -- a tracer sink writing one finished root
  span tree per line, plus on-demand metrics-snapshot records, which is
  the input format of ``tools/obsreport.py``.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "metrics_snapshot",
    "render_prometheus",
    "NDJSONSpanWriter",
]


def _sample_value(child: Any) -> Dict[str, Any]:
    if isinstance(child, Histogram):
        buckets: Dict[str, int] = {}
        cumulative = 0
        counts = child.bucket_counts
        for edge, count in zip(child.edges, counts):
            cumulative += count
            buckets[repr(edge)] = cumulative
        buckets["+Inf"] = cumulative + counts[-1]
        return {
            "buckets": buckets,
            "sum": child.sum,
            "count": child.count,
        }
    return {"value": child.value}


def metrics_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """Every family's current state as plain JSON-serializable data.

    Shape: ``{name: {"type", "help", "label_names", "samples": [
    {"labels": {...}, "value": n} | {"labels": {...}, "buckets": {...},
    "sum": s, "count": c}]}}``.  Bucket keys are cumulative (``le``)
    counts keyed by the edge's ``repr``, with the ``+Inf`` total last.
    """
    snapshot: Dict[str, Any] = {}
    for family in registry.collect():
        samples = []
        for labels, child in family.samples():
            sample: Dict[str, Any] = {"labels": labels}
            sample.update(_sample_value(child))
            samples.append(sample)
        snapshot[family.name] = {
            "type": family.kind,
            "help": family.help,
            "label_names": list(family.label_names),
            "samples": samples,
        }
    return snapshot


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_number(value: Union[int, float]) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{_label_str(labels)} "
                    f"{_format_number(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = 0
                counts = child.bucket_counts
                for edge, count in zip(child.edges, counts):
                    cumulative += count
                    le = 'le="{}"'.format(_format_number(edge))
                    lines.append(
                        f"{family.name}_bucket{_label_str(labels, le)} "
                        f"{cumulative}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{family.name}_bucket{_label_str(labels, inf)} "
                    f"{cumulative + counts[-1]}"
                )
                lines.append(
                    f"{family.name}_sum{_label_str(labels)} "
                    f"{_format_number(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_label_str(labels)} {child.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


class NDJSONSpanWriter:
    """A tracer sink writing one JSON record per line.

    Two record types:

    - ``{"type": "span", "span": {...nested tree...}}`` -- appended for
      every finished *root* span (the tracer fans these out);
    - ``{"type": "snapshot", "metrics": {...}}`` -- appended by
      :meth:`write_snapshot`, typically once at the end of a run so the
      report can render cache-efficacy tables next to the spans.

    Accepts a path (opened append, line-buffered-ish: one ``write`` +
    ``flush`` per record) or any open text file object (not closed by
    :meth:`close` unless owned).
    """

    def __init__(
        self,
        destination: Union[str, IO[str]],
        instrumentation: Optional[object] = None,
    ) -> None:
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "a", encoding="utf-8")
            self._owns = True
        else:
            self._file = destination
            self._owns = False
        self._instrumentation = instrumentation
        self._closed = False

    def __call__(self, root_span) -> None:
        """The sink protocol: serialize one finished root span tree."""
        self._write({"type": "span", "span": root_span.to_dict()})

    def write_snapshot(
        self, registry: Optional[MetricsRegistry] = None
    ) -> None:
        """Append a metrics-snapshot record (defaults to the registry of
        the instrumentation handle this writer was attached through)."""
        if registry is None:
            if self._instrumentation is None:
                raise ValueError(
                    "no registry: pass one or attach via "
                    "Instrumentation.log_spans_to"
                )
            registry = self._instrumentation.registry
        self._write(
            {"type": "snapshot", "metrics": metrics_snapshot(registry)}
        )

    def _write(self, record: Dict[str, Any]) -> None:
        if self._closed:
            return
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns:
            self._file.close()
