"""Nested tracing spans with monotonic timings and a bounded ring buffer.

A **span** is one timed operation: a name, a start/end pair read off the
monotonic clock (``time.perf_counter`` -- wall-clock adjustments can
never produce negative durations), a wall-clock start timestamp for log
correlation, free-form attributes, child spans, and an error tag when
the spanned block raised.  Spans nest lexically through the tracer's
per-thread stack::

    with tracer.span("api.run", queries=3):
        with tracer.span("api.query", kind="closure"):
            ...

The tracer keeps the last ``max_recent`` *root* span trees in a ring
buffer (old trees fall off; a serving process can run forever without
growing), and fans each finished root tree out to registered sinks --
that is where the NDJSON span-log writer
(:class:`~repro.obs.export.NDJSONSpanWriter`) attaches.

``self_seconds`` is the span's own time minus its direct children's
time -- the quantity ``tools/obsreport.py`` ranks by: a parent that
merely waits on instrumented children has ~zero self-time no matter how
long it spans.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "monotonic"]

#: The one monotonic clock the instrumented tree reads.  Engine code
#: outside ``repro/obs`` must time through this (or through spans) --
#: ``tools/lint.py``'s ``raw-timing`` rule enforces it.
monotonic = time.perf_counter


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "started_at",
        "_start",
        "_end",
        "error",
    )

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: List["Span"] = []
        #: Wall-clock start (epoch seconds) for log correlation only;
        #: durations come from the monotonic pair.
        self.started_at = time.time()
        self._start = monotonic()
        self._end: Optional[float] = None
        #: ``"ExcType: message"`` when the spanned block raised.
        self.error: Optional[str] = None

    # -- timing ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._end is not None

    @property
    def duration_seconds(self) -> float:
        """Monotonic elapsed time (0.0 while the span is still open)."""
        if self._end is None:
            return 0.0
        return self._end - self._start

    @property
    def self_seconds(self) -> float:
        """Own time: duration minus the direct children's durations."""
        return max(
            0.0,
            self.duration_seconds
            - sum(child.duration_seconds for child in self.children),
        )

    # -- mutation (while open) ------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable nested tree (attribute values are passed
        through ``str`` only when not already JSON-primitive)."""
        return {
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "self_seconds": self.self_seconds,
            "attributes": {
                key: (
                    value
                    if isinstance(value, (str, int, float, bool))
                    or value is None
                    else str(value)
                )
                for key, value in self.attributes.items()
            },
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }


class _SpanContext:
    """The context manager ``Tracer.span`` hands out."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self._span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self._span)
        return False  # never swallow


class Tracer:
    """Produces spans, keeps recent root trees, feeds sinks."""

    def __init__(self, max_recent: int = 64) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._recent: "deque[Span]" = deque(maxlen=max_recent)
        self._sinks: List[Callable[[Span], None]] = []

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open one span under the current thread's innermost open span."""
        return _SpanContext(self, Span(name, attributes))

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span._end = monotonic()
        stack = self._stack()
        # Lexical nesting makes this the top of the stack; tolerate a
        # corrupted stack (a span leaked across a generator boundary)
        # by unwinding to the span rather than raising from __exit__.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            with self._lock:
                self._recent.append(span)
                sinks = tuple(self._sinks)
            for sink in sinks:
                sink(span)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- ring buffer and sinks ------------------------------------------

    def recent(self) -> Tuple[Span, ...]:
        """The retained root span trees, oldest first."""
        with self._lock:
            return tuple(self._recent)

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Call ``sink(root_span)`` on every finished root tree."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Span], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
