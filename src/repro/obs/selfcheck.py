"""Headless exerciser behind ``make obs-check``.

Builds a small catalog ecosystem, serves a query batch through
:class:`~repro.api.AnalysisService` with an NDJSON span log attached,
applies a mutation, re-serves, then drives every exporter end to end:

- the JSON :meth:`~repro.api.AnalysisService.observability_snapshot`
  must round-trip through :func:`json.dumps` and cover all five engine
  layers;
- the Prometheus text must parse line by line (``# HELP``/``# TYPE``
  headers and ``name{labels} value`` samples only);
- the NDJSON log must load back through :func:`repro.obs.report.load_ndjson`
  and render a non-empty report.

Exit status 0 means the whole observability surface is live; any break
raises.  Run it as ``python -m repro.obs.selfcheck`` (the ``obs-check``
Make target, wired into ``make verify``).
"""

from __future__ import annotations

import json
import os
import re
import sys
import tempfile

__all__ = ["main", "parse_prometheus_lines"]

#: ``name{labels} value`` -- the only non-comment line shape the text
#: exposition format allows (labels optional).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf|NaN))$"
)


def parse_prometheus_lines(text: str):
    """Validate exposition text line by line; returns (samples, metas).

    Raises :class:`ValueError` on the first malformed line, so tests and
    the selfcheck both get a precise failure location.
    """
    samples = []
    metas = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise ValueError(f"line {number}: empty line inside exposition")
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            metas.append(line)
            continue
        if not _SAMPLE_RE.match(line):
            raise ValueError(f"line {number}: malformed sample {line!r}")
        samples.append(line)
    return samples, metas


def main() -> int:
    from repro.api import (
        AnalysisService,
        ClosureQuery,
        CoupleFileQuery,
        LevelReportQuery,
        MeasurementQuery,
    )
    from repro.catalog import CatalogBuilder, CatalogSpec
    from repro.dynamic.events import RemoveService
    from repro.obs.report import load_ndjson, render_report

    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=60), seed=2021
    ).build_ecosystem()
    service = AnalysisService(ecosystem)
    handle, path = tempfile.mkstemp(suffix=".ndjson", prefix="obs-check-")
    os.close(handle)
    writer = service.instrumentation.log_spans_to(path)
    try:
        batch = [
            LevelReportQuery(),
            MeasurementQuery(),
            ClosureQuery(),
            CoupleFileQuery(max_size=3, page_size=10),
        ]
        service.execute_batch(batch)
        victim = sorted(service.ecosystem.service_names)[5]
        service.apply(RemoveService(service=victim))
        service.execute_batch(batch)
        writer.write_snapshot()

        snapshot = service.observability_snapshot()
        encoded = json.dumps(snapshot)
        layers = snapshot["layers"]
        expected = {"result_cache", "closure", "levels", "parents", "streams"}
        missing = expected - set(layers)
        if missing:
            raise AssertionError(f"snapshot missing layers: {sorted(missing)}")

        text = service.prometheus_metrics()
        samples, metas = parse_prometheus_lines(text.rstrip("\n"))
        if not samples or not metas:
            raise AssertionError("prometheus exposition came back empty")

        spans, snapshots = load_ndjson(path)
        if not spans or not snapshots:
            raise AssertionError(
                f"span log incomplete: {len(spans)} spans, "
                f"{len(snapshots)} snapshots"
            )
        report = render_report(spans, snapshots)
        if "top spans" not in report or "cache efficacy" not in report:
            raise AssertionError("report missing expected sections")

        print(
            f"obs-check ok: {len(encoded)} snapshot bytes, "
            f"{len(samples)} prometheus samples, {len(spans)} span trees, "
            f"report {len(report.splitlines())} lines"
        )
        return 0
    finally:
        writer.close()
        os.unlink(path)


if __name__ == "__main__":
    sys.exit(main())
