"""The :class:`Instrumentation` handle every engine layer threads.

One handle bundles a metrics registry and a tracer behind a single
object the engines pass down (service -> session -> graphs -> levels /
parents / streams / closure engines).  Two configurations:

- ``Instrumentation()`` -- **enabled**: a live
  :class:`~repro.obs.metrics.MetricsRegistry` plus a live
  :class:`~repro.obs.trace.Tracer`.  This is the default everywhere;
  counters are integer adds under a lock, and the behavior-compatible
  stats views read their numbers back out of the registry.
- ``Instrumentation.disabled()`` -- **no-op**: the null registry and
  tracer from :mod:`repro.obs.noop`.  Hot paths pay one attribute
  access and an empty call; the perf-smoke gate pins enabled within
  10% of this at the 402-service serve tier.

The handle is deliberately tiny: engines hold instrument *children*
(resolved once at attach time), not the handle itself, on their hot
paths.
"""

from __future__ import annotations

from typing import IO, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.noop import NULL_REGISTRY, NULL_TRACER
from repro.obs.trace import Tracer

__all__ = ["Instrumentation"]


class Instrumentation:
    """One registry + one tracer, enabled or no-op."""

    __slots__ = ("_enabled", "registry", "tracer")

    def __init__(
        self, enabled: bool = True, max_recent_spans: int = 64
    ) -> None:
        self._enabled = enabled
        if enabled:
            self.registry = MetricsRegistry()
            self.tracer = Tracer(max_recent=max_recent_spans)
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER

    @classmethod
    def disabled(cls) -> "Instrumentation":
        """A no-op handle (fresh instance; null internals are shared
        singletons, so this is allocation-cheap)."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- instrument passthroughs (creation-time, not hot-path) ----------

    def counter(self, name: str, help: str = "", labels=()):
        return self.registry.counter(name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()):
        return self.registry.gauge(name, help, labels)

    def histogram(self, name: str, help: str = "", labels=(), **kwargs):
        return self.registry.histogram(name, help, labels, **kwargs)

    def span(self, name: str, **attributes):
        return self.tracer.span(name, **attributes)

    # -- exporter conveniences ------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time JSON-serializable metrics + recent span trees."""
        from repro.obs.export import metrics_snapshot

        return {
            "metrics": metrics_snapshot(self.registry),
            "recent_spans": [
                span.to_dict() for span in self.tracer.recent()
            ],
        }

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.registry)

    def log_spans_to(self, destination: Union[str, IO[str]]):
        """Attach (and return) an NDJSON span-log writer as a tracer
        sink; pass the returned writer to ``remove_sink``/``close`` when
        done."""
        from repro.obs.export import NDJSONSpanWriter

        writer = NDJSONSpanWriter(destination, instrumentation=self)
        self.tracer.add_sink(writer)
        return writer
