"""Unified instrumentation: metrics registry, tracing spans, exporters.

The runtime behavior of the five incremental engines (result cache,
closure records, depth fixpoints, parent postings, stream segments)
used to surface through four incompatible ad-hoc stats dicts and one-off
timing calls.  This package is the one subsystem behind all of them:

- :mod:`repro.obs.metrics` -- a thread-safe
  :class:`MetricsRegistry` of labeled counters, gauges, and
  fixed-bucket histograms;
- :mod:`repro.obs.trace` -- a :class:`Tracer` producing nested
  :class:`Span` trees (monotonic timings, attributes, exception
  tagging) with a bounded ring buffer of recent roots;
- :mod:`repro.obs.handle` -- the :class:`Instrumentation` handle the
  engines thread (``Instrumentation.disabled()`` is the no-op
  configuration whose hot-path cost the perf gates pin at ~zero);
- :mod:`repro.obs.export` -- the three exporters: point-in-time JSON
  :func:`metrics_snapshot`, Prometheus text :func:`render_prometheus`,
  and the :class:`NDJSONSpanWriter` span log;
- :mod:`repro.obs.report` -- the run-report renderer behind
  ``tools/obsreport.py``.

The legacy stats surfaces (``ResultCache.stats()``,
``closure_cache_stats()``, ``SignatureParentsView.stats()``,
``RecordStreamEngine.stats()``) are thin views over the registry now --
same names, same numbers.  ``docs/observability.md`` documents the span
taxonomy, the metric names and labels, and the exporter formats.
"""

from repro.obs.export import (
    NDJSONSpanWriter,
    metrics_snapshot,
    render_prometheus,
)
from repro.obs.handle import Instrumentation
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.noop import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    NULL_SPAN,
    NULL_TRACER,
)
from repro.obs.trace import Span, Tracer, monotonic

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricFamily",
    "MetricsRegistry",
    "NDJSONSpanWriter",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "metrics_snapshot",
    "monotonic",
    "render_prometheus",
]
