"""Run-report rendering over an NDJSON span log (``tools/obsreport.py``).

Input is the file an :class:`~repro.obs.export.NDJSONSpanWriter`
produced: ``span`` records (one nested root tree per line) and optional
``snapshot`` records (point-in-time metrics).  The report aggregates:

- **top spans by self-time** -- per span name: call count, total time,
  total self-time (children subtracted), mean self-time;
- **cache efficacy** -- hit/derive/reuse rates of every cache the
  engines export counters for, read from the latest snapshot record;
- **invalidation-cone distribution** -- bucket counts and quantile
  estimates of the ``repro_invalidation_cone_services`` histogram.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.utils.tables import format_table

__all__ = ["load_ndjson", "render_report"]


def load_ndjson(
    path: str,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse one span log into (span trees, metric snapshots), in file
    order; unknown record types are ignored (forward compatibility)."""
    spans: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: not JSON: {exc}") from None
            if record.get("type") == "span":
                spans.append(record["span"])
            elif record.get("type") == "snapshot":
                snapshots.append(record["metrics"])
    return spans, snapshots


def _walk(span: Dict[str, Any]) -> Iterable[Dict[str, Any]]:
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def _span_table(spans: List[Dict[str, Any]], top: int) -> str:
    totals: Dict[str, List[float]] = {}
    for root in spans:
        for span in _walk(root):
            row = totals.setdefault(span["name"], [0, 0.0, 0.0, 0])
            row[0] += 1
            row[1] += span.get("duration_seconds", 0.0)
            row[2] += span.get("self_seconds", 0.0)
            row[3] += 1 if span.get("error") else 0
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][2])[:top]
    rows = [
        (
            name,
            str(count),
            f"{total * 1e3:.2f}ms",
            f"{self_total * 1e3:.2f}ms",
            f"{self_total / count * 1e3:.3f}ms",
            str(errors),
        )
        for name, (count, total, self_total, errors) in ranked
    ]
    return format_table(
        ("span", "count", "total", "self", "self/call", "errors"),
        rows,
        title=f"top spans by self-time ({len(spans)} root traces)",
    )


def _counter_total(
    snapshot: Dict[str, Any], name: str
) -> Optional[float]:
    family = snapshot.get(name)
    if family is None:
        return None
    return sum(
        sample.get("value", 0) for sample in family.get("samples", ())
    )


def _rate_row(
    label: str, won: Optional[float], lost: Optional[float]
) -> Optional[Tuple[str, str, str, str]]:
    if won is None and lost is None:
        return None
    won = won or 0
    lost = lost or 0
    total = won + lost
    rate = f"{100 * won / total:.1f}%" if total else "-"
    return (label, f"{won:g}", f"{lost:g}", rate)


#: (row label, cheap-outcome counter, expensive-outcome counter) per
#: cache the engines export; the table renders won / lost / rate.
_CACHE_ROWS = (
    ("result cache (hit / miss)",
     "repro_result_cache_hits_total", "repro_result_cache_misses_total"),
    ("api queries (hit / computed)",
     None, None),  # filled from the labeled api counter below
    ("closure records (hit / computed)",
     "repro_closure_cache_hits_total", "repro_closure_cache_computes_total"),
    ("closure resumes (resumed / computed)",
     "repro_closure_cache_resumes_total",
     "repro_closure_cache_computes_total"),
    ("stream segments (reused / computed)",
     "repro_stream_segments_reused_total",
     "repro_stream_segments_computed_total"),
    ("parent signatures (served / derived)",
     None, "repro_parents_derivations_total"),
)


def _api_outcome_totals(
    snapshot: Dict[str, Any]
) -> Tuple[Optional[float], Optional[float]]:
    family = snapshot.get("repro_api_queries_total")
    if family is None:
        return None, None
    hit = miss = 0.0
    for sample in family.get("samples", ()):
        if sample.get("labels", {}).get("outcome") == "hit":
            hit += sample.get("value", 0)
        else:
            miss += sample.get("value", 0)
    return hit, miss


def _cache_table(snapshot: Dict[str, Any]) -> str:
    rows = []
    for label, won_name, lost_name in _CACHE_ROWS:
        if label.startswith("api queries"):
            won, lost = _api_outcome_totals(snapshot)
        else:
            won = (
                _counter_total(snapshot, won_name)
                if won_name is not None
                else None
            )
            lost = (
                _counter_total(snapshot, lost_name)
                if lost_name is not None
                else None
            )
        row = _rate_row(label, won, lost)
        if row is not None:
            rows.append(row)
    if not rows:
        return "cache efficacy: no known cache counters in the snapshot"
    return format_table(
        ("cache", "cheap", "expensive", "cheap rate"),
        rows,
        title="cache efficacy (latest snapshot)",
    )


def _cone_table(snapshot: Dict[str, Any]) -> str:
    family = snapshot.get("repro_invalidation_cone_services")
    if family is None or not family.get("samples"):
        return (
            "invalidation cones: no repro_invalidation_cone_services "
            "histogram in the snapshot"
        )
    # Merge all label sets (per-attacker cones) into one distribution;
    # fixed shared bucket edges make the cumulative merge exact.
    merged: Dict[str, int] = {}
    total = 0
    total_sum = 0.0
    for sample in family["samples"]:
        for edge, cumulative in sample.get("buckets", {}).items():
            merged[edge] = merged.get(edge, 0) + cumulative
        total += sample.get("count", 0)
        total_sum += sample.get("sum", 0.0)
    # JSON round-trips may reorder the bucket keys (e.g. sort_keys);
    # the cumulative-to-per-bucket diff below needs ascending edges.
    def _edge_value(edge: str) -> float:
        return float("inf") if edge == "+Inf" else float(edge)

    rows = []
    previous = 0
    for edge, cumulative in sorted(
        merged.items(), key=lambda item: _edge_value(item[0])
    ):
        rows.append(
            (
                f"<= {edge}",
                str(cumulative - previous),
                f"{100 * cumulative / total:.1f}%" if total else "-",
            )
        )
        previous = cumulative
    mean = f"{total_sum / total:.1f}" if total else "-"
    return format_table(
        ("cone size", "mutations", "cumulative"),
        rows,
        title=(
            f"invalidation-cone distribution "
            f"({total} cones, mean size {mean})"
        ),
    )


def render_report(
    spans: List[Dict[str, Any]],
    snapshots: List[Dict[str, Any]],
    top: int = 15,
) -> str:
    """The full human-readable run report."""
    sections = []
    if spans:
        sections.append(_span_table(spans, top))
    else:
        sections.append("no span records in the log")
    if snapshots:
        latest = snapshots[-1]
        sections.append(_cache_table(latest))
        sections.append(_cone_table(latest))
    else:
        sections.append(
            "no snapshot records in the log (call "
            "NDJSONSpanWriter.write_snapshot at end of run for cache and "
            "cone tables)"
        )
    return "\n\n".join(sections)
