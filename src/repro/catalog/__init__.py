"""Ecosystem dataset substrate.

The paper measures 201 Alexa-top services.  Those live services are not
available offline, so this package synthesizes a stand-in ecosystem:

- :mod:`repro.catalog.spec` -- the calibration targets (the paper's own
  published marginals: Table I exposure rates, path-type proportions,
  SMS-only percentages) expressed as generation parameters,
- :mod:`repro.catalog.seeds` -- hand-written profiles of the named services
  the paper's case studies and Fig. 11 use (Gmail, Ctrip, Alipay, PayPal,
  China Railway, Baidu Pan, ...), faithful to the behaviours the paper
  reports for each, and
- :mod:`repro.catalog.builder` -- the generator that combines seeds with
  synthetic services into a 201-service
  :class:`~repro.model.ecosystem.Ecosystem`, and deploys it onto a
  simulated internet + GSM network with enrolled victims.

Aggregate statistics of the generated ecosystem are *calibrated to* the
paper's marginals but all graph-level results (dependency levels, attack
chains, Fig. 4 connectivity) are emergent.
"""

from repro.catalog.spec import CatalogSpec, DomainSpec, DEFAULT_SPEC
from repro.catalog.seeds import seed_profiles, SEED_SERVICE_NAMES
from repro.catalog.builder import CatalogBuilder, DeployedEcosystem, build_default_ecosystem

__all__ = [
    "CatalogBuilder",
    "CatalogSpec",
    "DEFAULT_SPEC",
    "DeployedEcosystem",
    "DomainSpec",
    "SEED_SERVICE_NAMES",
    "build_default_ecosystem",
    "seed_profiles",
]
