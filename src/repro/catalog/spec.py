"""Calibration targets for the synthetic ecosystem.

The generator is calibrated against the marginals the paper itself
publishes, so the synthetic ecosystem reproduces the measured *inputs*
(per-service auth-path and exposure distributions) and every graph-level
result downstream is emergent.  Three groups of targets:

- **Table I**: per-kind probabilities that a logged-in account exposes each
  personal-information kind, separately for web and mobile.
- **Fig. 3**: how often services offer SMS-only sign-in vs SMS-only reset,
  and the general/info/unique path-type mix per platform.
- **Section IV-B**: the domain mix of the 201 services and the per-domain
  authentication strictness (Fintech strictest -- Insight 3).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Tuple

from repro.model.factors import PersonalInfoKind as PI

#: Table I of the paper, as probabilities ("Web Account. /%" column).
TABLE1_WEB: Mapping[PI, float] = {
    PI.REAL_NAME: 0.4920,
    PI.CITIZEN_ID: 0.1176,
    PI.CELLPHONE_NUMBER: 0.5401,
    PI.EMAIL_ADDRESS: 0.5936,
    PI.ADDRESS: 0.5134,
    PI.USER_ID: 0.4599,
    PI.BINDING_ACCOUNT: 0.4492,
    PI.ACQUAINTANCE_NAME: 0.3209,
    PI.DEVICE_TYPE: 0.1497,
}

#: Table I of the paper, "Mobile Account. /%" column.
TABLE1_MOBILE: Mapping[PI, float] = {
    PI.REAL_NAME: 0.7500,
    PI.CITIZEN_ID: 0.4107,
    PI.CELLPHONE_NUMBER: 0.8750,
    PI.EMAIL_ADDRESS: 0.6429,
    PI.ADDRESS: 0.6429,
    PI.USER_ID: 0.6071,
    PI.BINDING_ACCOUNT: 0.5714,
    PI.ACQUAINTANCE_NAME: 0.6607,
    PI.DEVICE_TYPE: 0.3571,
}

#: Bankcard numbers appear rarely and always masked (the paper: "none of
#: the online accounts expose the whole binding bankcard number").
BANKCARD_EXPOSURE_WEB = 0.08
BANKCARD_EXPOSURE_MOBILE = 0.20


@dataclasses.dataclass(frozen=True)
class DomainSpec:
    """Generation parameters for one service domain."""

    name: str
    #: Share of the catalog drawn from this domain.
    weight: float
    #: Probability a service offers a phone+SMS-only password reset.
    sms_only_reset: float
    #: Probability of an SMS-only *sign-in* option (notably lower --
    #: Fig. 3's sign-in vs reset asymmetry).
    sms_only_signin_web: float
    sms_only_signin_mobile: float
    #: Probability of an email-code reset option.
    email_reset: float
    #: Probability of an info-path reset (SMS + extra knowledge factors).
    info_reset: float
    #: Probability of a unique-path option (biometric / U2F / device).
    unique_path: float
    #: Probability the service has a mobile app at all.
    has_mobile: float
    #: Multipliers applied to the Table I exposure probabilities.
    exposure_boost: Mapping[PI, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for field in (
            "weight",
            "sms_only_reset",
            "sms_only_signin_web",
            "sms_only_signin_mobile",
            "email_reset",
            "info_reset",
            "unique_path",
            "has_mobile",
        ):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0 and field != "weight":
                raise ValueError(f"{field} must be in [0, 1], got {value}")


def _default_domains() -> Tuple[DomainSpec, ...]:
    """The paper's domain mix with per-domain strictness.

    Fintech gets strict authentication (low SMS-only, frequent unique and
    info paths -- Insight 3); email providers are almost always SMS-only
    resettable (Insight 1); content/media services skew loose.
    """
    return (
        DomainSpec(
            name="email",
            weight=0.05,
            sms_only_reset=0.95,
            sms_only_signin_web=0.40,
            sms_only_signin_mobile=0.55,
            email_reset=0.00,
            info_reset=0.15,
            unique_path=0.35,
            has_mobile=0.95,
            exposure_boost={PI.DEVICE_TYPE: 1.8, PI.ACQUAINTANCE_NAME: 1.3},
        ),
        DomainSpec(
            name="fintech",
            weight=0.11,
            sms_only_reset=0.28,
            sms_only_signin_web=0.08,
            sms_only_signin_mobile=0.20,
            email_reset=0.15,
            info_reset=0.75,
            unique_path=0.85,
            has_mobile=0.98,
            exposure_boost={
                PI.CITIZEN_ID: 1.6,
                PI.REAL_NAME: 1.2,
                PI.ACQUAINTANCE_NAME: 0.5,
            },
        ),
        DomainSpec(
            name="social",
            weight=0.15,
            sms_only_reset=0.82,
            sms_only_signin_web=0.25,
            sms_only_signin_mobile=0.45,
            email_reset=0.45,
            info_reset=0.35,
            unique_path=0.60,
            has_mobile=0.95,
            exposure_boost={PI.ACQUAINTANCE_NAME: 1.8, PI.ADDRESS: 0.9},
        ),
        DomainSpec(
            name="ecommerce",
            weight=0.19,
            sms_only_reset=0.84,
            sms_only_signin_web=0.30,
            sms_only_signin_mobile=0.55,
            email_reset=0.40,
            info_reset=0.40,
            unique_path=0.50,
            has_mobile=0.92,
            exposure_boost={PI.ADDRESS: 1.3, PI.REAL_NAME: 1.0},
        ),
        DomainSpec(
            name="travel",
            weight=0.08,
            sms_only_reset=0.86,
            sms_only_signin_web=0.35,
            sms_only_signin_mobile=0.55,
            email_reset=0.35,
            info_reset=0.45,
            unique_path=0.40,
            has_mobile=0.90,
            exposure_boost={PI.CITIZEN_ID: 2.2, PI.REAL_NAME: 1.2},
        ),
        DomainSpec(
            name="cloud",
            weight=0.06,
            sms_only_reset=0.45,
            sms_only_signin_web=0.20,
            sms_only_signin_mobile=0.35,
            email_reset=0.80,
            info_reset=0.20,
            unique_path=0.60,
            has_mobile=0.85,
            exposure_boost={PI.DEVICE_TYPE: 1.6},
        ),
        DomainSpec(
            name="media",
            weight=0.16,
            sms_only_reset=0.88,
            sms_only_signin_web=0.35,
            sms_only_signin_mobile=0.60,
            email_reset=0.35,
            info_reset=0.25,
            unique_path=0.30,
            has_mobile=0.80,
            exposure_boost={PI.REAL_NAME: 0.8, PI.CITIZEN_ID: 0.3},
        ),
        DomainSpec(
            name="education",
            weight=0.05,
            sms_only_reset=0.35,
            sms_only_signin_web=0.20,
            sms_only_signin_mobile=0.35,
            email_reset=0.55,
            info_reset=0.40,
            unique_path=0.35,
            has_mobile=0.70,
            exposure_boost={PI.REAL_NAME: 1.1, PI.CITIZEN_ID: 1.2},
        ),
        DomainSpec(
            name="lifestyle",
            weight=0.10,
            sms_only_reset=0.86,
            sms_only_signin_web=0.35,
            sms_only_signin_mobile=0.60,
            email_reset=0.30,
            info_reset=0.30,
            unique_path=0.35,
            has_mobile=0.90,
            exposure_boost={PI.ADDRESS: 1.3},
        ),
        DomainSpec(
            name="gaming",
            weight=0.05,
            sms_only_reset=0.84,
            sms_only_signin_web=0.25,
            sms_only_signin_mobile=0.45,
            email_reset=0.45,
            info_reset=0.25,
            unique_path=0.40,
            has_mobile=0.85,
            exposure_boost={PI.REAL_NAME: 0.7, PI.DEVICE_TYPE: 1.5},
        ),
    )


@dataclasses.dataclass(frozen=True)
class CatalogSpec:
    """Full generation parameters for one synthetic ecosystem."""

    total_services: int = 201
    domains: Tuple[DomainSpec, ...] = dataclasses.field(
        default_factory=_default_domains
    )
    exposure_web: Mapping[PI, float] = dataclasses.field(
        default_factory=lambda: dict(TABLE1_WEB)
    )
    exposure_mobile: Mapping[PI, float] = dataclasses.field(
        default_factory=lambda: dict(TABLE1_MOBILE)
    )
    bankcard_exposure_web: float = BANKCARD_EXPOSURE_WEB
    bankcard_exposure_mobile: float = BANKCARD_EXPOSURE_MOBILE
    #: Probability a web service offers login-with (OAuth) via the big
    #: identity providers.
    linked_login: float = 0.18
    #: Number of victims enrolled across the deployed ecosystem.
    victims: int = 5
    #: Cells in the deployed GSM network; victims are spread across them.
    cells: int = 2

    def __post_init__(self) -> None:
        if self.total_services < 1:
            raise ValueError("total_services must be positive")
        if not self.domains:
            raise ValueError("at least one domain spec required")
        total_weight = sum(d.weight for d in self.domains)
        if abs(total_weight - 1.0) > 1e-6:
            raise ValueError(
                f"domain weights must sum to 1.0, got {total_weight:.4f}"
            )

    def domain(self, name: str) -> DomainSpec:
        """Look a domain spec up by name."""
        for spec in self.domains:
            if spec.name == name:
                return spec
        raise KeyError(f"no domain spec named {name!r}")


#: The spec used throughout the benchmarks.
DEFAULT_SPEC = CatalogSpec()
