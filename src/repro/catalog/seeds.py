"""Hand-written profiles of the services the paper names.

Each profile encodes the specific behaviours the paper reports:

- **Ctrip**: sign-in with SMS code as a one-time token; the profile page's
  "Frequent Travelers Info" edit view reveals the *full* citizen ID
  (Case III's pivot).
- **China Railway (12306)**: reveals "the whole or vital part of citizen
  ID"; its login needs citizen ID + SMS (Fig. 11's Log_1/Log_2 structure).
- **Gmail / NetEase (163) / Outlook / Aliyun**: "all of these accounts
  could be verified with only SMS Code" -- phone+SMS password reset; as
  email providers they yield mailbox access when compromised.
- **PayPal**: reset needs SMS code *and* email code (Case II), so Gmail is
  its full-capacity parent given SMS interception.
- **Alipay**: mobile reset via citizen ID + SMS (the combination Case III
  exploits) alongside secure-looking options (face scan, bankcard); web
  reset needs bankcard + phone + SMS, plus a customer-service path.
- **Baidu Wallet**: SMS code as a one-time sign-in token; QR payment right
  after login (Case I -- no intermediate account needed).
- **Baidu Pan / Dropbox**: cloud storage whose photo backups include
  citizen-ID photos; Baidu Pan resets via SMS or email code, Dropbox via
  email code only.
- **JD / LinkedIn**: "provided a mass of" device-type and acquaintance
  information; verifiable with SMS or email code.
- **Gome**: the web end masks the SSN part that the mobile end exposes
  (Insight 2's asymmetry example).
- **Facebook / Google**: Fig. 11's nodes, including Facebook's
  login-with-Google path.
- **Expedia**: bound to Gmail accounts -- the Section III-D binding example.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.model.account import AuthPath, AuthPurpose, MaskSpec, ServiceProfile
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL

# Domain labels used across the catalog.
DOMAIN_EMAIL = "email"
DOMAIN_FINTECH = "fintech"
DOMAIN_SOCIAL = "social"
DOMAIN_TRAVEL = "travel"
DOMAIN_ECOMMERCE = "ecommerce"
DOMAIN_CLOUD = "cloud"
DOMAIN_RAIL = "rail"
DOMAIN_LIFESTYLE = "lifestyle"


def _path(
    service: str,
    platform: PL,
    purpose: AuthPurpose,
    *factors: CF,
    linked: Tuple[str, ...] = (),
) -> AuthPath:
    return AuthPath(
        service=service,
        platform=platform,
        purpose=purpose,
        factors=frozenset(factors),
        linked_providers=frozenset(linked),
    )


def _email_provider(name: str, extra_exposed: FrozenSet[PI]) -> ServiceProfile:
    """A mainstream email provider: password sign-in, phone+SMS reset."""
    exposed = (
        frozenset(
            {
                PI.REAL_NAME,
                PI.CELLPHONE_NUMBER,
                PI.EMAIL_ADDRESS,
                PI.DEVICE_TYPE,
                PI.ACQUAINTANCE_NAME,
                PI.CHAT_HISTORY,
                PI.MAILBOX_ACCESS,
            }
        )
        | extra_exposed
    )
    return ServiceProfile(
        name=name,
        domain=DOMAIN_EMAIL,
        auth_paths=(
            _path(name, PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            _path(name, PL.WEB, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            _path(name, PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            _path(name, PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            _path(name, PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
        ),
        exposed_info={PL.WEB: exposed, PL.MOBILE: exposed},
    )


def seed_profiles() -> Tuple[ServiceProfile, ...]:
    """Return every named-service profile, in a stable order."""
    profiles = []

    # ------------------------------------------------------------------
    # Email providers (Insight 1's gateways)
    # ------------------------------------------------------------------
    profiles.append(_email_provider("gmail", frozenset({PI.ADDRESS})))
    profiles.append(_email_provider("netease_mail", frozenset({PI.ADDRESS})))
    profiles.append(_email_provider("outlook", frozenset()))
    profiles.append(_email_provider("aliyun_mail", frozenset()))

    # ------------------------------------------------------------------
    # Travel
    # ------------------------------------------------------------------
    ctrip_exposed_web = frozenset(
        {
            PI.REAL_NAME,
            PI.CITIZEN_ID,  # full citizen ID in Frequent Travelers Info
            PI.CELLPHONE_NUMBER,
            PI.EMAIL_ADDRESS,
            PI.ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.ORDER_HISTORY,
        }
    )
    profiles.append(
        ServiceProfile(
            name="ctrip",
            domain=DOMAIN_TRAVEL,
            auth_paths=(
                _path("ctrip", PL.WEB, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("ctrip", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("ctrip", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("ctrip", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE),
                _path("ctrip", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("ctrip", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: ctrip_exposed_web, PL.MOBILE: ctrip_exposed_web},
            # Ctrip gives the citizen ID away in full -- no mask spec.
        )
    )

    xiaozhu_exposed = frozenset(
        {PI.REAL_NAME, PI.CITIZEN_ID, PI.CELLPHONE_NUMBER, PI.ADDRESS}
    )
    profiles.append(
        ServiceProfile(
            name="xiaozhu",
            domain=DOMAIN_LIFESTYLE,
            auth_paths=(
                _path("xiaozhu", PL.WEB, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("xiaozhu", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("xiaozhu", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE),
                _path("xiaozhu", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: xiaozhu_exposed, PL.MOBILE: xiaozhu_exposed},
        )
    )

    profiles.append(
        ServiceProfile(
            name="expedia",
            domain=DOMAIN_TRAVEL,
            auth_paths=(
                _path("expedia", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path(
                    "expedia",
                    PL.WEB,
                    AuthPurpose.SIGN_IN,
                    CF.LINKED_ACCOUNT,
                    linked=("gmail", "google"),
                ),
                _path("expedia", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_LINK),
            ),
            exposed_info={
                PL.WEB: frozenset(
                    {PI.REAL_NAME, PI.EMAIL_ADDRESS, PI.ORDER_HISTORY, PI.BINDING_ACCOUNT}
                )
            },
        )
    )

    # ------------------------------------------------------------------
    # Rail
    # ------------------------------------------------------------------
    rail_exposed = frozenset(
        {
            PI.REAL_NAME,
            PI.CITIZEN_ID,
            PI.CELLPHONE_NUMBER,
            PI.EMAIL_ADDRESS,
            PI.ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.STUDENT_ID,
        }
    )
    profiles.append(
        ServiceProfile(
            name="china_railway",
            domain=DOMAIN_RAIL,
            auth_paths=(
                # 12306 demands the citizen ID everywhere (Fig. 11's Log_1 =
                # SMS + citizen ID, Log_2 = citizen ID + email): it is *not*
                # a fringe node, but falls one layer behind Ctrip.
                _path("china_railway", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path(
                    "china_railway",
                    PL.WEB,
                    AuthPurpose.PASSWORD_RESET,
                    CF.CITIZEN_ID,
                    CF.CELLPHONE_NUMBER,
                    CF.SMS_CODE,
                ),
                _path(
                    "china_railway",
                    PL.WEB,
                    AuthPurpose.PASSWORD_RESET,
                    CF.CITIZEN_ID,
                    CF.EMAIL_ADDRESS,
                    CF.EMAIL_CODE,
                ),
                _path(
                    "china_railway",
                    PL.MOBILE,
                    AuthPurpose.SIGN_IN,
                    CF.CITIZEN_ID,
                    CF.SMS_CODE,
                ),
            ),
            exposed_info={PL.WEB: rail_exposed, PL.MOBILE: rail_exposed},
            mask_specs={
                # 12306 reveals the "vital part" -- generous prefix+suffix.
                (PL.WEB, PI.CITIZEN_ID): MaskSpec(reveal_prefix=10, reveal_suffix=4),
                (PL.MOBILE, PI.CITIZEN_ID): MaskSpec(reveal_prefix=10, reveal_suffix=4),
            },
        )
    )

    # ------------------------------------------------------------------
    # Social
    # ------------------------------------------------------------------
    fb_exposed = frozenset(
        {
            PI.REAL_NAME,
            PI.CELLPHONE_NUMBER,
            PI.EMAIL_ADDRESS,
            PI.ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.BINDING_ACCOUNT,
        }
    )
    profiles.append(
        ServiceProfile(
            name="facebook",
            domain=DOMAIN_SOCIAL,
            auth_paths=(
                _path("facebook", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("facebook", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("facebook", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE),
                _path(
                    "facebook",
                    PL.WEB,
                    AuthPurpose.SIGN_IN,
                    CF.LINKED_ACCOUNT,
                    linked=("gmail", "google"),
                ),
                _path("facebook", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("facebook", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: fb_exposed, PL.MOBILE: fb_exposed},
        )
    )

    linkedin_exposed = frozenset(
        {
            PI.REAL_NAME,
            PI.EMAIL_ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.DEVICE_TYPE,
            PI.ADDRESS,
        }
    )
    profiles.append(
        ServiceProfile(
            name="linkedin",
            domain=DOMAIN_SOCIAL,
            auth_paths=(
                _path("linkedin", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("linkedin", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE),
                _path("linkedin", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("linkedin", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: linkedin_exposed, PL.MOBILE: linkedin_exposed},
        )
    )

    # ------------------------------------------------------------------
    # Fintech
    # ------------------------------------------------------------------
    alipay_exposed = frozenset(
        {
            PI.REAL_NAME,
            PI.CELLPHONE_NUMBER,
            PI.EMAIL_ADDRESS,
            PI.ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.USER_ID,
            PI.BANKCARD_NUMBER,
        }
    )
    profiles.append(
        ServiceProfile(
            name="alipay",
            domain=DOMAIN_FINTECH,
            auth_paths=(
                # Mobile reset options the paper lists: face scan, bankcard
                # information, and the fatal citizen-ID + SMS combination.
                _path("alipay", PL.MOBILE, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("alipay", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.FACE_SCAN, CF.SMS_CODE),
                _path(
                    "alipay",
                    PL.MOBILE,
                    AuthPurpose.PASSWORD_RESET,
                    CF.BANKCARD_NUMBER,
                    CF.REAL_NAME,
                    CF.SMS_CODE,
                ),
                _path("alipay", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CITIZEN_ID, CF.SMS_CODE),
                # Web end wants the harder-to-get bankcard number, plus a
                # human customer-service fallback.
                _path("alipay", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path(
                    "alipay",
                    PL.WEB,
                    AuthPurpose.PASSWORD_RESET,
                    CF.BANKCARD_NUMBER,
                    CF.CELLPHONE_NUMBER,
                    CF.SMS_CODE,
                ),
                _path("alipay", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CUSTOMER_SERVICE),
            ),
            exposed_info={PL.WEB: alipay_exposed, PL.MOBILE: alipay_exposed},
            mask_specs={
                (PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=4),
                (PL.MOBILE, PI.BANKCARD_NUMBER): MaskSpec(reveal_prefix=6, reveal_suffix=4),
            },
        )
    )

    profiles.append(
        ServiceProfile(
            name="paypal",
            domain=DOMAIN_FINTECH,
            auth_paths=(
                _path("paypal", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path(
                    "paypal",
                    PL.WEB,
                    AuthPurpose.PASSWORD_RESET,
                    CF.SMS_CODE,
                    CF.CELLPHONE_NUMBER,
                    CF.EMAIL_CODE,
                ),
                _path("paypal", PL.MOBILE, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path(
                    "paypal",
                    PL.MOBILE,
                    AuthPurpose.PASSWORD_RESET,
                    CF.SMS_CODE,
                    CF.CELLPHONE_NUMBER,
                    CF.EMAIL_CODE,
                ),
            ),
            exposed_info={
                PL.WEB: frozenset(
                    {PI.REAL_NAME, PI.EMAIL_ADDRESS, PI.BANKCARD_NUMBER, PI.ADDRESS}
                ),
                PL.MOBILE: frozenset({PI.REAL_NAME, PI.EMAIL_ADDRESS}),
            },
            mask_specs={(PL.WEB, PI.BANKCARD_NUMBER): MaskSpec(reveal_suffix=4)},
        )
    )

    profiles.append(
        ServiceProfile(
            name="baidu_wallet",
            domain=DOMAIN_FINTECH,
            auth_paths=(
                # Case I: the SMS code works as a one-time sign-in token.
                _path("baidu_wallet", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("baidu_wallet", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("baidu_wallet", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            ),
            exposed_info={
                PL.MOBILE: frozenset(
                    {PI.REAL_NAME, PI.CELLPHONE_NUMBER, PI.BANKCARD_NUMBER}
                ),
                PL.WEB: frozenset({PI.REAL_NAME, PI.CELLPHONE_NUMBER}),
            },
            mask_specs={
                (PL.MOBILE, PI.BANKCARD_NUMBER): MaskSpec(reveal_prefix=4, reveal_suffix=4)
            },
        )
    )

    # ------------------------------------------------------------------
    # Cloud storage
    # ------------------------------------------------------------------
    profiles.append(
        ServiceProfile(
            name="baidu_pan",
            domain=DOMAIN_CLOUD,
            auth_paths=(
                _path("baidu_pan", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("baidu_pan", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("baidu_pan", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE),
                _path("baidu_pan", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={
                PL.WEB: frozenset(
                    {
                        PI.CELLPHONE_NUMBER,
                        PI.EMAIL_ADDRESS,
                        PI.CLOUD_PHOTOS,
                        PI.ID_PHOTO,  # citizen-ID photos backed up to cloud
                    }
                ),
                PL.MOBILE: frozenset(
                    {PI.CELLPHONE_NUMBER, PI.CLOUD_PHOTOS, PI.ID_PHOTO}
                ),
            },
        )
    )

    profiles.append(
        ServiceProfile(
            name="dropbox",
            domain=DOMAIN_CLOUD,
            auth_paths=(
                _path("dropbox", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("dropbox", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_LINK),
                _path("dropbox", PL.MOBILE, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
            ),
            exposed_info={
                PL.WEB: frozenset(
                    {PI.EMAIL_ADDRESS, PI.CLOUD_PHOTOS, PI.ID_PHOTO, PI.DEVICE_TYPE}
                ),
                PL.MOBILE: frozenset({PI.EMAIL_ADDRESS, PI.CLOUD_PHOTOS}),
            },
        )
    )

    # ------------------------------------------------------------------
    # E-commerce / retail
    # ------------------------------------------------------------------
    jd_exposed = frozenset(
        {
            PI.REAL_NAME,
            PI.CELLPHONE_NUMBER,
            PI.EMAIL_ADDRESS,
            PI.ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.DEVICE_TYPE,
            PI.ORDER_HISTORY,
        }
    )
    profiles.append(
        ServiceProfile(
            name="jd",
            domain=DOMAIN_ECOMMERCE,
            auth_paths=(
                _path("jd", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("jd", PL.WEB, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("jd", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("jd", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE),
                _path("jd", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("jd", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: jd_exposed, PL.MOBILE: jd_exposed},
        )
    )

    gome_exposed = frozenset(
        {PI.REAL_NAME, PI.CELLPHONE_NUMBER, PI.ADDRESS, PI.CITIZEN_ID}
    )
    profiles.append(
        ServiceProfile(
            name="gome",
            domain=DOMAIN_ECOMMERCE,
            auth_paths=(
                _path("gome", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("gome", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("gome", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("gome", PL.MOBILE, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: gome_exposed, PL.MOBILE: gome_exposed},
            mask_specs={
                # Insight 2's asymmetry: the web end covers the middle of
                # the SSN; the mobile end exposes exactly that part.
                (PL.WEB, PI.CITIZEN_ID): MaskSpec(reveal_prefix=6, reveal_suffix=4),
                (PL.MOBILE, PI.CITIZEN_ID): MaskSpec(reveal_middle=(6, 14)),
            },
        )
    )

    # ------------------------------------------------------------------
    # Google as a distinct relying/identity service (Fig. 11 node).
    # ------------------------------------------------------------------
    google_exposed = frozenset(
        {
            PI.REAL_NAME,
            PI.DEVICE_TYPE,
            PI.CELLPHONE_NUMBER,
            PI.EMAIL_ADDRESS,
            PI.ADDRESS,
            PI.ACQUAINTANCE_NAME,
            PI.USER_ID,
            PI.MAILBOX_ACCESS,
        }
    )
    profiles.append(
        ServiceProfile(
            name="google",
            domain=DOMAIN_EMAIL,
            auth_paths=(
                _path("google", PL.WEB, AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD),
                _path("google", PL.WEB, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("google", PL.WEB, AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
                _path("google", PL.MOBILE, AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE),
            ),
            exposed_info={PL.WEB: google_exposed, PL.MOBILE: google_exposed},
        )
    )

    return tuple(profiles)


#: Stable name list, handy for restriction views and tests.
SEED_SERVICE_NAMES: Tuple[str, ...] = tuple(p.name for p in seed_profiles())

#: Email domain -> owning seed service, used when deploying.
EMAIL_DOMAIN_OWNERS: Dict[str, str] = {
    "gmail.test": "gmail",
    "163.test": "netease_mail",
    "outlook.test": "outlook",
    "aliyun.test": "aliyun_mail",
}
