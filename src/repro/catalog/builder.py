"""Synthesizing and deploying the 201-service ecosystem.

:class:`CatalogBuilder` turns a :class:`~repro.catalog.spec.CatalogSpec`
into an :class:`~repro.model.ecosystem.Ecosystem`: the hand-written seed
services first (the paper's named services), then synthetic services drawn
from the per-domain generation parameters until the catalog reaches its
target size.

:meth:`CatalogBuilder.deploy` then stands the ecosystem up as live
infrastructure: a simulated internet with every service deployed, email
domains owned by the seed email providers, a GSM network carrying the SMS
channel, victims enrolled everywhere with phones provisioned into cells,
and OAuth bindings registered.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.seeds import (
    EMAIL_DOMAIN_OWNERS,
    seed_profiles,
)
from repro.catalog.spec import DEFAULT_SPEC, CatalogSpec, DomainSpec
from repro.model.account import (
    AuthPath,
    AuthPurpose,
    MaskSpec,
    ServiceProfile,
)
from repro.model.ecosystem import Ecosystem
from repro.model.account import OnlineAccount
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform as PL
from repro.model.identity import Identity, IdentityGenerator
from repro.telecom.cipher import CipherSuite
from repro.telecom.network import GSMNetwork, RadioTech
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence
from repro.websim.internet import Internet

#: Masking rules providers pick from for citizen IDs -- deliberately
#: inconsistent across providers (Insight 4).
_CITIZEN_ID_MASKS: Tuple[MaskSpec, ...] = (
    MaskSpec(reveal_prefix=6, reveal_suffix=4),
    MaskSpec(reveal_prefix=4, reveal_suffix=2),
    MaskSpec(reveal_middle=(6, 14)),
    MaskSpec(reveal_prefix=10),
    MaskSpec(reveal_suffix=6),
)

#: Same for bankcard numbers; never fully revealed by any single provider,
#: but the rule *pool* jointly covers every digit position -- which is what
#: makes the Insight-4 combining attack possible at all.
_BANKCARD_MASKS: Tuple[MaskSpec, ...] = (
    MaskSpec(reveal_suffix=4),
    MaskSpec(reveal_prefix=6, reveal_suffix=4),
    MaskSpec(reveal_prefix=4),
    MaskSpec(reveal_middle=(4, 10)),
    MaskSpec(reveal_middle=(8, 12)),
)

#: Extra knowledge factors info-path resets draw from.
_INFO_FACTORS: Tuple[CF, ...] = (
    CF.CITIZEN_ID,
    CF.REAL_NAME,
    CF.BANKCARD_NUMBER,
    CF.SECURITY_QUESTION,
    CF.ADDRESS,
    CF.ACQUAINTANCE_NAME,
    CF.STUDENT_ID,
)

#: Unique-path factors (Insight 5's robust end).
_UNIQUE_FACTORS: Tuple[CF, ...] = (
    CF.FACE_SCAN,
    CF.FINGERPRINT,
    CF.U2F_KEY,
    CF.TRUSTED_DEVICE,
    CF.AUTHENTICATOR_TOTP,
)

_IDENTITY_PROVIDERS: Tuple[str, ...] = ("gmail", "google")


@dataclasses.dataclass
class DeployedEcosystem:
    """A live, attackable instance of one ecosystem."""

    ecosystem: Ecosystem
    internet: Internet
    network: GSMNetwork
    victims: Tuple[Identity, ...]
    clock: Clock
    seeds: SeedSequence

    def victim(self, index: int = 0) -> Identity:
        """Convenience accessor for one of the enrolled victims."""
        return self.victims[index]

    def cell_of(self, victim: Identity) -> str:
        """The cell the victim's phone camps in."""
        return self.network.phone(victim.cellphone_number).cell_id


class CatalogBuilder:
    """Deterministic ecosystem generator."""

    def __init__(
        self,
        spec: CatalogSpec = DEFAULT_SPEC,
        seed: int = 2021,
    ) -> None:
        self._spec = spec
        self._seeds = SeedSequence(seed)

    @property
    def spec(self) -> CatalogSpec:
        """The generation parameters in use."""
        return self._spec

    # ------------------------------------------------------------------
    # Profile synthesis
    # ------------------------------------------------------------------

    def build_ecosystem(
        self, rng: Optional[random.Random] = None
    ) -> Ecosystem:
        """Generate the full service catalog (seeds + synthetic).

        The synthetic-service stream is threaded through one explicit
        :class:`random.Random` end-to-end (derived fresh from the root
        seed on every call unless ``rng`` is given), so repeated builds
        from the *same* builder are identical run-to-run -- the
        reproducibility contract the churn benchmarks rely on.
        """
        rng = rng if rng is not None else self._seeds.stream("catalog.builder")
        profiles: List[ServiceProfile] = list(seed_profiles())
        synthetic_needed = max(0, self._spec.total_services - len(profiles))
        domain_of: List[DomainSpec] = self._assign_domains(
            synthetic_needed, rng
        )
        for index, domain in enumerate(domain_of):
            profiles.append(self.synthesize_service(index, domain, rng))
        return Ecosystem(profiles)

    def _assign_domains(
        self, count: int, rng: random.Random
    ) -> List[DomainSpec]:
        domains = list(self._spec.domains)
        weights = [d.weight for d in domains]
        return [
            domains[self._weighted_choice(weights, rng)] for _ in range(count)
        ]

    def _weighted_choice(
        self, weights: Sequence[float], rng: random.Random
    ) -> int:
        total = sum(weights)
        roll = rng.uniform(0.0, total)
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if roll <= cumulative:
                return index
        return len(weights) - 1

    def synthesize_service(
        self,
        index: int,
        domain: DomainSpec,
        rng: random.Random,
        name: Optional[str] = None,
    ) -> ServiceProfile:
        """Synthesize one service from an explicit random stream.

        Public so churn generators (:mod:`repro.dynamic.churn`) can mint
        catalog-faithful services for ``AddService`` mutations; ``name``
        overrides the default ``{domain}_{index:03d}`` naming when callers
        must avoid colliding with the existing catalog.
        """
        if name is None:
            name = f"{domain.name}_{index:03d}"
        has_mobile = rng.random() < domain.has_mobile
        platforms = [PL.WEB] + ([PL.MOBILE] if has_mobile else [])

        # One SMS-reset policy decision per service: real providers apply
        # (roughly) one reset policy across clients, and per-platform rolls
        # would square away the strictness of careful domains like Fintech.
        sms_reset_service = rng.random() < domain.sms_only_reset
        paths: List[AuthPath] = []
        for platform in platforms:
            paths.extend(
                self._paths_for_platform(
                    name, platform, domain, sms_reset_service, rng
                )
            )
        is_direct = any(p.is_sms_only for p in paths)

        exposed: Dict[PL, frozenset] = {}
        mask_specs: Dict[Tuple[PL, PI], MaskSpec] = {}
        for platform in platforms:
            kinds = self._sample_exposure(platform, domain, is_direct, rng)
            exposed[platform] = kinds
            if PI.CITIZEN_ID in kinds:
                mask_specs[(platform, PI.CITIZEN_ID)] = rng.choice(
                    _CITIZEN_ID_MASKS
                )
            if PI.BANKCARD_NUMBER in kinds:
                mask_specs[(platform, PI.BANKCARD_NUMBER)] = rng.choice(
                    _BANKCARD_MASKS
                )

        return ServiceProfile(
            name=name,
            domain=domain.name,
            auth_paths=tuple(paths),
            exposed_info=exposed,
            mask_specs=mask_specs,
        )

    def _paths_for_platform(
        self,
        name: str,
        platform: PL,
        domain: DomainSpec,
        sms_reset_service: bool,
        rng: random.Random,
    ) -> List[AuthPath]:
        paths: List[AuthPath] = []

        def add(purpose: AuthPurpose, *factors: CF, linked: Tuple[str, ...] = ()) -> None:
            paths.append(
                AuthPath(
                    service=name,
                    platform=platform,
                    purpose=purpose,
                    factors=frozenset(factors),
                    linked_providers=frozenset(linked),
                )
            )

        # Password reset first: it is the primary attack surface, and
        # SMS-only *sign-in* correlates with it (a service relaxed enough to
        # reset by SMS alone is the kind that offers SMS one-tap login too
        # -- which keeps the Fig. 3 sign-in share strictly below the reset
        # share instead of inflating the union).
        # Mobile apps occasionally add an SMS-only reset the web end lacks
        # (part of Insight 2's asymmetry); the base decision is per-service.
        sms_reset = sms_reset_service or (
            platform is PL.MOBILE and rng.random() < 0.04
        )

        # Sign-in: web keeps the classic password form; mobile apps lead
        # with the phone number (Fig. 3's platform asymmetry).
        if platform is PL.WEB or rng.random() < 0.30:
            add(AuthPurpose.SIGN_IN, CF.USERNAME, CF.PASSWORD)
        sms_signin = (
            domain.sms_only_signin_web
            if platform is PL.WEB
            else domain.sms_only_signin_mobile
        )
        if sms_reset and rng.random() < sms_signin * 1.3:
            add(AuthPurpose.SIGN_IN, CF.CELLPHONE_NUMBER, CF.SMS_CODE)
        if platform is PL.WEB and rng.random() < self._spec.linked_login:
            add(
                AuthPurpose.SIGN_IN,
                CF.LINKED_ACCOUNT,
                linked=_IDENTITY_PROVIDERS,
            )
        # Unique-path *sign-in* options: U2F security keys on the web,
        # fingerprint/face unlock in apps (Fig. 3's unique share counts
        # sign-in paths too).
        unique_signin_p = domain.unique_path * (
            0.60 if platform is PL.MOBILE else 0.45
        )
        if rng.random() < min(1.0, unique_signin_p):
            factor = (
                rng.choice((CF.FINGERPRINT, CF.FACE_SCAN))
                if platform is PL.MOBILE
                else rng.choice((CF.U2F_KEY, CF.TRUSTED_DEVICE))
            )
            add(AuthPurpose.SIGN_IN, factor)

        # Real services typically offer ONE primary reset combination per
        # platform, occasionally a secondary one -- that keeps the paper's
        # 405-paths-over-201-services scale and the modest category overlap
        # behind "percentages cannot be summed up to 100%".
        def add_info_reset() -> None:
            extra_count = 1 if rng.random() < 0.7 else 2
            extras = rng.sample(_INFO_FACTORS, extra_count)
            add(
                AuthPurpose.PASSWORD_RESET,
                CF.CELLPHONE_NUMBER,
                CF.SMS_CODE,
                *extras,
            )

        def add_unique_reset() -> None:
            add(
                AuthPurpose.PASSWORD_RESET,
                rng.choice(_UNIQUE_FACTORS),
                CF.SMS_CODE,
            )

        def add_email_reset() -> None:
            add(AuthPurpose.PASSWORD_RESET, CF.EMAIL_ADDRESS, CF.EMAIL_CODE)

        # Mobile apps carry more info/unique options (ID checks, biometrics
        # bound to the device) -- the source of Fig. 3's lower mobile
        # general-path share.
        mobile = platform is PL.MOBILE
        info_w = domain.info_reset * (1.3 if mobile else 1.0)
        unique_w = domain.unique_path * (1.35 if mobile else 1.0)
        email_w = domain.email_reset * (0.4 if mobile else 1.0)

        if sms_reset:
            add(AuthPurpose.PASSWORD_RESET, CF.CELLPHONE_NUMBER, CF.SMS_CODE)
        else:
            # The primary reset is one of the stricter combinations.
            choices = (
                (add_info_reset, info_w),
                (add_unique_reset, unique_w),
                (add_email_reset, email_w),
            )
            total = sum(w for _, w in choices) or 1.0
            roll = rng.uniform(0.0, total)
            cumulative = 0.0
            primary = add_info_reset
            for action, weight in choices:
                cumulative += weight
                if roll <= cumulative:
                    primary = action
                    break
            primary()
            # Biometric-primary services almost always keep a document
            # fallback (exactly Alipay's option list in Case III), so a
            # unique path rarely makes a service unreachable outright.
            if primary is add_unique_reset and rng.random() < 0.6:
                add_info_reset()
        # Occasionally a secondary reset combination exists alongside --
        # much more often on mobile, whose richer option lists drive the
        # paper's heavily-overlapping mobile category percentages.
        if rng.random() < (0.45 if mobile else 0.12):
            secondary = rng.choices(
                (add_info_reset, add_unique_reset, add_email_reset),
                weights=(
                    max(info_w, 0.05),
                    max(unique_w, 0.05),
                    max(email_w, 0.05),
                ),
            )[0]
            secondary()
        return paths

    def _sample_exposure(
        self,
        platform: PL,
        domain: DomainSpec,
        is_direct: bool,
        rng: random.Random,
    ) -> frozenset:
        table = (
            self._spec.exposure_web
            if platform is PL.WEB
            else self._spec.exposure_mobile
        )
        kinds = set()
        for kind, base in table.items():
            boost = domain.exposure_boost.get(kind, 1.0)
            if rng.random() < min(1.0, base * boost):
                kinds.add(kind)
        bankcard_p = (
            self._spec.bankcard_exposure_web
            if platform is PL.WEB
            else self._spec.bankcard_exposure_mobile
        )
        if domain.name == "fintech":
            bankcard_p = min(1.0, bankcard_p * 4.0)
        if rng.random() < bankcard_p:
            kinds.add(PI.BANKCARD_NUMBER)
        if domain.name == "email":
            kinds.add(PI.MAILBOX_ACCESS)
            kinds.add(PI.EMAIL_ADDRESS)
        if domain.name == "cloud" and rng.random() < 0.6:
            kinds.add(PI.CLOUD_PHOTOS)
            if rng.random() < 0.5:
                kinds.add(PI.ID_PHOTO)
        if domain.name == "ecommerce" and rng.random() < 0.7:
            kinds.add(PI.ORDER_HISTORY)
        # Scarce kinds, exposed only by services that take authentication
        # seriously enough NOT to be SMS-only resettable: security answers
        # live in fintech "security centers", student IDs on education
        # portals.  Every holder therefore sits at least one layer deep,
        # which is the raw material of the paper's two-layer chains (the
        # JD/LinkedIn pattern: the info you need is behind an account that
        # itself needs an email code first).
        if not is_direct:
            if domain.name == "fintech" and rng.random() < 0.45:
                kinds.add(PI.SECURITY_ANSWERS)
            if domain.name == "education" and rng.random() < 0.55:
                kinds.add(PI.STUDENT_ID)
        return frozenset(kinds)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        ecosystem: Optional[Ecosystem] = None,
        cipher: CipherSuite = CipherSuite.A5_1,
        victim_tech: RadioTech = RadioTech.GSM,
    ) -> DeployedEcosystem:
        """Stand the ecosystem up as live, attackable infrastructure."""
        if ecosystem is None:
            ecosystem = self.build_ecosystem()
        clock = Clock()
        internet = Internet(seeds=self._seeds.child("internet"), clock=clock)
        network = GSMNetwork(clock=clock, seeds=self._seeds.child("telecom"))
        for cell_index in range(self._spec.cells):
            network.add_cell(
                f"cell-{cell_index}",
                arfcns=(512, 514, 516, 518),
                cipher=cipher,
            )
        network.attach_internet(internet)

        for profile in ecosystem:
            internet.deploy(profile)
        for domain, owner in EMAIL_DOMAIN_OWNERS.items():
            if internet.has_service(owner):
                internet.register_email_domain(domain, owner)

        id_gen = IdentityGenerator(
            self._seeds.derive("victims") & 0x7FFFFFFF, id_prefix="v"
        )
        victims = tuple(id_gen.generate_many(self._spec.victims))
        bind_rng = self._seeds.stream("bindings")
        accounts = []
        for victim in victims:
            internet.enroll_everywhere(victim, password=f"pw-{victim.person_id}")
            network.provision_phone(
                victim.cellphone_number,
                f"cell-{victims.index(victim) % self._spec.cells}",
                preferred_tech=victim_tech,
            )
            for profile in ecosystem:
                accounts.append(OnlineAccount(service=profile, identity=victim))
                self._maybe_bind(internet, bind_rng, victim, profile)

        populated = Ecosystem(ecosystem.services, accounts)
        return DeployedEcosystem(
            ecosystem=populated,
            internet=internet,
            network=network,
            victims=victims,
            clock=clock,
            seeds=self._seeds,
        )

    def _maybe_bind(
        self,
        internet: Internet,
        rng: random.Random,
        victim: Identity,
        profile: ServiceProfile,
    ) -> None:
        linkable = [
            p
            for p in profile.auth_paths
            if CF.LINKED_ACCOUNT in p.factors and p.linked_providers
        ]
        if not linkable:
            return
        # Victims bind every provider the service offers: it keeps the
        # profile-level linked-account edges sound for every victim (and
        # users who adopt login-with typically link their main identity
        # providers anyway).
        for provider in sorted(linkable[0].linked_providers):
            if internet.has_service(provider):
                internet.bindings.bind(victim.person_id, profile.name, provider)


def build_default_ecosystem(seed: int = 2021) -> Ecosystem:
    """The 201-service ecosystem the benchmarks analyze."""
    return CatalogBuilder(DEFAULT_SPEC, seed=seed).build_ecosystem()
