"""Simulated GSM/SMS substrate.

The paper intercepts SMS one-time codes two ways: passively, with
OsmocomBB-flashed Motorola C118 phones sniffing nearby GSM traffic
(Fig. 6), and actively, with a fake base station that captures the victim
after a 4G jammer downgrades them to GSM (Fig. 7 / Fig. 10).  Neither rig
is available offline, so this package simulates the parts of GSM those
attacks depend on:

- :mod:`repro.telecom.numbers` -- MSISDN/IMSI/TMSI allocation,
- :mod:`repro.telecom.cipher` -- an A5/1-structured stream cipher plus a
  known-plaintext cracking model calibrated to the published attacks,
- :mod:`repro.telecom.events` -- the over-the-air event bus sniffers tap,
- :mod:`repro.telecom.network` -- cells, base stations, mobile attachment
  and SMS delivery (pluggable as the simulated internet's SMS gateway),
- :mod:`repro.telecom.sniffer` -- the passive multi-monitor sniffer,
- :mod:`repro.telecom.jammer` -- the 4G jammer forcing LTE -> GSM fallback,
- :mod:`repro.telecom.mitm` -- the Fig. 10 active MitM state machine.
"""

from repro.telecom.numbers import SubscriberDirectory, SubscriberRecord
from repro.telecom.cipher import A51Cipher, CipherSuite, CrackModel
from repro.telecom.events import EventBus, PagingEvent, RadioEvent, SMSBurstEvent
from repro.telecom.network import BaseStation, GSMNetwork, MobileStation, RadioTech
from repro.telecom.sniffer import CapturedSMS, OsmocomSniffer
from repro.telecom.jammer import FourGJammer
from repro.telecom.mitm import ActiveMitM, MitMOutcome, MitMStep

__all__ = [
    "A51Cipher",
    "ActiveMitM",
    "BaseStation",
    "CapturedSMS",
    "CipherSuite",
    "CrackModel",
    "EventBus",
    "FourGJammer",
    "GSMNetwork",
    "MitMOutcome",
    "MitMStep",
    "MobileStation",
    "OsmocomSniffer",
    "PagingEvent",
    "RadioEvent",
    "RadioTech",
    "SMSBurstEvent",
    "SubscriberDirectory",
    "SubscriberRecord",
]
