"""Passive OsmocomBB-style SMS sniffing.

The paper's rig: "one Thinkpad T440p ... 16 customized C118 cellphones
connected over USB; each C118 could monitor one frequency point in the GSM
network" running OsmocomBB to decode and Wireshark to filter.  The
:class:`OsmocomSniffer` reproduces the operational constraints that matter:

- it captures only in the cell it is physically in (the paper's
  hundreds-of-meters range limit),
- it captures only on ARFCNs it has a monitor tuned to (at most one per
  C118), so an under-provisioned rig misses bursts,
- unencrypted (A5/0) bursts decode immediately; A5/1 bursts go through the
  known-plaintext cracking model, which takes time and can fail, and
- matching captures to a victim uses content rules (sender name / code
  pattern), exactly like the paper's Wireshark filters.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Tuple

from repro.telecom.cipher import A51Cipher, CipherSuite, CrackModel
from repro.telecom.events import (
    PDU_HEADER,
    RadioEvent,
    SMSBurstEvent,
    decode_pdu,
)
from repro.telecom.network import GSMNetwork

_CODE_RE = re.compile(r"code is (\d+)")


@dataclasses.dataclass(frozen=True)
class CapturedSMS:
    """One SMS the sniffer managed to read."""

    captured_at: float
    #: When the plaintext became available to the attacker (capture time
    #: plus any cracking delay).
    available_at: float
    cell_id: str
    arfcn: int
    tmsi: str
    sender: str
    text: str
    was_encrypted: bool

    @property
    def otp_code(self) -> Optional[str]:
        """The verification code in the message body, if any."""
        match = _CODE_RE.search(self.text)
        return match.group(1) if match else None


class OsmocomSniffer:
    """A multi-monitor passive sniffer parked in one cell."""

    def __init__(
        self,
        network: GSMNetwork,
        cell_id: str,
        monitors: int = 16,
        crack_model: Optional[CrackModel] = None,
    ) -> None:
        if monitors < 1:
            raise ValueError("need at least one monitor phone")
        self._network = network
        self._cell_id = cell_id
        station = network.cell(cell_id)
        # Tune one C118 per ARFCN, beacon first, until we run out of
        # monitors.  A rig with fewer monitors than the cell has ARFCNs
        # leaves frequencies dark -- measured by the sniffing benchmark.
        self._monitored = frozenset(station.arfcns[:monitors])
        self._crack = crack_model if crack_model is not None else CrackModel()
        self._captures: List[CapturedSMS] = []
        self._missed_dark_arfcn = 0
        self._missed_crack_failure = 0
        self._attached = False
        self._listener = self._on_event

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Power the rig up (subscribe to the air interface)."""
        if not self._attached:
            self._network.bus.subscribe(self._listener)
            self._attached = True

    def stop(self) -> None:
        """Power the rig down."""
        if self._attached:
            self._network.bus.unsubscribe(self._listener)
            self._attached = False

    @property
    def monitored_arfcns(self) -> frozenset:
        """Frequencies the rig has a monitor tuned to."""
        return self._monitored

    @property
    def cell_id(self) -> str:
        """The cell the rig is parked in."""
        return self._cell_id

    # ------------------------------------------------------------------
    # Capture path
    # ------------------------------------------------------------------

    def _on_event(self, event: RadioEvent) -> None:
        if not isinstance(event, SMSBurstEvent):
            return
        if event.cell_id != self._cell_id:
            return  # out of radio range
        if event.arfcn not in self._monitored:
            self._missed_dark_arfcn += 1
            return
        if event.cipher is CipherSuite.A5_0:
            self._record(event, event.ciphertext, available_at=event.at, encrypted=False)
            return
        result = self._crack.attempt(
            true_key=event.session_key_escrow,
            frame_number=event.frame_number,
            ciphertext=event.ciphertext,
            known_plaintext_prefix=PDU_HEADER,
        )
        if not result.success or result.session_key is None:
            self._missed_crack_failure += 1
            return
        plaintext = A51Cipher.decrypt(
            result.session_key, event.frame_number, event.ciphertext
        )
        self._record(
            event,
            plaintext,
            available_at=event.at + result.elapsed,
            encrypted=True,
        )

    def _record(
        self,
        event: SMSBurstEvent,
        plaintext: bytes,
        available_at: float,
        encrypted: bool,
    ) -> None:
        try:
            sender, text = decode_pdu(plaintext)
        except (ValueError, UnicodeDecodeError):
            self._missed_crack_failure += 1
            return
        self._captures.append(
            CapturedSMS(
                captured_at=event.at,
                available_at=available_at,
                cell_id=event.cell_id,
                arfcn=event.arfcn,
                tmsi=event.tmsi,
                sender=sender,
                text=text,
                was_encrypted=encrypted,
            )
        )

    # ------------------------------------------------------------------
    # Attacker-facing queries (the "Wireshark filter rules")
    # ------------------------------------------------------------------

    @property
    def captures(self) -> Tuple[CapturedSMS, ...]:
        """Everything captured so far, in capture order."""
        return tuple(self._captures)

    def codes_from(
        self,
        sender: str,
        since: float = 0.0,
        ready_by: Optional[float] = None,
    ) -> Tuple[CapturedSMS, ...]:
        """Captured OTP-bearing messages from ``sender``.

        ``since`` filters by capture time (the attacker knows roughly when
        they triggered the reset); ``ready_by`` drops captures whose
        cracking had not finished by that deadline (the OTP's expiry).
        """
        result = []
        for cap in self._captures:
            if cap.sender != sender or cap.captured_at < since:
                continue
            if cap.otp_code is None:
                continue
            if ready_by is not None and cap.available_at > ready_by:
                continue
            result.append(cap)
        return tuple(result)

    def latest_code_from(
        self,
        sender: str,
        since: float = 0.0,
        ready_by: Optional[float] = None,
    ) -> Optional[str]:
        """The most recent usable code from ``sender``, if any."""
        matches = self.codes_from(sender, since=since, ready_by=ready_by)
        return matches[-1].otp_code if matches else None

    @property
    def stats(self) -> dict:
        """Capture/miss counters for the benchmark harness."""
        return {
            "captured": len(self._captures),
            "missed_dark_arfcn": self._missed_dark_arfcn,
            "missed_crack_failure": self._missed_crack_failure,
            "monitors": len(self._monitored),
        }
