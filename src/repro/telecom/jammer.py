"""The 4G jammer used to force LTE phones down to GSM.

The active MitM attack "can be realized using fake base stations powered by
USRP after the LTE network is downgraded to GSM forced by a 4G jammer"
(Section V-A-2).  The jammer here is cell-scoped: while active, every
GSM-capable LTE phone in the cell falls back to GSM, where the fake base
station (and the passive sniffer) can reach it.
"""

from __future__ import annotations

from repro.telecom.network import GSMNetwork


class FourGJammer:
    """A portable 4G jammer deployed in one cell."""

    def __init__(self, network: GSMNetwork, cell_id: str) -> None:
        network.cell(cell_id)  # validate the cell exists
        self._network = network
        self._cell_id = cell_id
        self._active = False

    @property
    def cell_id(self) -> str:
        """The cell the jammer is deployed in."""
        return self._cell_id

    @property
    def active(self) -> bool:
        """Whether the jammer is currently transmitting."""
        return self._active

    def activate(self) -> None:
        """Start jamming 4G in the cell."""
        self._network.set_cell_jammed(self._cell_id, True)
        self._active = True

    def deactivate(self) -> None:
        """Stop jamming; LTE phones re-attach to 4G."""
        self._network.set_cell_jammed(self._cell_id, False)
        self._active = False

    def __enter__(self) -> "FourGJammer":
        self.activate()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.deactivate()
