"""Subscriber numbering: MSISDN, IMSI and TMSI management.

The active MitM attack (Fig. 10) pivots on the relationships between three
identifiers: the MSISDN (the public phone number the attacker starts with),
the IMSI (the SIM identity a fake base station catches), and the TMSI (the
temporary identity paging uses, which keeps passive sniffing from trivially
matching bursts to numbers).  The :class:`SubscriberDirectory` is the
carrier's mapping between them.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional


@dataclasses.dataclass
class SubscriberRecord:
    """One SIM known to the carrier."""

    msisdn: str
    imsi: str
    tmsi: str

    def reassign_tmsi(self, rng: random.Random) -> None:
        """Issue a fresh TMSI (carriers rotate them periodically)."""
        self.tmsi = _random_tmsi(rng)


def _random_tmsi(rng: random.Random) -> str:
    return f"T{rng.randrange(16**8):08x}"


class SubscriberDirectory:
    """Allocates and resolves subscriber identifiers."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(0)
        self._by_msisdn: Dict[str, SubscriberRecord] = {}
        self._by_imsi: Dict[str, SubscriberRecord] = {}
        self._imsi_counter = 0

    def provision(self, msisdn: str) -> SubscriberRecord:
        """Provision a SIM for ``msisdn``; idempotent per number."""
        existing = self._by_msisdn.get(msisdn)
        if existing is not None:
            return existing
        self._imsi_counter += 1
        record = SubscriberRecord(
            msisdn=msisdn,
            imsi=f"46000{self._imsi_counter:010d}",
            tmsi=_random_tmsi(self._rng),
        )
        self._by_msisdn[msisdn] = record
        self._by_imsi[record.imsi] = record
        return record

    def by_msisdn(self, msisdn: str) -> SubscriberRecord:
        """Resolve a phone number; raises :class:`KeyError` if unknown."""
        return self._by_msisdn[msisdn]

    def by_imsi(self, imsi: str) -> SubscriberRecord:
        """Resolve an IMSI; raises :class:`KeyError` if unknown."""
        return self._by_imsi[imsi]

    def is_provisioned(self, msisdn: str) -> bool:
        """Whether a SIM exists for ``msisdn``."""
        return msisdn in self._by_msisdn

    def rotate_tmsi(self, msisdn: str) -> str:
        """Rotate and return the TMSI for ``msisdn``."""
        record = self.by_msisdn(msisdn)
        # The old TMSI is simply forgotten.
        record.reassign_tmsi(self._rng)
        self._by_imsi[record.imsi] = record
        return record.tmsi

    @property
    def subscriber_count(self) -> int:
        """Number of provisioned SIMs."""
        return len(self._by_msisdn)
