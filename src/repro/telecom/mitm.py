"""The active MitM attack of Fig. 7 / Fig. 10.

The appendix's message sequence chart (Fig. 10) runs:

1. the 4G jammer forces the victim terminal (VT) down to GSM,
2. the VT attaches to the fake base station (FBS -- PC + USRP B100 running
   OsmoNITB) because it is the strongest GSM signal, revealing its IMSI,
3. the fake victim terminal (FVT -- PC + C118 running OsmocomBB) opens a
   socket to the FBS and performs a Location Area Update toward the real
   network *as the victim*, relaying the network's authentication challenge
   to the real SIM through the FBS,
4. the legitimate network accepts the location update -- the victim's
   downlink now terminates at the FVT,
5. a call from the FVT reveals the victim's MSISDN (confirming the catch),
6. every subsequent SMS -- including OTP codes -- arrives at the attacker
   and *never reaches the victim* ("Attacker Gets Full Control From Here").

:class:`ActiveMitM` executes this sequence step by step against the
simulated network, recording a transcript and failing at exactly the step
whose precondition is missing (no jammer, victim out of cell, GSM-incapable
victim, ...).  The benchmark ablates those preconditions.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple

from repro.telecom.network import GSMNetwork, RadioTech


class MitMStep(enum.Enum):
    """One protocol step of the Fig. 10 sequence."""

    FORCE_GSM_DOWNGRADE = "force_gsm_downgrade"
    FBS_ATTACH_AND_IMSI_CATCH = "fbs_attach_and_imsi_catch"
    FVT_SOCKET = "fvt_socket"
    LAU_REQUEST = "lau_request"
    AUTH_RELAY = "auth_relay"
    LOCATION_UPDATE_ACCEPT = "location_update_accept"
    MSISDN_REVEAL = "msisdn_reveal"
    SMS_INTERCEPT_ARMED = "sms_intercept_armed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class StepRecord:
    """Transcript entry for one executed (or failed) step."""

    step: MitMStep
    at: float
    ok: bool
    detail: str


@dataclasses.dataclass(frozen=True)
class MitMOutcome:
    """Result of one attack run."""

    success: bool
    transcript: Tuple[StepRecord, ...]
    imsi: Optional[str]
    msisdn: Optional[str]

    @property
    def failed_step(self) -> Optional[MitMStep]:
        """The first step that failed, if the run failed."""
        for record in self.transcript:
            if not record.ok:
                return record.step
        return None


#: Seconds each protocol step takes on the simulated clock, so captures
#: carry realistic timing relative to OTP expiry.
_STEP_DURATION = 2.0


class ActiveMitM:
    """Fake base station + fake victim terminal, deployed in one cell."""

    def __init__(self, network: GSMNetwork, cell_id: str) -> None:
        network.cell(cell_id)  # validate
        self._network = network
        self._cell_id = cell_id
        self._captured_msisdn: Optional[str] = None
        self._intercepted: List[Tuple[float, str, str]] = []

    @property
    def cell_id(self) -> str:
        """The cell the rig is deployed in."""
        return self._cell_id

    # ------------------------------------------------------------------
    # Attack execution
    # ------------------------------------------------------------------

    def execute(self, target_msisdn: str) -> MitMOutcome:
        """Run the full Fig. 10 sequence against ``target_msisdn``."""
        transcript: List[StepRecord] = []
        clock = self._network.clock

        def record(step: MitMStep, ok: bool, detail: str) -> bool:
            transcript.append(
                StepRecord(step=step, at=clock.now(), ok=ok, detail=detail)
            )
            clock.advance(_STEP_DURATION)
            return ok

        # Step 1: the victim must be on GSM -- either natively or because a
        # jammer in this cell forced the downgrade.
        if not self._network.has_phone(target_msisdn):
            record(
                MitMStep.FORCE_GSM_DOWNGRADE,
                False,
                "target phone not present in the network",
            )
            return self._outcome(False, transcript, None, None)
        phone = self._network.phone(target_msisdn)
        if phone.cell_id != self._cell_id:
            record(
                MitMStep.FORCE_GSM_DOWNGRADE,
                False,
                f"target camps in cell {phone.cell_id!r}, rig is in "
                f"{self._cell_id!r} (out of radio range)",
            )
            return self._outcome(False, transcript, None, None)
        if self._network.effective_tech(target_msisdn) is not RadioTech.GSM:
            record(
                MitMStep.FORCE_GSM_DOWNGRADE,
                False,
                "target still on LTE (no jammer active in the cell)",
            )
            return self._outcome(False, transcript, None, None)
        record(MitMStep.FORCE_GSM_DOWNGRADE, True, "target is on GSM")

        # Step 2: strongest-signal attach to the FBS reveals the IMSI.
        subscriber = self._network.directory.by_msisdn(target_msisdn)
        record(
            MitMStep.FBS_ATTACH_AND_IMSI_CATCH,
            True,
            f"VT attached to FBS; IMSI {subscriber.imsi} caught",
        )

        # Steps 3-5: the FVT impersonates the victim toward the legitimate
        # network, relaying the authentication challenge to the real SIM.
        record(MitMStep.FVT_SOCKET, True, "FVT socket to FBS established")
        record(
            MitMStep.LAU_REQUEST,
            True,
            "FVT sent Location Area Update request as victim",
        )
        record(
            MitMStep.AUTH_RELAY,
            True,
            "auth challenge relayed FVT<->FBS<->VT; response returned",
        )
        self._network.set_interceptor(target_msisdn, self._on_intercepted_sms)
        record(
            MitMStep.LOCATION_UPDATE_ACCEPT,
            True,
            "legitimate network accepted the location update",
        )

        # Step 6: a call from the FVT reveals / confirms the MSISDN.
        self._captured_msisdn = target_msisdn
        record(
            MitMStep.MSISDN_REVEAL,
            True,
            f"call placed; MSISDN {target_msisdn} confirmed",
        )
        record(
            MitMStep.SMS_INTERCEPT_ARMED,
            True,
            "downlink SMS now terminates at the attacker",
        )
        return self._outcome(True, transcript, subscriber.imsi, target_msisdn)

    def _outcome(
        self,
        success: bool,
        transcript: List[StepRecord],
        imsi: Optional[str],
        msisdn: Optional[str],
    ) -> MitMOutcome:
        return MitMOutcome(
            success=success,
            transcript=tuple(transcript),
            imsi=imsi,
            msisdn=msisdn,
        )

    def release(self) -> None:
        """Tear the interception down (the victim re-attaches)."""
        if self._captured_msisdn is not None:
            self._network.clear_interceptor(self._captured_msisdn)
            self._captured_msisdn = None

    def __enter__(self) -> "ActiveMitM":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # ------------------------------------------------------------------
    # Attacker-facing capture queries
    # ------------------------------------------------------------------

    def _on_intercepted_sms(self, sender: str, text: str) -> None:
        self._intercepted.append((self._network.clock.now(), sender, text))

    @property
    def intercepted(self) -> Tuple[Tuple[float, str, str], ...]:
        """(time, sender, text) triples the rig swallowed."""
        return tuple(self._intercepted)

    def latest_code_from(self, sender: str, since: float = 0.0) -> Optional[str]:
        """The most recent OTP code intercepted from ``sender``."""
        import re

        for at, msg_sender, text in reversed(self._intercepted):
            if msg_sender != sender or at < since:
                continue
            match = re.search(r"code is (\d+)", text)
            if match:
                return match.group(1)
        return None
