"""Cells, base stations, mobile attachment and SMS delivery.

:class:`GSMNetwork` is the carrier: it provisions SIMs, tracks which cell
each phone camps in and on which radio technology, and delivers SMS.  A
delivery to a phone camping on GSM radiates paging + SMS-burst events on
the cell's :class:`~repro.telecom.events.EventBus` (where the passive
sniffer lives); a phone on LTE receives over a channel the paper's rig
cannot tap -- until a jammer downgrades it.

The network plugs into the simulated internet as its SMS gateway
(:meth:`GSMNetwork.as_sms_gateway`), closing the loop: a service requests an
OTP, the code rides the simulated air interface, and the attacker's rig
either catches it or does not.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from typing import Callable, Dict, List, Optional, Tuple

from repro.telecom.cipher import A51Cipher, CipherSuite
from repro.telecom.events import (
    EventBus,
    PagingEvent,
    SMSBurstEvent,
    encode_pdu,
)
from repro.telecom.numbers import SubscriberDirectory
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.websim.internet import Internet


class RadioTech(enum.Enum):
    """Radio access technology a phone is currently using."""

    LTE = "lte"
    GSM = "gsm"


@dataclasses.dataclass(frozen=True)
class BaseStation:
    """One legitimate cell."""

    cell_id: str
    arfcns: Tuple[int, ...]
    cipher: CipherSuite

    def __post_init__(self) -> None:
        if not self.arfcns:
            raise ValueError("a base station needs at least one ARFCN")
        if len(set(self.arfcns)) != len(self.arfcns):
            raise ValueError("duplicate ARFCNs in one cell")


@dataclasses.dataclass
class MobileStation:
    """One victim handset as the carrier sees it."""

    msisdn: str
    cell_id: str
    preferred_tech: RadioTech = RadioTech.LTE
    gsm_capable: bool = True


#: Handler for intercepted deliveries: (sender, text) -> None.
InterceptHandler = Callable[[str, str], None]


class GSMNetwork:
    """The simulated carrier network."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        seeds: Optional[SeedSequence] = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        seeds = seeds if seeds is not None else SeedSequence(0)
        self._rng = seeds.stream("telecom.network")
        self.directory = SubscriberDirectory(seeds.stream("telecom.directory"))
        self.bus = EventBus()
        self._cells: Dict[str, BaseStation] = {}
        self._phones: Dict[str, MobileStation] = {}
        self._jammed_cells: set = set()
        self._interceptors: Dict[str, InterceptHandler] = {}
        self._internet: Optional["Internet"] = None
        self._frame_number = 0
        self._deliveries = 0
        self._undeliverable: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_cell(
        self,
        cell_id: str,
        arfcns: Tuple[int, ...] = (512, 514, 516, 518),
        cipher: CipherSuite = CipherSuite.A5_1,
    ) -> BaseStation:
        """Stand up a cell; cell ids must be unique."""
        if cell_id in self._cells:
            raise ValueError(f"cell {cell_id!r} already exists")
        station = BaseStation(cell_id=cell_id, arfcns=tuple(arfcns), cipher=cipher)
        self._cells[cell_id] = station
        return station

    def cell(self, cell_id: str) -> BaseStation:
        """Look a cell up by id."""
        return self._cells[cell_id]

    @property
    def cell_ids(self) -> Tuple[str, ...]:
        """All cell ids."""
        return tuple(self._cells)

    def provision_phone(
        self,
        msisdn: str,
        cell_id: str,
        preferred_tech: RadioTech = RadioTech.LTE,
        gsm_capable: bool = True,
    ) -> MobileStation:
        """Provision a SIM and camp the phone in ``cell_id``."""
        if cell_id not in self._cells:
            raise KeyError(f"no cell {cell_id!r}")
        if msisdn in self._phones:
            raise ValueError(f"{msisdn!r} already provisioned")
        self.directory.provision(msisdn)
        phone = MobileStation(
            msisdn=msisdn,
            cell_id=cell_id,
            preferred_tech=preferred_tech,
            gsm_capable=gsm_capable,
        )
        self._phones[msisdn] = phone
        return phone

    def phone(self, msisdn: str) -> MobileStation:
        """Look a phone up by number."""
        return self._phones[msisdn]

    def has_phone(self, msisdn: str) -> bool:
        """Whether a phone with this number is provisioned."""
        return msisdn in self._phones

    def move_phone(self, msisdn: str, cell_id: str) -> None:
        """Move a phone to another cell (the victim walks away)."""
        if cell_id not in self._cells:
            raise KeyError(f"no cell {cell_id!r}")
        self._phones[msisdn].cell_id = cell_id

    def phones_in_cell(self, cell_id: str) -> Tuple[MobileStation, ...]:
        """All phones currently camping in ``cell_id``."""
        return tuple(p for p in self._phones.values() if p.cell_id == cell_id)

    # ------------------------------------------------------------------
    # Jamming
    # ------------------------------------------------------------------

    def set_cell_jammed(self, cell_id: str, jammed: bool) -> None:
        """Mark 4G as jammed (or restored) in ``cell_id``."""
        if cell_id not in self._cells:
            raise KeyError(f"no cell {cell_id!r}")
        if jammed:
            self._jammed_cells.add(cell_id)
        else:
            self._jammed_cells.discard(cell_id)

    def is_cell_jammed(self, cell_id: str) -> bool:
        """Whether 4G is currently jammed in ``cell_id``."""
        return cell_id in self._jammed_cells

    def effective_tech(self, msisdn: str) -> RadioTech:
        """The technology a phone is actually using right now.

        LTE phones fall back to GSM when their cell's 4G is jammed (the
        LTE-redirection downgrade the paper cites); GSM-preferring phones
        are on GSM regardless.
        """
        phone = self._phones[msisdn]
        if phone.preferred_tech is RadioTech.GSM:
            return RadioTech.GSM
        if phone.cell_id in self._jammed_cells and phone.gsm_capable:
            return RadioTech.GSM
        return RadioTech.LTE

    # ------------------------------------------------------------------
    # Interception hooks (active MitM)
    # ------------------------------------------------------------------

    def set_interceptor(self, msisdn: str, handler: InterceptHandler) -> None:
        """Route ``msisdn``'s downlink SMS to ``handler``.

        Installed by a successful fake-base-station location update: the
        carrier now believes the victim is reachable at the attacker's fake
        terminal, so SMS goes there and the real victim sees nothing.
        """
        self._interceptors[msisdn] = handler

    def clear_interceptor(self, msisdn: str) -> None:
        """Remove an interception route (victim re-attaches legitimately)."""
        self._interceptors.pop(msisdn, None)

    def is_intercepted(self, msisdn: str) -> bool:
        """Whether an interception route is active for ``msisdn``."""
        return msisdn in self._interceptors

    # ------------------------------------------------------------------
    # SMS delivery
    # ------------------------------------------------------------------

    def attach_internet(self, internet: "Internet") -> None:
        """Wire this network in as ``internet``'s SMS gateway."""
        self._internet = internet
        internet.set_sms_gateway(self.as_sms_gateway())

    def as_sms_gateway(self) -> Callable[[str, str, str], None]:
        """Adapter matching the internet's gateway signature."""

        def gateway(phone: str, text: str, sender: str) -> None:
            self.deliver_sms(phone, text, sender)

        return gateway

    def deliver_sms(self, msisdn: str, text: str, sender: str) -> None:
        """Deliver one SMS to ``msisdn``.

        Unprovisioned numbers are recorded as undeliverable.  Intercepted
        numbers hand the message to the interceptor *instead of* the victim.
        GSM deliveries radiate events on the bus; LTE deliveries do not.
        """
        self._deliveries += 1
        interceptor = self._interceptors.get(msisdn)
        if interceptor is not None:
            interceptor(sender, text)
            return
        phone = self._phones.get(msisdn)
        if phone is None:
            self._undeliverable.append((msisdn, text))
            return
        if self.effective_tech(msisdn) is RadioTech.GSM:
            self._radiate(phone, sender, text)
        self._deliver_to_handset(msisdn, sender, text)

    def _radiate(self, phone: MobileStation, sender: str, text: str) -> None:
        station = self._cells[phone.cell_id]
        record = self.directory.by_msisdn(phone.msisdn)
        now = self.clock.now()
        self._frame_number += 1
        arfcn = self._rng.choice(station.arfcns)
        self.bus.publish(
            PagingEvent(
                cell_id=station.cell_id,
                arfcn=station.arfcns[0],
                at=now,
                tmsi=record.tmsi,
            )
        )
        pdu = encode_pdu(sender, text)
        session_key = self._rng.getrandbits(64)
        if station.cipher is CipherSuite.A5_1:
            ciphertext = A51Cipher.encrypt(session_key, self._frame_number, pdu)
        else:
            ciphertext = pdu
        self.bus.publish(
            SMSBurstEvent(
                cell_id=station.cell_id,
                arfcn=arfcn,
                at=now,
                tmsi=record.tmsi,
                cipher=station.cipher,
                frame_number=self._frame_number,
                ciphertext=ciphertext,
                session_key_escrow=session_key,
            )
        )

    def _deliver_to_handset(self, msisdn: str, sender: str, text: str) -> None:
        if self._internet is not None:
            self._internet.deliver_to_handset(msisdn, sender, text)

    @property
    def deliveries(self) -> int:
        """Total SMS deliveries attempted."""
        return self._deliveries

    @property
    def undeliverable(self) -> Tuple[Tuple[str, str], ...]:
        """(msisdn, text) pairs that had no provisioned phone."""
        return tuple(self._undeliverable)
