"""A5/1-structured stream cipher and the attacker's cracking model.

GSM encrypts the air interface with A5/1 (when it encrypts at all; the
paper notes "many GSM networks have no or weak data encryption").  We
implement the genuine A5/1 register structure -- three LFSRs of 19/22/23
bits with majority clocking -- at byte-stream granularity, which is enough
for the sniffer to have to *actually decrypt* captured bursts rather than
read plaintext out of a simulation object.

The published attacks (Barkan-Biham conditional estimators, the srlabs
rainbow tables the paper cites) recover the session key from known
plaintext in seconds-to-minutes with high probability.  :class:`CrackModel`
reproduces that interface: given a captured burst it either yields the
session key after a deterministic-random delay or fails, with
probability/latency parameters taken from the literature's ballpark.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Optional, Tuple

_R1_LEN, _R2_LEN, _R3_LEN = 19, 22, 23
_R1_TAPS = (13, 16, 17, 18)
_R2_TAPS = (20, 21)
_R3_TAPS = (7, 20, 21, 22)
_R1_CLOCK, _R2_CLOCK, _R3_CLOCK = 8, 10, 10


class CipherSuite(enum.Enum):
    """Air-interface encryption level of one cell."""

    #: No encryption at all -- still common per the paper.
    A5_0 = "A5/0"
    #: The weak standard cipher the published attacks break.
    A5_1 = "A5/1"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class A51Cipher:
    """A5/1 keystream generator over a 64-bit session key.

    The frame number (22 bits in real GSM) is mixed into the key loading so
    each burst gets a distinct keystream, as in the standard.
    """

    def __init__(self, session_key: int, frame_number: int = 0) -> None:
        if not 0 <= session_key < (1 << 64):
            raise ValueError("session key must be a 64-bit integer")
        self._r1 = 0
        self._r2 = 0
        self._r3 = 0
        self._load(session_key, frame_number & 0x3FFFFF)

    def _load(self, key: int, frame: int) -> None:
        for i in range(64):
            self._clock_all()
            bit = (key >> i) & 1
            self._r1 ^= bit
            self._r2 ^= bit
            self._r3 ^= bit
        for i in range(22):
            self._clock_all()
            bit = (frame >> i) & 1
            self._r1 ^= bit
            self._r2 ^= bit
            self._r3 ^= bit
        for _ in range(100):
            self._clock_majority()

    @staticmethod
    def _parity(value: int, taps: Tuple[int, ...]) -> int:
        bit = 0
        for tap in taps:
            bit ^= (value >> tap) & 1
        return bit

    def _clock_all(self) -> None:
        self._r1 = ((self._r1 << 1) | self._parity(self._r1, _R1_TAPS)) & (
            (1 << _R1_LEN) - 1
        )
        self._r2 = ((self._r2 << 1) | self._parity(self._r2, _R2_TAPS)) & (
            (1 << _R2_LEN) - 1
        )
        self._r3 = ((self._r3 << 1) | self._parity(self._r3, _R3_TAPS)) & (
            (1 << _R3_LEN) - 1
        )

    def _clock_majority(self) -> None:
        c1 = (self._r1 >> _R1_CLOCK) & 1
        c2 = (self._r2 >> _R2_CLOCK) & 1
        c3 = (self._r3 >> _R3_CLOCK) & 1
        majority = (c1 + c2 + c3) >= 2
        if c1 == majority:
            self._r1 = ((self._r1 << 1) | self._parity(self._r1, _R1_TAPS)) & (
                (1 << _R1_LEN) - 1
            )
        if c2 == majority:
            self._r2 = ((self._r2 << 1) | self._parity(self._r2, _R2_TAPS)) & (
                (1 << _R2_LEN) - 1
            )
        if c3 == majority:
            self._r3 = ((self._r3 << 1) | self._parity(self._r3, _R3_TAPS)) & (
                (1 << _R3_LEN) - 1
            )

    def _keystream_bit(self) -> int:
        self._clock_majority()
        return (
            ((self._r1 >> (_R1_LEN - 1)) & 1)
            ^ ((self._r2 >> (_R2_LEN - 1)) & 1)
            ^ ((self._r3 >> (_R3_LEN - 1)) & 1)
        )

    def keystream(self, nbytes: int) -> bytes:
        """Generate ``nbytes`` of keystream."""
        out = bytearray()
        for _ in range(nbytes):
            byte = 0
            for _ in range(8):
                byte = (byte << 1) | self._keystream_bit()
            out.append(byte)
        return bytes(out)

    @classmethod
    def encrypt(
        cls, session_key: int, frame_number: int, plaintext: bytes
    ) -> bytes:
        """XOR-encrypt ``plaintext`` under (key, frame)."""
        stream = cls(session_key, frame_number).keystream(len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    @classmethod
    def decrypt(
        cls, session_key: int, frame_number: int, ciphertext: bytes
    ) -> bytes:
        """Stream ciphers are symmetric; decryption is encryption."""
        return cls.encrypt(session_key, frame_number, ciphertext)


@dataclasses.dataclass(frozen=True)
class CrackResult:
    """Outcome of one key-recovery attempt."""

    success: bool
    session_key: Optional[int]
    elapsed: float


class CrackModel:
    """Known-plaintext A5/1 key recovery, rainbow-table style.

    Real table lookups succeed on roughly 90% of bursts and take tens of
    seconds on commodity hardware; both parameters are configurable.  The
    model *verifies* its answer: a "successful" crack returns the true
    session key only because the guess decrypts the known plaintext, so a
    caller cannot extract keys the model did not legitimately find.
    """

    def __init__(
        self,
        success_probability: float = 0.9,
        crack_seconds: float = 30.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= success_probability <= 1.0:
            raise ValueError("success_probability must be in [0, 1]")
        if crack_seconds < 0:
            raise ValueError("crack_seconds must be non-negative")
        self._p = success_probability
        self._seconds = crack_seconds
        self._rng = rng if rng is not None else random.Random(0)
        self._attempts = 0
        self._successes = 0

    @property
    def attempts(self) -> int:
        """Total crack attempts so far."""
        return self._attempts

    @property
    def successes(self) -> int:
        """Successful crack attempts so far."""
        return self._successes

    def attempt(
        self,
        true_key: int,
        frame_number: int,
        ciphertext: bytes,
        known_plaintext_prefix: bytes,
    ) -> CrackResult:
        """Try to recover the session key of one captured burst.

        ``known_plaintext_prefix`` models the predictable protocol framing
        that makes the known-plaintext attack work; a candidate key is
        accepted only if it decrypts the captured burst to that prefix.
        """
        self._attempts += 1
        elapsed = self._seconds * self._rng.uniform(0.6, 1.4)
        if self._rng.random() >= self._p:
            return CrackResult(success=False, session_key=None, elapsed=elapsed)
        decrypted = A51Cipher.decrypt(true_key, frame_number, ciphertext)
        if not decrypted.startswith(known_plaintext_prefix):
            return CrackResult(success=False, session_key=None, elapsed=elapsed)
        self._successes += 1
        return CrackResult(success=True, session_key=true_key, elapsed=elapsed)
