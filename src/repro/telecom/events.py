"""Over-the-air radio events and the bus sniffers tap.

Everything a base station transmits is an event on the cell's
:class:`EventBus`: paging requests (addressed by TMSI) and SMS bursts
(encrypted under the cell's cipher suite).  Passive attackers subscribe to
the bus; they see every event in their cell but only *capture* bursts on
frequencies they have a monitor tuned to -- that is the 16-C118 constraint
of the paper's rig.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List

from repro.telecom.cipher import CipherSuite


@dataclasses.dataclass(frozen=True)
class RadioEvent:
    """Base class for everything transmitted over the air in one cell."""

    cell_id: str
    arfcn: int
    at: float


@dataclasses.dataclass(frozen=True)
class PagingEvent(RadioEvent):
    """A paging request announcing downlink traffic for a TMSI."""

    tmsi: str


@dataclasses.dataclass(frozen=True)
class SMSBurstEvent(RadioEvent):
    """One SMS transmitted on a traffic channel.

    ``ciphertext`` is the over-the-air payload; under ``A5/0`` it equals the
    plaintext PDU.  ``frame_number`` and ``session_key_id`` identify the
    keystream; the true session key itself never rides on the event -- the
    sniffer must crack it via :class:`repro.telecom.cipher.CrackModel`.
    """

    tmsi: str
    cipher: CipherSuite
    frame_number: int
    ciphertext: bytes
    #: Simulation ground truth for the burst's session key.  ONLY
    #: :class:`repro.telecom.cipher.CrackModel` may consume this -- it stands
    #: in for the physics that make known-plaintext key recovery possible.
    #: Attack code reading it directly would be cheating the simulation.
    session_key_escrow: int = 0


#: PDU framing prepended to every SMS payload before encryption.  Its
#: predictability is what gives the known-plaintext attack its foothold.
PDU_HEADER = b"\x00\x91SMSC"


def encode_pdu(sender: str, text: str) -> bytes:
    """Encode an SMS into the (simplified) over-the-air PDU."""
    return PDU_HEADER + f"|{sender}|{text}".encode("utf-8")


def decode_pdu(pdu: bytes) -> tuple:
    """Decode a PDU back into ``(sender, text)``.

    Raises :class:`ValueError` when the framing is absent -- which is how a
    sniffer discovers that its key guess (or an unencrypted read of an
    encrypted burst) is garbage.
    """
    if not pdu.startswith(PDU_HEADER):
        raise ValueError("not a valid SMS PDU")
    body = pdu[len(PDU_HEADER):].decode("utf-8", errors="strict")
    _, sender, text = body.split("|", 2)
    return sender, text


class EventBus:
    """Per-network pub/sub channel for radio events."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[RadioEvent], None]] = []
        self._published = 0

    def subscribe(self, callback: Callable[[RadioEvent], None]) -> None:
        """Register a listener for every subsequent event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[RadioEvent], None]) -> None:
        """Remove a listener; unknown listeners are ignored."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def publish(self, event: RadioEvent) -> None:
        """Deliver ``event`` to all current subscribers."""
        self._published += 1
        for callback in list(self._subscribers):
            callback(event)

    @property
    def published_count(self) -> int:
        """Total events published."""
        return self._published
