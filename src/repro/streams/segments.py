"""Segmented, delta-maintained couple/weak-edge streams.

One **segment** is one service's contribution to a record stream, in the
engine's canonical enumeration order: for the ``"couples"`` kind, the
service's Couple File records (Definition 3); for ``"weak_edges"``, its
distinct ``(provider, service)`` weak-directivity edges in discovery
order.  The full stream is the concatenation of segments in graph
insertion order -- exactly what the pre-segment generators produced --
so every consumer (cursor pages, ``weak_edges()``, the differential
suites) sees an unchanged sequence.

What changes is the cost model under mutations:

- **Segments are lazy and survive deltas.**  A segment buffers only the
  records a consumer has actually drained (a page into a 20k-record
  service pulls a page, not the service); the buffer and its generator
  are memoized and *kept* when mutations land elsewhere.  A mutation
  dirties only the segments of services inside its reach -- touched
  services, demanders of factors whose provider postings moved, and
  consumers of changed linked-account names: the same reverse-dependency
  cone
  :meth:`~repro.core.tdg.TransformationDependencyGraph.invalidate_after_delta`
  walks for the per-service couple memos, which the dynamic differential
  suite has locked as sound since the incremental engine landed.  A
  *clean* segment's generator may safely resume after a delta: cone
  soundness means none of its inputs (its service's coverage splits, its
  signatures' member postings) moved.  Dirt accumulates lazily
  (:meth:`RecordStreamEngine.note_delta`) and is flushed on the next
  read, so a mutation burst costs one splice.
- **Dirty segments re-derive from the per-signature postings.**  Segment
  recomputation drives the graph's memoized signature member sets
  (shared by every service on the same residual-factor signature), so a
  post-mutation page touches O(dirty segments + affected signatures)
  work instead of re-enumerating every signature from service zero.
- **Cursors carry a segment watermark.**  A page's ``next_cursor`` is a
  :class:`StreamCursor` token ``"{ordinal}:{offset}"``: every segment
  with a smaller service ordinal is fully drained, ``offset`` records of
  the watermark segment are consumed.  Ordinals are monotone across
  mutations (:meth:`~repro.core.index.EcosystemIndex.ordinal_of`), so a
  consumer interrupted by a mutation resumes exactly where it stopped:
  drained segments are never re-emitted or re-enumerated, segments still
  ahead are served in their *current* (post-mutation) state, and only a
  mutation that rewrites the partially-drained segment itself can move
  records under the cursor.

Memory: segments persist for whatever a consumer has actually drained
(that is the warm-serving contract), bounded by a per-store record
budget (:data:`MAX_BUFFERED_RECORDS`, least-recently-read segments
evicted first), and are dropped when their service leaves the cone of a
delta or the graph.  Weak-edge segments hold only distinct edges;
couple segments hold the records a paging client was going to receive
anyway.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.model.factors import CredentialFactor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import EcosystemIndex
    from repro.core.tdg import TransformationDependencyGraph

__all__ = ["RecordStreamEngine", "StreamCursor"]

#: The stream kinds the engine maintains segments for.
STREAM_KINDS = ("couples", "weak_edges")

#: Soft bound on buffered records per (kind, max_size) store.  The
#: Couple File is the pipeline's output bound (~200k records at 201
#: services); segments beyond this budget evict least-recently-read
#: first, so an output-bound full scan cannot grow the memo without
#: limit while the serving window (the pages consumers actually resume
#: into) stays memoized.  Eviction never affects correctness -- a
#: re-read segment re-derives from the same per-signature postings.
MAX_BUFFERED_RECORDS = 200_000


@dataclasses.dataclass(frozen=True)
class StreamCursor:
    """A segment watermark: where in the stream a consumer stands.

    ``ordinal`` names the segment being drained (the service's monotone
    insertion ordinal); ``offset`` counts records already consumed within
    it.  Every segment with a smaller ordinal is fully drained.  Tokens
    serialize as ``"{ordinal}:{offset}"`` -- the string the API layer
    hands out as ``next_cursor`` and accepts back on any later session
    version.
    """

    ordinal: int
    offset: int

    def token(self) -> str:
        return f"{self.ordinal}:{self.offset}"

    @classmethod
    def parse(cls, token: str) -> "StreamCursor":
        """Inverse of :meth:`token`; raises ``ValueError`` on garbage."""
        head, sep, tail = token.partition(":")
        if not sep:
            raise ValueError(f"malformed stream cursor {token!r}")
        try:
            ordinal, offset = int(head), int(tail)
        except ValueError:
            raise ValueError(f"malformed stream cursor {token!r}") from None
        if ordinal < 0 or offset < 0:
            raise ValueError(f"negative stream cursor {token!r}")
        return cls(ordinal=ordinal, offset=offset)


class _Segment:
    """One service's lazily-buffered record segment."""

    __slots__ = ("items", "iterator", "exhausted")

    def __init__(self, iterator: Iterator[Any]) -> None:
        self.items: List[Any] = []
        self.iterator = iterator
        self.exhausted = False

    def extend_to(self, count: int) -> None:
        """Pull records until ``count`` are buffered or the segment ends."""
        while not self.exhausted and len(self.items) < count:
            try:
                self.items.append(next(self.iterator))
            except StopIteration:
                self.exhausted = True


class RecordStreamEngine:
    """Delta-maintained record segments for one graph's streams.

    Built lazily by
    :meth:`~repro.core.tdg.TransformationDependencyGraph.streams_engine`;
    graphs that never stream never pay for it.  Deltas arrive through
    :meth:`note_delta` (routed by the graph's ``invalidate_after_delta``,
    exactly like the level engine's) and are absorbed lazily: the next
    read resolves the accumulated scope against the *current*
    reverse-dependency postings and drops only the dirty segments.
    """

    def __init__(self, graph: "TransformationDependencyGraph") -> None:
        self._graph = graph
        #: (kind, max_size) -> service -> lazily-buffered segment, in
        #: least-recently-read-first order (the eviction order).
        self._segments: Dict[
            Tuple[str, int], "OrderedDict[str, _Segment]"
        ] = {}
        # Pending (unflushed) delta scope, in the level engine's shape.
        self._pending_touched: Set[str] = set()
        self._pending_factors: Set[CredentialFactor] = set()
        self._pending_names: Set[str] = set()
        # Observability: segments started vs served from memo vs dropped
        # by deltas -- what the perf tests pin the splice contract on.
        # Registry children on the graph's shared handle; ``stats()`` is
        # the thin view over them.
        obs = graph.instrumentation()
        label = graph.instrumentation_label()

        def _counter(name: str, help_: str):
            return obs.counter(
                f"repro_stream_segments_{name}_total",
                help_,
                labels=("attacker",),
            ).labels(attacker=label)

        self._computed = _counter(
            "computed", "Stream segments freshly started (generator built)."
        )
        self._reused = _counter(
            "reused", "Stream segment reads served from the memo."
        )
        self._invalidated = _counter(
            "invalidated", "Stream segments dropped by a delta's dirty cone."
        )

    # ------------------------------------------------------------------
    # Delta intake (lazy: reads flush)
    # ------------------------------------------------------------------

    def note_delta(
        self,
        touched_services: FrozenSet[str],
        affected_factors: FrozenSet[CredentialFactor],
        combining_factors: FrozenSet[CredentialFactor],
        changed_names: FrozenSet[str],
    ) -> None:
        """Record one delta's scope; the next read absorbs the union."""
        self._pending_touched |= touched_services
        self._pending_factors |= affected_factors | combining_factors
        self._pending_names |= changed_names

    def _flush(self) -> None:
        """Drop exactly the segments the accumulated deltas can reach.

        A segment depends on its service's own coverage splits (touched
        services), the member-set postings of every residual signature
        its paths demand (demanders of affected factors, which also
        covers combining/masked-view changes), and -- for linked-account
        paths -- the node-set membership of accepted providers (linked
        consumers of changed names).  That is the same cone the graph
        pops its per-service couple memos along, resolved against the
        post-delta postings.
        """
        if not (
            self._pending_touched
            or self._pending_factors
            or self._pending_names
        ):
            return
        touched = self._pending_touched
        factors = self._pending_factors
        names = self._pending_names
        self._pending_touched = set()
        self._pending_factors = set()
        self._pending_names = set()
        if not self._segments:
            return
        eco = self._graph.ecosystem_index()
        dirty: Set[str] = set(touched)
        for factor in factors:
            dirty |= eco.demanders(factor)
        for name in names:
            dirty |= eco.linked_consumers_of(name)
        dropped = 0
        for store in self._segments.values():
            for service in dirty:
                if store.pop(service, None) is not None:
                    dropped += 1
        if dropped:
            self._invalidated.inc(dropped)

    # ------------------------------------------------------------------
    # Segment derivation
    # ------------------------------------------------------------------

    def _segment(self, kind: str, max_size: int, service: str) -> _Segment:
        """One service's segment, from the memo or freshly started.

        A fresh segment's generator drives the graph's per-signature
        member-set postings (and replays its per-service Couple File
        memo when warm), so a re-derived segment costs its own
        signatures, never the graph's -- and only for as many records as
        consumers actually pull.
        """
        store = self._segments.setdefault((kind, max_size), OrderedDict())
        segment = store.get(service)
        if segment is not None:
            self._reused.inc()
            store.move_to_end(service)
            return segment
        self._computed.inc()
        if kind == "couples":
            iterator = self._graph._service_couple_records(service, max_size)
        else:
            iterator = self._weak_iter(max_size, service)
        segment = _Segment(iterator)
        self._trim(store)
        store[service] = segment
        return segment

    @staticmethod
    def _trim(store: "OrderedDict[str, _Segment]") -> None:
        """Evict least-recently-read segments past the record budget.

        Called before admitting a new segment, so an output-bound full
        scan holds a sliding window instead of the whole stream.  Live
        iterators keep their own segment references, so eviction only
        drops the memo slot -- never records mid-walk.
        """
        buffered = sum(len(segment.items) for segment in store.values())
        while buffered > MAX_BUFFERED_RECORDS and len(store) > 1:
            _service, evicted = store.popitem(last=False)
            buffered -= len(evicted.items)

    def _weak_iter(
        self, max_size: int, service: str
    ) -> Iterator[Tuple[str, str]]:
        """Distinct weak edges of one service, in discovery order.

        Enumerates the couple records transiently (replaying the graph's
        per-service memo when warm), so weak-only consumers never buy
        couple-record storage.
        """
        yielded: Set[str] = set()
        for record in self._graph._service_couple_records(service, max_size):
            # providers is a frozenset; sort so discovery order is a pure
            # function of the record sequence, not the process hash seed
            # (the CLI's differential suite pins these bytes cross-process).
            for provider in sorted(record.providers):
                if provider not in yielded:
                    yielded.add(provider)
                    yield (provider, service)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def iter_records(self, kind: str, max_size: int = 3) -> Iterator[Any]:
        """The full stream, segment by segment in graph order.

        Backs ``iter_couples`` / ``iter_weak_edges``: identical sequence
        to the pre-segment generators, but segments consumed once are
        memoized, so a repeat scan after a mutation re-derives only the
        dirty ones.
        """
        self._flush()
        store = self._segments.setdefault((kind, max_size), OrderedDict())
        for name in self._graph.ecosystem_index().names:
            segment = self._segment(kind, max_size, name)
            position = 0
            while True:
                segment.extend_to(position + 1)
                if position >= len(segment.items):
                    break
                yield segment.items[position]
                position += 1
            # Drained segments count against the record budget too, not
            # just freshly-admitted ones: an output-bound full scan
            # keeps a sliding window, never the whole stream.
            self._trim(store)

    def page(
        self,
        kind: str,
        max_size: int,
        cursor: Union[int, str, StreamCursor],
        page_size: int,
    ) -> Tuple[Tuple[Any, ...], Optional[str]]:
        """One page of the stream plus the watermark of the next.

        ``cursor`` is either a flat integer offset (``0`` = start; legacy
        spelling, counted over the current version's stream) or a
        watermark token from a previous page's ``next_cursor``.  Tokens
        are the stable form: they skip straight to the watermark segment
        -- never re-walking drained ones -- and stay valid across
        mutations.  The returned ``next_cursor`` is always a token, or
        ``None`` when the stream is exhausted.
        """
        self._flush()
        eco = self._graph.ecosystem_index()
        if isinstance(cursor, str):
            cursor = StreamCursor.parse(cursor)
        if isinstance(cursor, StreamCursor):
            watermark, start_offset, skip = cursor.ordinal, cursor.offset, 0
        else:
            watermark, start_offset, skip = -1, 0, int(cursor)
        records: List[Any] = []
        for name in eco.names:
            ordinal = eco.ordinal_of(name)
            if ordinal < watermark:
                continue
            segment = self._segment(kind, max_size, name)
            begin = start_offset if ordinal == watermark else 0
            if skip:
                segment.extend_to(begin + skip + 1)
                if len(segment.items) <= begin + skip:
                    skip -= max(0, len(segment.items) - begin)
                    continue
                begin += skip
                skip = 0
            # +1 lookahead: distinguishes "page ended mid-segment" from
            # "segment drained" without materializing past the page.
            need = page_size - len(records)
            segment.extend_to(begin + need + 1)
            chunk = segment.items[begin : begin + need]
            records.extend(chunk)
            tail = begin + len(chunk)
            if len(records) == page_size:
                if len(segment.items) > tail:
                    next_token = StreamCursor(ordinal, tail).token()
                else:
                    next_token = self._next_nonempty_after(
                        kind, max_size, ordinal, eco
                    )
                self._trim(self._segments[(kind, max_size)])
                return tuple(records), next_token
        store = self._segments.get((kind, max_size))
        if store is not None:
            self._trim(store)
        return tuple(records), None

    def _next_nonempty_after(
        self,
        kind: str,
        max_size: int,
        ordinal: int,
        eco: "EcosystemIndex",
    ) -> Optional[str]:
        """Watermark of the first non-empty segment past ``ordinal``, or
        ``None`` when the page that just filled was also the last record
        (the one-record lookahead that keeps final pages from trailing an
        empty page)."""
        for name in eco.names:
            candidate = eco.ordinal_of(name)
            if candidate <= ordinal:
                continue
            segment = self._segment(kind, max_size, name)
            segment.extend_to(1)
            if segment.items:
                return StreamCursor(candidate, 0).token()
        return None

    # ------------------------------------------------------------------
    # Introspection (differential suites and observability)
    # ------------------------------------------------------------------

    def segment_snapshot(
        self, kind: str, max_size: int = 3
    ) -> Dict[str, Tuple[Any, ...]]:
        """Every materialized segment of one stream, fully drained
        (post-flush) -- what the differential suite compares against a
        scratch rebuild.  A test hook: draining every started segment is
        exactly what serving avoids."""
        self._flush()
        store = self._segments.get((kind, max_size), {})
        snapshot: Dict[str, Tuple[Any, ...]] = {}
        for service, segment in store.items():
            while not segment.exhausted:
                segment.extend_to(len(segment.items) + 1024)
            snapshot[service] = tuple(segment.items)
        return snapshot

    def stats(self) -> Dict[str, int]:
        """Started / memo-served / delta-dropped segment counters (a thin
        view over the ``repro_stream_segments_*_total`` registry
        children)."""
        return {
            "segments": sum(len(s) for s in self._segments.values()),
            "computed": int(self._computed.value),
            "reused": int(self._reused.value),
            "invalidated": int(self._invalidated.value),
        }
