"""Versioned incremental record streams over the TDG's couple machinery.

The Couple File and the weak-edge family are the pipeline's output-bound
artifacts: at paper scale they dwarf every other result (~200k records at
201 services), and at the 1000-service tier they are the reason a mixed
query batch re-served after a mutation used to cost seconds -- the old
stream cursors were plain iterators pinned to one session version, so
every mutation threw the whole enumeration away and the next page
re-derived every service's member sets from scratch.

This package makes the streams themselves incremental:

:mod:`repro.streams.segments`
    :class:`RecordStreamEngine` -- one memoized record **segment** per
    (service, stream kind); a mutation dirties only the segments inside
    its cone (the same reverse-dependency cone the graph's memo
    invalidation walks), and the next read splices the surviving
    segments around re-derived dirty ones.  :class:`StreamCursor` -- the
    segment watermark a cursor page hands back, built on the ecosystem
    index's monotone service ordinals so pagination *resumes across
    versions* without re-enumerating (or re-emitting) drained segments.

The engine is owned per graph
(:meth:`~repro.core.tdg.TransformationDependencyGraph.streams_engine`)
and fed by the same delta notifications as the level engine;
``tests/test_dynamic_equivalence.py`` locks the spliced streams
bit-for-bit (order included) against scratch rebuilds after every
mutation.
"""

from repro.streams.segments import RecordStreamEngine, StreamCursor

__all__ = ["RecordStreamEngine", "StreamCursor"]
