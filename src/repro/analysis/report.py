"""One-call markdown report over a full ActFort analysis.

The paper frames ActFort's Strategy Output as something service providers
query; :func:`full_report` is the provider-facing artifact: a single
markdown document with the measurement tables, dependency levels, insight
verdicts, and the most exposed services.
"""

from __future__ import annotations

from typing import List

from repro.analysis.figures import (
    dependency_level_rows,
    fig3_rows,
    table1_rows,
)
from repro.analysis.insights import compute_insights
from repro.analysis.measurement import aggregate_reports
from repro.core.actfort import ActFort


def _md_table(headers: List[str], rows: List[tuple]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def full_report(actfort: ActFort, title: str = "Online Account Ecosystem audit") -> str:
    """Render the complete analysis as a markdown document."""
    tdg = actfort.tdg()
    results = aggregate_reports(
        actfort.auth_reports, actfort.collection_reports, tdg
    )
    closure = actfort.potential_victims()

    sections: List[str] = [f"# {title}", ""]
    sections.append(
        f"- services analyzed: **{results.service_count}**\n"
        f"- authentication paths: **{results.total_auth_paths}** "
        f"({results.distinct_path_signatures} distinct factor signatures)\n"
        f"- potential account victims under the assumed attacker: "
        f"**{len(closure.compromised)}/{results.service_count}**\n"
        f"- fringe (SMS-only) services: **{len(tdg.fringe_nodes())}**"
    )

    sections.append("\n## Authentication process (Fig. 3)")
    sections.append(
        _md_table(["metric", "platform", "measured", "paper"], fig3_rows(results))
    )

    sections.append("\n## Information exposure (Table I)")
    sections.append(
        _md_table(
            ["kind", "web %", "paper", "mobile %", "paper"],
            table1_rows(results),
        )
    )

    sections.append("\n## Dependency levels (Section IV-B)")
    sections.append(
        _md_table(
            ["level", "web %", "paper", "mobile %", "paper"],
            dependency_level_rows(results),
        )
    )

    sections.append("\n## Key insights")
    for check in compute_insights(actfort):
        verdict = "HOLDS" if check.holds else "FAILS"
        sections.append(f"- **{check.title}** — {verdict}. {check.evidence}")

    sections.append("\n## Most dangerous information sources")
    # One full-capacity-parents pass per service, then invert to children
    # counts (how many services each node fully unlocks).
    children_count = {node.service: 0 for node in tdg.nodes}
    for node in tdg.nodes:
        for parent in tdg.full_capacity_parents(node.service):
            children_count[parent] += 1
    domains = {node.service: node.domain for node in tdg.nodes}
    top = sorted(children_count.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    rows = [(name, domains[name], count) for name, count in top]
    sections.append(
        _md_table(["service", "domain", "services it fully unlocks"], rows)
    )
    return "\n".join(sections) + "\n"
