"""The measurement study of Section IV.

:class:`MeasurementStudy` evaluates ActFort over an ecosystem -- either
from static profiles (fast; the default for the 201-service catalog) or by
black-box probing a deployed internet (faithful; used by the integration
tests) -- and aggregates every statistic the paper reports.

The study is a thin client of the :class:`~repro.api.AnalysisService`
facade: every ``run_*`` entry point builds (or adopts) a service and
issues a :class:`~repro.api.MeasurementQuery`, so measurement shares the
facade's version-keyed result cache, warm level-engine fixpoints, and
batch planning.  The entry points are kept as delegating shims for
compatibility; new code should talk to the facade directly.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.actfort import ActFort
from repro.core.authproc import aggregate_path_statistics
from repro.core.collection import exposure_table
from repro.core.tdg import DependencyLevel
from repro.model.account import AuthPurpose, PathType
from repro.model.attacker import AttackerProfile
from repro.model.factors import CredentialFactor
from repro.model.ecosystem import Ecosystem
from repro.model.factors import PersonalInfoKind, Platform
from repro.utils.serialization import (
    enum_keyed_dict,
    enum_keyed_from_dict,
    level_map_from_dict,
    level_map_to_dict,
    platform_map_from_dict,
    platform_map_to_dict,
)
from repro.websim.internet import Internet


@dataclasses.dataclass(frozen=True)
class MeasurementResults:
    """Everything Section IV reports, as data."""

    service_count: int
    total_auth_paths: int
    distinct_path_signatures: int
    #: Fig. 3 aggregates per platform (see ``aggregate_path_statistics``).
    fig3: Mapping[Platform, Mapping[str, float]]
    #: Table I per platform: kind -> fraction of services exposing it.
    table1: Mapping[Platform, Mapping[PersonalInfoKind, float]]
    #: Section IV-B dependency-level fractions per platform.
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]]

    def summary_lines(self) -> List[str]:
        """Compact text summary used by examples and benches."""
        lines = [
            f"services analyzed: {self.service_count}",
            f"authentication paths: {self.total_auth_paths} "
            f"({self.distinct_path_signatures} distinct factor signatures)",
        ]
        for platform, stats in self.fig3.items():
            lines.append(
                f"[{platform.value}] SMS-only sign-in "
                f"{100 * stats['sms_only_signin']:.1f}% vs reset "
                f"{100 * stats['sms_only_reset']:.1f}%; SMS anywhere "
                f"{100 * stats['uses_sms_anywhere']:.1f}%"
            )
        for platform, fractions in self.dependency.items():
            rendered = ", ".join(
                f"{level.value}={100 * fraction:.2f}%"
                for level, fraction in fractions.items()
            )
            lines.append(f"[{platform.value}] {rendered}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """Wire-ready document (enums as value strings)."""
        return {
            "service_count": self.service_count,
            "total_auth_paths": self.total_auth_paths,
            "distinct_path_signatures": self.distinct_path_signatures,
            "fig3": platform_map_to_dict(self.fig3),
            "table1": platform_map_to_dict(
                self.table1, lambda by_kind: enum_keyed_dict(by_kind)
            ),
            "dependency": level_map_to_dict(self.dependency),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "MeasurementResults":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(
            service_count=document["service_count"],
            total_auth_paths=document["total_auth_paths"],
            distinct_path_signatures=document["distinct_path_signatures"],
            fig3=platform_map_from_dict(document["fig3"], dict),
            table1=platform_map_from_dict(
                document["table1"],
                lambda by_kind: enum_keyed_from_dict(
                    by_kind, PersonalInfoKind, float
                ),
            ),
            dependency=level_map_from_dict(document["dependency"]),
        )


def aggregate_reports(
    auth_reports, collection_reports, tdg
) -> MeasurementResults:
    """Aggregate stage-1/2 reports plus one graph into Section IV's
    statistics.

    This is the measurement *engine* -- the one place the aggregation
    happens.  The :class:`~repro.api.AnalysisService` facade calls it for
    :class:`~repro.api.MeasurementQuery`; the :class:`MeasurementStudy`
    shims reach it through the facade.
    """
    fig3: Dict[Platform, Mapping[str, float]] = {}
    table1: Dict[Platform, Mapping[PersonalInfoKind, float]] = {}
    for platform in (Platform.WEB, Platform.MOBILE):
        fig3[platform] = aggregate_path_statistics(auth_reports, platform)
        table1[platform] = exposure_table(collection_reports, platform)
    # One batch call through the level engine: both platforms share
    # the same warm depth fixpoints (and, in session mode, whatever
    # classification entries survived the last delta).
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]] = (
        tdg.levels_report((Platform.WEB, Platform.MOBILE))
    )

    total_paths = sum(len(r.paths()) for r in auth_reports.values())
    signatures = sum(
        r.distinct_path_signatures for r in auth_reports.values()
    )
    return MeasurementResults(
        service_count=len(auth_reports),
        total_auth_paths=total_paths,
        distinct_path_signatures=signatures,
        fig3=fig3,
        table1=table1,
        dependency=dependency,
    )


class MeasurementAggregator:
    """Section IV's aggregation as an incrementally-maintained view.

    :func:`aggregate_reports` is a pure fold over per-service report
    facts: every Fig. 3 fraction is a count of services satisfying a
    per-service predicate, Table I is a count per (platform, kind), and
    the path totals are sums.  This class keeps exactly those counters
    and updates them per service when a mutation refreshes that
    service's stage-1/2 reports -- fold the old report's facts out, fold
    the new report's in -- so re-measuring after a mutation costs
    O(touched services) instead of the full O(ecosystem) re-aggregation.
    :meth:`results` then divides the counters (the same integer
    divisions the scratch fold performs, so results are equal
    *exactly*, float for float; ``tests/test_api_service.py`` locks this
    against :func:`aggregate_reports` under mutation streams).

    Owned lazily by
    :class:`~repro.dynamic.session.DynamicAnalysisSession`; the
    :class:`~repro.api.AnalysisService` facade serves
    :class:`~repro.api.MeasurementQuery` through it.
    """

    _PLATFORMS = (Platform.WEB, Platform.MOBILE)

    def __init__(self, auth_reports, collection_reports) -> None:
        self._path_types = tuple(PathType)
        self._service_count = 0
        self._total_paths = 0
        self._signatures = 0
        #: platform -> [n, sms_signin, sms_reset, uses_sms, extra_info,
        #: platform path total, then one count per path type].
        self._auth: Dict[Platform, List[int]] = {
            platform: [0] * (6 + len(self._path_types))
            for platform in self._PLATFORMS
        }
        #: platform -> [n, then one exposure count per info kind].
        self._exposure: Dict[Platform, List[int]] = {
            platform: [0] * (1 + len(PersonalInfoKind))
            for platform in self._PLATFORMS
        }
        self._kinds = tuple(PersonalInfoKind)
        for name in auth_reports:
            self.update(
                name,
                None,
                auth_reports[name],
                None,
                collection_reports.get(name),
            )

    # -- per-service facts (the predicates of aggregate_reports) --------

    def _fold_auth(self, report, platform: Platform, sign: int) -> None:
        paths = [p for p in report.paths() if p.platform is platform]
        if not paths:
            return
        counters = self._auth[platform]
        counters[0] += sign
        if report.has_sms_only_path(platform, AuthPurpose.SIGN_IN):
            counters[1] += sign
        if report.has_sms_only_path(platform, AuthPurpose.PASSWORD_RESET):
            counters[2] += sign
        if any(CredentialFactor.SMS_CODE in p.factors for p in paths):
            counters[3] += sign
        if all(p.path_type is not PathType.GENERAL for p in paths):
            counters[4] += sign
        counters[5] += sign * len(paths)
        for path in paths:
            counters[6 + self._path_types.index(path.path_type)] += sign

    def _fold_exposure(self, report, platform: Platform, sign: int) -> None:
        if report is None:
            return
        if not any(item.platform is platform for item in report.items):
            return
        counters = self._exposure[platform]
        counters[0] += sign
        kinds = report.kinds_on(platform)
        for index, kind in enumerate(self._kinds):
            if kind in kinds:
                counters[1 + index] += sign

    def update(
        self, name: str, old_auth, new_auth, old_collection, new_collection
    ) -> None:
        """Fold one service's report change into the counters.

        ``old_* is None`` means an addition, ``new_* is None`` a removal;
        both present is a replacement.  The session calls this for
        exactly the services a delta touched.
        """
        del name  # counters are anonymous; the argument documents intent
        for report, sign in ((old_auth, -1), (new_auth, +1)):
            if report is None:
                continue
            self._service_count += sign
            self._total_paths += sign * len(report.paths())
            self._signatures += sign * report.distinct_path_signatures
            for platform in self._PLATFORMS:
                self._fold_auth(report, platform, sign)
        for report, sign in ((old_collection, -1), (new_collection, +1)):
            for platform in self._PLATFORMS:
                self._fold_exposure(report, platform, sign)

    # -- snapshot wire form ---------------------------------------------

    def counters_to_dict(self) -> Dict[str, object]:
        """The fold state as a plain document (session snapshots carry
        this so a restored worker re-measures without an O(ecosystem)
        refold)."""
        return {
            "service_count": self._service_count,
            "total_paths": self._total_paths,
            "signatures": self._signatures,
            "auth": {
                platform.value: list(self._auth[platform])
                for platform in self._PLATFORMS
            },
            "exposure": {
                platform.value: list(self._exposure[platform])
                for platform in self._PLATFORMS
            },
        }

    @classmethod
    def from_counters(cls, document) -> "MeasurementAggregator":
        """Inverse of :meth:`counters_to_dict`: a view with the recorded
        integer counters and no reports folded (the counters *are* the
        fold)."""
        view = cls({}, {})
        view._service_count = document["service_count"]
        view._total_paths = document["total_paths"]
        view._signatures = document["signatures"]
        for platform in cls._PLATFORMS:
            view._auth[platform][:] = document["auth"][platform.value]
            view._exposure[platform][:] = document["exposure"][platform.value]
        return view

    # -- read side -------------------------------------------------------

    def _fig3(self, platform: Platform) -> Dict[str, float]:
        counters = self._auth[platform]
        n = counters[0]
        if not n:
            raise ValueError(f"no services on platform {platform}")
        total_paths = counters[5]
        by_type = {
            path_type: counters[6 + index]
            for index, path_type in enumerate(self._path_types)
        }
        return {
            "services": float(n),
            "sms_only_signin": counters[1] / n,
            "sms_only_reset": counters[2] / n,
            "uses_sms_anywhere": counters[3] / n,
            "extra_info_required": counters[4] / n,
            "general_share": by_type[PathType.GENERAL] / total_paths,
            "info_share": by_type[PathType.INFO] / total_paths,
            "unique_share": by_type[PathType.UNIQUE] / total_paths,
            "total_paths": float(total_paths),
        }

    def _table1(self, platform: Platform) -> Dict[PersonalInfoKind, float]:
        counters = self._exposure[platform]
        n = counters[0]
        if not n:
            raise ValueError(f"no services observed on {platform}")
        return {
            kind: counters[1 + index] / n
            for index, kind in enumerate(self._kinds)
        }

    def results(self, tdg) -> MeasurementResults:
        """The full Section IV payload at the current counters, with the
        dependency fractions served by ``tdg``'s (incrementally
        maintained) level engine."""
        fig3 = {platform: self._fig3(platform) for platform in self._PLATFORMS}
        table1 = {
            platform: self._table1(platform) for platform in self._PLATFORMS
        }
        dependency = tdg.levels_report(self._PLATFORMS)
        return MeasurementResults(
            service_count=self._service_count,
            total_auth_paths=self._total_paths,
            distinct_path_signatures=self._signatures,
            fig3=fig3,
            table1=table1,
            dependency=dependency,
        )


class MeasurementStudy:
    """Runs the full Section IV measurement over one ecosystem."""

    def __init__(self, attacker: Optional[AttackerProfile] = None) -> None:
        self._attacker = attacker if attacker is not None else AttackerProfile.baseline()

    def run_on_ecosystem(self, ecosystem: Ecosystem) -> MeasurementResults:
        """Profile-mode measurement (no live services needed).

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import AnalysisService, MeasurementQuery

        warnings.warn(
            "MeasurementStudy.run_on_ecosystem is a delegating shim; query the "
            "repro.api.AnalysisService facade (MeasurementQuery) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        service = AnalysisService(ecosystem, attacker=self._attacker)
        return service.execute(MeasurementQuery())

    def run_on_internet(self, internet: Internet) -> MeasurementResults:
        """Probe-mode measurement against deployed services.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import AnalysisService, MeasurementQuery

        warnings.warn(
            "MeasurementStudy.run_on_internet is a delegating shim; query the "
            "repro.api.AnalysisService facade (MeasurementQuery) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        service = AnalysisService.from_internet(
            internet, attacker=self._attacker
        )
        return service.execute(MeasurementQuery())

    def run_actfort(self, actfort: ActFort) -> MeasurementResults:
        """Aggregate a pre-built ActFort instance.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import AnalysisService, MeasurementQuery

        warnings.warn(
            "MeasurementStudy.run_actfort is a delegating shim; query the "
            "repro.api.AnalysisService facade (MeasurementQuery) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        return AnalysisService.from_actfort(actfort).execute(
            MeasurementQuery()
        )

    def run_batch(
        self,
        ecosystem: Ecosystem,
        attackers: Iterable[AttackerProfile],
    ) -> Tuple[MeasurementResults, ...]:
        """Measure several attacker profiles over one ecosystem at once.

        One facade is built for all profiles -- stage-1/2 reports and the
        attacker-independent ecosystem index are shared across the labels
        by the backing session -- and the per-profile measurements run as
        one planned batch.  Results are returned in ``attackers`` order.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import AnalysisService, MeasurementQuery

        warnings.warn(
            "MeasurementStudy.run_batch is a delegating shim; query the "
            "repro.api.AnalysisService facade (MeasurementQuery) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        profiles = {
            f"attacker_{index}": profile
            for index, profile in enumerate(attackers)
        }
        if not profiles:
            return ()
        service = AnalysisService(ecosystem, attackers=profiles)
        return service.execute_batch(
            [MeasurementQuery(attacker=label) for label in profiles]
        )

    def run_session(
        self, session, attacker: Optional[str] = None
    ) -> MeasurementResults:
        """Incremental re-aggregation over a live dynamic session.

        ``session`` is a
        :class:`~repro.dynamic.session.DynamicAnalysisSession`: its
        stage-1/2 reports and indexed graph are maintained per mutation
        delta, so re-measuring after a mutation costs only this O(services)
        aggregation plus whatever memoized graph state the delta actually
        invalidated -- never a pipeline rebuild.  ``attacker`` selects one
        of the session's attacker labels (default: the session's first);
        the study's own attacker profile is not consulted, since the
        session already fixed its profiles at construction.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import AnalysisService, MeasurementQuery

        warnings.warn(
            "MeasurementStudy.run_session is a delegating shim; query the "
            "repro.api.AnalysisService facade (MeasurementQuery) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        service = AnalysisService.from_session(session)
        return service.execute(MeasurementQuery(attacker=attacker))
