"""The measurement study of Section IV.

:class:`MeasurementStudy` evaluates ActFort over an ecosystem -- either
from static profiles (fast; the default for the 201-service catalog) or by
black-box probing a deployed internet (faithful; used by the integration
tests) -- and aggregates every statistic the paper reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.actfort import ActFort
from repro.core.authproc import aggregate_path_statistics
from repro.core.collection import exposure_table
from repro.core.tdg import DependencyLevel
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import PersonalInfoKind, Platform
from repro.websim.internet import Internet


@dataclasses.dataclass(frozen=True)
class MeasurementResults:
    """Everything Section IV reports, as data."""

    service_count: int
    total_auth_paths: int
    distinct_path_signatures: int
    #: Fig. 3 aggregates per platform (see ``aggregate_path_statistics``).
    fig3: Mapping[Platform, Mapping[str, float]]
    #: Table I per platform: kind -> fraction of services exposing it.
    table1: Mapping[Platform, Mapping[PersonalInfoKind, float]]
    #: Section IV-B dependency-level fractions per platform.
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]]

    def summary_lines(self) -> list:
        """Compact text summary used by examples and benches."""
        lines = [
            f"services analyzed: {self.service_count}",
            f"authentication paths: {self.total_auth_paths} "
            f"({self.distinct_path_signatures} distinct factor signatures)",
        ]
        for platform, stats in self.fig3.items():
            lines.append(
                f"[{platform.value}] SMS-only sign-in "
                f"{100 * stats['sms_only_signin']:.1f}% vs reset "
                f"{100 * stats['sms_only_reset']:.1f}%; SMS anywhere "
                f"{100 * stats['uses_sms_anywhere']:.1f}%"
            )
        for platform, fractions in self.dependency.items():
            rendered = ", ".join(
                f"{level.value}={100 * fraction:.2f}%"
                for level, fraction in fractions.items()
            )
            lines.append(f"[{platform.value}] {rendered}")
        return lines


class MeasurementStudy:
    """Runs the full Section IV measurement over one ecosystem."""

    def __init__(self, attacker: Optional[AttackerProfile] = None) -> None:
        self._attacker = attacker if attacker is not None else AttackerProfile.baseline()

    def run_on_ecosystem(self, ecosystem: Ecosystem) -> MeasurementResults:
        """Profile-mode measurement (no live services needed)."""
        actfort = ActFort.from_ecosystem(ecosystem, attacker=self._attacker)
        return self._aggregate(actfort)

    def run_on_internet(self, internet: Internet) -> MeasurementResults:
        """Probe-mode measurement against deployed services."""
        actfort = ActFort.from_internet(internet, attacker=self._attacker)
        return self._aggregate(actfort)

    def run_actfort(self, actfort: ActFort) -> MeasurementResults:
        """Aggregate a pre-built ActFort instance."""
        return self._aggregate(actfort)

    def run_batch(
        self,
        ecosystem: Ecosystem,
        attackers: Iterable[AttackerProfile],
    ) -> Tuple[MeasurementResults, ...]:
        """Measure several attacker profiles over one ecosystem at once.

        Stage-1/2 reports and the attacker-independent ecosystem index are
        computed a single time and shared across the profiles via
        :meth:`ActFort.batch`; only the per-profile graph views differ.
        Results are returned in the order of ``attackers``.
        """
        base = ActFort.from_ecosystem(ecosystem, attacker=self._attacker)
        return tuple(
            self._aggregate(clone) for clone in base.batch(attackers)
        )

    def run_session(
        self, session, attacker: Optional[str] = None
    ) -> MeasurementResults:
        """Incremental re-aggregation over a live dynamic session.

        ``session`` is a
        :class:`~repro.dynamic.session.DynamicAnalysisSession`: its
        stage-1/2 reports and indexed graph are maintained per mutation
        delta, so re-measuring after a mutation costs only this O(services)
        aggregation plus whatever memoized graph state the delta actually
        invalidated -- never a pipeline rebuild.  ``attacker`` selects one
        of the session's attacker labels (default: the session's first);
        the study's own attacker profile is not consulted, since the
        session already fixed its profiles at construction.
        """
        return self._aggregate_reports(
            session.auth_reports,
            session.collection_reports,
            session.graph(attacker),
        )

    def _aggregate(self, actfort: ActFort) -> MeasurementResults:
        return self._aggregate_reports(
            actfort.auth_reports, actfort.collection_reports, actfort.tdg()
        )

    def _aggregate_reports(
        self, auth_reports, collection_reports, tdg
    ) -> MeasurementResults:

        fig3: Dict[Platform, Mapping[str, float]] = {}
        table1: Dict[Platform, Mapping[PersonalInfoKind, float]] = {}
        for platform in (Platform.WEB, Platform.MOBILE):
            fig3[platform] = aggregate_path_statistics(auth_reports, platform)
            table1[platform] = exposure_table(collection_reports, platform)
        # One batch call through the level engine: both platforms share
        # the same warm depth fixpoints (and, in session mode, whatever
        # classification entries survived the last delta).
        dependency: Mapping[Platform, Mapping[DependencyLevel, float]] = (
            tdg.levels_report((Platform.WEB, Platform.MOBILE))
        )

        total_paths = sum(len(r.paths()) for r in auth_reports.values())
        signatures = sum(
            r.distinct_path_signatures for r in auth_reports.values()
        )
        return MeasurementResults(
            service_count=len(auth_reports),
            total_auth_paths=total_paths,
            distinct_path_signatures=signatures,
            fig3=fig3,
            table1=table1,
            dependency=dependency,
        )
