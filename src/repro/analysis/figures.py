"""Row/series generators for every figure and table in the paper.

Each function returns plain data (list-of-rows) that the benchmark harness
prints next to the paper's published values; rendering helpers produce the
ASCII versions of the graph figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.measurement import MeasurementResults
from repro.core.tdg import DependencyLevel, TransformationDependencyGraph
from repro.catalog.spec import TABLE1_MOBILE, TABLE1_WEB
from repro.model.factors import PersonalInfoKind, Platform

#: The paper's Fig. 3 / Section IV-B-1 reference values.
PAPER_PATH_TYPE_SHARES: Mapping[Platform, Mapping[str, float]] = {
    Platform.WEB: {"general": 0.5865, "info": 0.1345, "unique": 0.1635},
    Platform.MOBILE: {"general": 0.45, "info": 0.17, "unique": 0.17},
}

#: The paper's Section IV-B dependency-level percentages.
PAPER_DEPENDENCY: Mapping[Platform, Mapping[DependencyLevel, float]] = {
    Platform.WEB: {
        DependencyLevel.DIRECT: 0.7413,
        DependencyLevel.ONE_LAYER: 0.0983,
        DependencyLevel.TWO_LAYER_FULL: 0.0520,
        DependencyLevel.TWO_LAYER_MIXED: 0.0289,
        DependencyLevel.SAFE: 0.0444,
    },
    Platform.MOBILE: {
        DependencyLevel.DIRECT: 0.7556,
        DependencyLevel.ONE_LAYER: 0.2647,
        DependencyLevel.TWO_LAYER_FULL: 0.2059,
        DependencyLevel.TWO_LAYER_MIXED: 0.0882,
        DependencyLevel.SAFE: 0.0222,
    },
}

#: Table I reference values (kind -> fraction) per platform.
PAPER_TABLE1: Mapping[Platform, Mapping[PersonalInfoKind, float]] = {
    Platform.WEB: TABLE1_WEB,
    Platform.MOBILE: TABLE1_MOBILE,
}


def fig3_rows(results: MeasurementResults) -> List[Tuple[str, str, str, str]]:
    """Fig. 3 rows: (metric, platform, measured, paper)."""
    rows: List[Tuple[str, str, str, str]] = []
    for platform in (Platform.WEB, Platform.MOBILE):
        stats = results.fig3[platform]
        paper = PAPER_PATH_TYPE_SHARES[platform]
        rows.append(
            (
                "SMS-only sign-in",
                platform.value,
                f"{100 * stats['sms_only_signin']:.2f}%",
                "lower than reset (qualitative)",
            )
        )
        rows.append(
            (
                "SMS-only password reset",
                platform.value,
                f"{100 * stats['sms_only_reset']:.2f}%",
                "~direct-compromise rate",
            )
        )
        rows.append(
            (
                "SMS used somewhere",
                platform.value,
                f"{100 * stats['uses_sms_anywhere']:.2f}%",
                "> 80%",
            )
        )
        rows.append(
            (
                "extra info demanded",
                platform.value,
                f"{100 * stats['extra_info_required']:.2f}%",
                "< 20%",
            )
        )
        for share in ("general", "info", "unique"):
            rows.append(
                (
                    f"{share} path share",
                    platform.value,
                    f"{100 * stats[f'{share}_share']:.2f}%",
                    f"{100 * paper[share]:.2f}%",
                )
            )
    return rows


def table1_rows(
    results: MeasurementResults,
) -> List[Tuple[str, str, str, str, str]]:
    """Table I rows: (kind, measured web, paper web, measured mobile, paper mobile)."""
    rows: List[Tuple[str, str, str, str, str]] = []
    for kind in TABLE1_WEB:
        rows.append(
            (
                kind.value,
                f"{100 * results.table1[Platform.WEB].get(kind, 0.0):.2f}",
                f"{100 * TABLE1_WEB[kind]:.2f}",
                f"{100 * results.table1[Platform.MOBILE].get(kind, 0.0):.2f}",
                f"{100 * TABLE1_MOBILE[kind]:.2f}",
            )
        )
    return rows


def dependency_level_rows(
    results: MeasurementResults,
) -> List[Tuple[str, str, str, str, str]]:
    """Dependency rows: (level, measured web, paper web, measured mobile, paper mobile)."""
    rows: List[Tuple[str, str, str, str, str]] = []
    for level in DependencyLevel:
        rows.append(
            (
                level.value,
                f"{100 * results.dependency[Platform.WEB][level]:.2f}",
                f"{100 * PAPER_DEPENDENCY[Platform.WEB][level]:.2f}",
                f"{100 * results.dependency[Platform.MOBILE][level]:.2f}",
                f"{100 * PAPER_DEPENDENCY[Platform.MOBILE][level]:.2f}",
            )
        )
    return rows


def fig4_graph(
    tdg: TransformationDependencyGraph, size: int = 44, seed: int = 4
) -> nx.DiGraph:
    """The Fig. 4 connection graph: ``size`` accounts, strong edges.

    Nodes are chosen deterministically: every seed (named) service first,
    then synthetic services in name order until ``size`` is reached;
    ``fringe`` node attributes mark the red dots (SMS-only accounts).
    """
    names = [node.service for node in tdg.nodes]
    if len(names) < size:
        raise ValueError(f"graph has only {len(names)} nodes, need {size}")
    import random as _random

    rng = _random.Random(seed)
    seeds_first = [n for n in names if not n[-1].isdigit() or "_" not in n]
    rest = [n for n in names if n not in seeds_first]
    rng.shuffle(rest)
    chosen = (seeds_first + rest)[:size]
    chosen_set = set(chosen)

    full = tdg.to_networkx(include_weak=False)
    sub = full.subgraph(chosen_set).copy()
    return sub


def connection_graph_summary(graph: nx.DiGraph) -> Dict[str, float]:
    """Fig. 4 headline statistics: node/edge counts, fringe share, and how
    much of the graph the fringe nodes can reach."""
    fringe = {n for n, data in graph.nodes(data=True) if data.get("fringe")}
    internal = set(graph.nodes) - fringe
    reachable = set(fringe)
    frontier = list(fringe)
    while frontier:
        node = frontier.pop()
        for successor in graph.successors(node):
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    return {
        "nodes": float(graph.number_of_nodes()),
        "edges": float(graph.number_of_edges()),
        "fringe": float(len(fringe)),
        "internal": float(len(internal)),
        "fringe_share": len(fringe) / max(1, graph.number_of_nodes()),
        "reachable_from_fringe": len(reachable) / max(1, graph.number_of_nodes()),
    }


def render_connection_graph(graph: nx.DiGraph, max_edges: int = 40) -> str:
    """ASCII rendering of the Fig. 4 graph (adjacency list form)."""
    lines = ["Fig. 4 connection graph (o = fringe/red, # = internal/blue)"]
    for node in sorted(graph.nodes):
        marker = "o" if graph.nodes[node].get("fringe") else "#"
        targets = sorted(graph.successors(node))
        if targets:
            shown = ", ".join(targets[:6])
            more = f" (+{len(targets) - 6})" if len(targets) > 6 else ""
            lines.append(f"  {marker} {node} -> {shown}{more}")
        else:
            lines.append(f"  {marker} {node}")
        if len(lines) > max_edges:
            lines.append(f"  ... ({graph.number_of_nodes()} nodes total)")
            break
    return "\n".join(lines)


def render_fig11_tdg(
    tdg: TransformationDependencyGraph,
    services: Optional[Sequence[str]] = None,
) -> str:
    """ASCII rendering of the Fig. 11 per-node TDG structure.

    For each service: its authentication paths (credential factor file) and
    the personal information file, exactly the per-node structure Fig. 12
    diagrams for China Railway.
    """
    if services is None:
        services = [
            "china_railway",
            "ctrip",
            "facebook",
            "google",
            "alipay",
            "netease_mail",
            "gmail",
        ]
    lines = ["Transformation Dependency Graph (Fig. 11 nodes)"]
    for name in services:
        if name not in tdg:
            continue
        node = tdg.node(name)
        lines.append(f"[{name}] ({node.domain})")
        for index, path in enumerate(node.takeover_paths, start=1):
            lines.append(f"  Log_{index}: {path.describe()}")
        info = ", ".join(sorted(k.value for k in node.pia))
        lines.append(f"  PI file: {info or '(none fully exposed)'}")
        if node.pia_partial:
            partials = ", ".join(
                f"{kind.value}[{len(positions)} chars]"
                for kind, positions in sorted(
                    node.pia_partial.items(), key=lambda kv: kv[0].value
                )
            )
            lines.append(f"  PI (masked): {partials}")
        parents = sorted(tdg.full_capacity_parents(name))
        if parents:
            shown = ", ".join(parents[:5])
            more = f" (+{len(parents) - 5})" if len(parents) > 5 else ""
            lines.append(f"  full-capacity parents: {shown}{more}")
    return "\n".join(lines)
