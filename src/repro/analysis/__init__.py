"""Measurement study and figure/table reproduction.

- :mod:`repro.analysis.measurement` runs ActFort across the catalog and
  aggregates the paper's Section IV statistics.
- :mod:`repro.analysis.figures` shapes those aggregates into the exact
  rows/series of Fig. 3, Table I, the dependency-level percentages, the
  Fig. 4 connection graph, and the Fig. 11 seed-service TDG.
- :mod:`repro.analysis.insights` computes the five "Key Insights" as
  quantitative, assertable checks.
"""

from repro.analysis.measurement import MeasurementResults, MeasurementStudy
from repro.analysis.figures import (
    connection_graph_summary,
    dependency_level_rows,
    fig3_rows,
    fig4_graph,
    render_fig11_tdg,
    table1_rows,
)
from repro.analysis.insights import InsightCheck, compute_insights
from repro.analysis.report import full_report

__all__ = [
    "InsightCheck",
    "full_report",
    "MeasurementResults",
    "MeasurementStudy",
    "compute_insights",
    "connection_graph_summary",
    "dependency_level_rows",
    "fig3_rows",
    "fig4_graph",
    "render_fig11_tdg",
    "table1_rows",
]
