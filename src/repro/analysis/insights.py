"""The five Key Insights (Section IV-B-2) as computed, assertable checks.

Each check derives its verdict from the analyzed ecosystem rather than
hard-coding the paper's conclusion, so the insight holds (or fails) as a
property of the generated data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.actfort import ActFort
from repro.core.strategy import StrategyEngine
from repro.core.tdg import TransformationDependencyGraph
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    Platform,
    is_robust_factor,
)


@dataclasses.dataclass(frozen=True)
class InsightCheck:
    """One insight, evaluated."""

    key: str
    title: str
    holds: bool
    evidence: str


def compute_insights(actfort: ActFort) -> Tuple[InsightCheck, ...]:
    """Evaluate all five insights on an analyzed ecosystem."""
    tdg = actfort.tdg()
    return (
        _insight_email_gateway(actfort, tdg),
        _insight_asymmetry(actfort, tdg),
        _insight_domain_stratification(tdg),
        _insight_masking_inconsistency(tdg),
        _insight_robust_factors(tdg),
    )


def _insight_email_gateway(
    actfort: ActFort, tdg: TransformationDependencyGraph
) -> InsightCheck:
    """Insight 1: emails are the gateway to most exposed vulnerabilities.

    Evidence: (a) every email-domain service is directly SMS-resettable;
    (b) removing the email channel from the attacker shrinks the PAV.
    """
    email_nodes = [n for n in tdg.nodes if n.domain == "email"]
    direct_count = sum(1 for n in email_nodes if tdg.is_direct(n.service))
    # "Most Email accounts can be reset merely using SMS Codes" -- most,
    # not all; 90% is the assertable form of the paper's wording.
    mostly_direct = bool(email_nodes) and direct_count / len(email_nodes) >= 0.9

    full = StrategyEngine(tdg).forward_closure().compromised
    from repro.model.attacker import AttackerCapability

    no_email_attacker = actfort.attacker.without_capability(
        AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
    )
    degraded = (
        StrategyEngine(
            TransformationDependencyGraph(tdg.nodes, no_email_attacker)
        )
        .forward_closure()
        .compromised
    )
    shrunk = len(degraded) < len(full)
    return InsightCheck(
        key="email_gateway",
        title="Emails are the gateway to most of the vulnerabilities exposed",
        holds=mostly_direct and shrunk,
        evidence=(
            f"{direct_count}/{len(email_nodes)} email services "
            f"SMS-resettable; PAV {len(full)} -> {len(degraded)} without "
            "the email channel"
        ),
    )


def _insight_asymmetry(
    actfort: ActFort, tdg: TransformationDependencyGraph
) -> InsightCheck:
    """Insight 2: asymmetry between mobile/web and sign-in/reset.

    Evidence: per-platform exposure and requirement differences, plus the
    sign-in vs reset SMS-only gap.
    """
    from repro.core.authproc import aggregate_path_statistics

    stats = {
        platform: aggregate_path_statistics(actfort.auth_reports, platform)
        for platform in (Platform.WEB, Platform.MOBILE)
    }
    signin_lt_reset = all(
        stats[p]["sms_only_signin"] < stats[p]["sms_only_reset"]
        for p in stats
    )
    # Platform asymmetry: count services whose exposed-info sets differ
    # between web and mobile.
    asymmetric = 0
    both = 0
    for report in actfort.collection_reports.values():
        web = report.kinds_on(Platform.WEB)
        mobile = report.kinds_on(Platform.MOBILE)
        if not web or not mobile:
            continue
        both += 1
        if web != mobile:
            asymmetric += 1
    platform_asymmetry = both > 0 and asymmetric / both > 0.3
    return InsightCheck(
        key="asymmetry",
        title="Asymmetry exists between mobile vs web and sign-in vs reset",
        holds=signin_lt_reset and platform_asymmetry,
        evidence=(
            f"SMS-only sign-in < reset on every platform: {signin_lt_reset}; "
            f"{asymmetric}/{both} dual-platform services expose different "
            "information per platform"
        ),
    )


def _insight_domain_stratification(
    tdg: TransformationDependencyGraph,
) -> InsightCheck:
    """Insight 3: different domains have different authentication levels,
    with Fintech the strictest."""
    direct_by_domain: Dict[str, List[bool]] = {}
    for node in tdg.nodes:
        direct_by_domain.setdefault(node.domain, []).append(
            tdg.is_direct(node.service)
        )
    rates = {
        domain: sum(flags) / len(flags)
        for domain, flags in direct_by_domain.items()
        if len(flags) >= 3
    }
    if not rates:
        return InsightCheck(
            key="domains",
            title="Different domains have different levels of authentication",
            holds=False,
            evidence="not enough services per domain",
        )
    fintech_rate = rates.get("fintech", 1.0)
    strictest = min(rates.values())
    spread = max(rates.values()) - strictest
    overall = sum(
        sum(flags) for flags in direct_by_domain.values()
    ) / sum(len(flags) for flags in direct_by_domain.values())
    # Fintech must sit in the strict tier -- far below the ecosystem-wide
    # rate -- with a real spread across domains.  (Small domains like
    # education/cloud can undercut fintech by sampling noise, so "exactly
    # the minimum" would be a brittle reading of the insight.)
    holds = fintech_rate < overall - 0.20 and spread > 0.2
    ordered = ", ".join(
        f"{domain}={100 * rate:.0f}%"
        for domain, rate in sorted(rates.items(), key=lambda kv: kv[1])
    )
    return InsightCheck(
        key="domains",
        title="Different domains have different levels of authentication",
        holds=holds,
        evidence=f"direct-compromise rate by domain: {ordered}",
    )


def _insight_masking_inconsistency(
    tdg: TransformationDependencyGraph,
) -> InsightCheck:
    """Insight 4: no unified masking rule; combining recovers full values."""
    for kind, factor in (
        (PersonalInfoKind.CITIZEN_ID, CredentialFactor.CITIZEN_ID),
        (PersonalInfoKind.BANKCARD_NUMBER, CredentialFactor.BANKCARD_NUMBER),
    ):
        position_sets = {
            frozenset(node.pia_partial[kind])
            for node in tdg.nodes
            if kind in node.pia_partial
        }
        if len(position_sets) < 2:
            continue
        union = frozenset().union(*position_sets)
        length = 18 if kind is PersonalInfoKind.CITIZEN_ID else 16
        if len(union) >= length:
            return InsightCheck(
                key="masking",
                title="No unified rule for sensitive information masking",
                holds=True,
                evidence=(
                    f"{kind.value}: {len(position_sets)} distinct masking "
                    f"rules observed; union of revealed positions covers all "
                    f"{length} characters -> combining attack recovers the "
                    "full value"
                ),
            )
    return InsightCheck(
        key="masking",
        title="No unified rule for sensitive information masking",
        holds=False,
        evidence="masking rules are consistent (or combining never completes)",
    )


def _insight_robust_factors(
    tdg: TransformationDependencyGraph,
) -> InsightCheck:
    """Insight 5: biometrics and U2F are the most secure authentication.

    Evidence: no path guarded by a robust factor is ever satisfiable by
    chaining, and every surviving (safe) service relies on robust factors
    or passwords for all its paths.
    """
    violations = 0
    robust_paths = 0
    for node in tdg.nodes:
        for path in node.takeover_paths:
            if not any(is_robust_factor(f) for f in path.factors):
                continue
            robust_paths += 1
            cover = tdg.coverage(node, path)
            if not cover.is_blocked:
                violations += 1
    return InsightCheck(
        key="robust_factors",
        title="Biometric features and U2F keys are the most secure",
        holds=robust_paths > 0 and violations == 0,
        evidence=(
            f"{robust_paths} biometric/U2F-guarded paths; "
            f"{violations} satisfiable by chaining"
        ),
    )
