"""The typed request/response layer of the analysis API.

Every query is a small frozen dataclass naming *what* to compute --
never *how* -- with a :meth:`Query.canonical_key` that fully determines
the answer at one session version.  The key is what the
:class:`~repro.api.cache.ResultCache` stores under (paired with the
version), what :meth:`~repro.api.service.AnalysisService.plan` dedupes
on, and what makes two differently-spelled requests (``attacker=None``
vs the explicit primary label, a list vs a tuple of platforms) share one
cache entry.

Results are wire-ready: plain frozen dataclasses whose ``to_dict``
produces a JSON-serializable document (enums as value strings, sets as
sorted lists) and whose ``from_dict`` round-trips it, so a serving layer
can ship them without post-processing.  Streaming results (the Couple
File, weak edges) come back as cursor pages
(:class:`CouplePage` / :class:`EdgePage`): ``next_cursor`` is ``None``
on the last page, otherwise it is the ``cursor`` of the next request.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple, Union

from repro.core.tdg import CoupleRecord, DependencyLevel
from repro.dynamic.rollout import RolloutStep
from repro.model.factors import PersonalInfoKind, Platform
from repro.utils.serialization import (
    auth_path_from_dict,
    auth_path_to_dict,
    info_kinds_from_list,
    info_kinds_to_list,
    level_map_from_dict,
    level_map_to_dict,
)

__all__ = [
    "ClosureQuery",
    "ClosureSummary",
    "CoupleFileQuery",
    "CouplePage",
    "DependencyLevelsQuery",
    "DependencyLevelsResult",
    "DefenseEvalQuery",
    "DefenseEvalResult",
    "EdgePage",
    "EdgeSummary",
    "EdgeSummaryQuery",
    "LevelReportQuery",
    "LevelReportResult",
    "MeasurementQuery",
    "Query",
    "RolloutQuery",
    "WeakEdgeQuery",
]

#: Default platform sweep (the paper measures web and mobile).
BOTH_PLATFORMS: Tuple[Platform, ...] = (Platform.WEB, Platform.MOBILE)


class Query:
    """Base class for typed analysis queries.

    Subclasses are frozen dataclasses; :meth:`canonical_key` must return
    a hashable tuple that -- together with the session version -- fully
    determines the result.  ``default_attacker`` resolves an omitted
    attacker label so implicit and explicit spellings share cache slots.
    """

    #: Every query targets one attacker view (``None`` = primary label).
    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        raise NotImplementedError

    def resolved_attacker(self, default_attacker: str) -> str:
        """The attacker label this query runs against."""
        attacker = getattr(self, "attacker", None)
        return attacker if attacker is not None else default_attacker


# ----------------------------------------------------------------------
# Dependency levels
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class LevelReportQuery(Query):
    """Section IV-B level fractions for a sweep of platforms.

    Cache-key contract: ``("level_report", platforms, attacker)`` --
    the fractions are a pure function of the graph state at one session
    version, so the key plus the version fully determines the result.
    Invalidation is by construction (a mutation bumps the version); the
    level engine underneath keeps its fixpoints warm across versions,
    so a miss after a mutation re-derives only the delta's cone.
    """

    platforms: Tuple[Platform, ...] = BOTH_PLATFORMS
    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        return (
            "level_report",
            tuple(self.platforms),
            self.resolved_attacker(default_attacker),
        )


@dataclasses.dataclass(frozen=True)
class LevelReportResult:
    """Per-platform dependency-level fractions at one session version."""

    attacker: str
    version: int
    fractions: Mapping[Platform, Mapping[DependencyLevel, float]]

    def fraction(self, platform: Platform, level: DependencyLevel) -> float:
        return self.fractions[platform][level]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attacker": self.attacker,
            "version": self.version,
            "fractions": level_map_to_dict(self.fractions),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "LevelReportResult":
        return cls(
            attacker=document["attacker"],
            version=document["version"],
            fractions=level_map_from_dict(document["fractions"]),
        )


@dataclasses.dataclass(frozen=True)
class DependencyLevelsQuery(Query):
    """Per-service dependency levels on one platform.

    Cache-key contract: ``("dependency_levels", platform, attacker)``
    at one session version.  Misses are served from the level engine's
    per-(platform, service) classification cache, which survives
    mutations outside a delta's reach -- only invalidated entries are
    reclassified.
    """

    platform: Platform = Platform.WEB
    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        return (
            "dependency_levels",
            self.platform,
            self.resolved_attacker(default_attacker),
        )


@dataclasses.dataclass(frozen=True)
class DependencyLevelsResult:
    """Service -> level set on one platform at one session version."""

    attacker: str
    version: int
    platform: Platform
    levels: Mapping[str, FrozenSet[DependencyLevel]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attacker": self.attacker,
            "version": self.version,
            "platform": self.platform.value,
            "levels": {
                service: sorted(level.value for level in levels)
                for service, levels in self.levels.items()
            },
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "DependencyLevelsResult":
        return cls(
            attacker=document["attacker"],
            version=document["version"],
            platform=Platform(document["platform"]),
            levels={
                service: frozenset(
                    DependencyLevel(value) for value in values
                )
                for service, values in document["levels"].items()
            },
        )


# ----------------------------------------------------------------------
# Forward closure
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ClosureQuery(Query):
    """Scenario 1: the PAV from an initial attacked set.

    Cache-key contract: ``("closure", seeds, extra info, email
    provider, attacker)`` at one session version.  Misses consult the
    graph-level closure cache, which deltas *revalidate* rather than
    drop: safe-only churn patches the safe set in place, and a mutation
    reaching the closure's compromised support set marks the record
    dirty so the serve-time fixpoint *resumes* from the recorded
    per-round support postings -- only the rounds whose support moved
    re-derive, not the whole closure
    (:class:`~repro.core.strategy.ClosureSupportRecord`).
    """

    initially_compromised: Tuple[str, ...] = ()
    extra_info: Tuple[PersonalInfoKind, ...] = ()
    email_provider: Optional[str] = None
    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        return (
            "closure",
            tuple(self.initially_compromised),
            frozenset(self.extra_info),
            self.email_provider,
            self.resolved_attacker(default_attacker),
        )


@dataclasses.dataclass(frozen=True)
class ClosureSummary:
    """The PAV as wire data: who falls in which round, who survives."""

    attacker: str
    version: int
    #: Services grouped by the closure round they fell in (0 = seeds).
    rounds: Mapping[int, Tuple[str, ...]]
    compromised: Tuple[str, ...]
    safe: Tuple[str, ...]
    final_info: FrozenSet[PersonalInfoKind]

    @property
    def pav_size(self) -> int:
        return len(self.compromised)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attacker": self.attacker,
            "version": self.version,
            "rounds": {
                str(number): list(names)
                for number, names in self.rounds.items()
            },
            "compromised": list(self.compromised),
            "safe": list(self.safe),
            "final_info": info_kinds_to_list(self.final_info),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ClosureSummary":
        return cls(
            attacker=document["attacker"],
            version=document["version"],
            rounds={
                int(number): tuple(names)
                for number, names in document["rounds"].items()
            },
            compromised=tuple(document["compromised"]),
            safe=tuple(document["safe"]),
            final_info=info_kinds_from_list(document["final_info"]),
        )


# ----------------------------------------------------------------------
# Measurement (Section IV)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MeasurementQuery(Query):
    """The full Section IV aggregation; returns
    :class:`~repro.analysis.measurement.MeasurementResults`.

    Cache-key contract: ``("measurement", attacker)`` at one session
    version.  Misses are served from the session's maintained
    :class:`~repro.analysis.measurement.MeasurementAggregator`
    counters (folded per touched service on every mutation), equal to
    a scratch :func:`~repro.analysis.measurement.aggregate_reports`
    exactly, float for float.
    """

    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        return ("measurement", self.resolved_attacker(default_attacker))


# ----------------------------------------------------------------------
# Edges and streaming pages
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EdgeSummaryQuery(Query):
    """Edge-family counts (strong edges, fringe, optionally weak edges).

    ``include_weak`` is opt-in because the weak-edge family is the
    output-bound frontier; its count still *streams* through
    ``iter_weak_edges`` rather than materializing the Couple File.

    Cache-key contract: ``("edge_summary", include_weak, attacker)``
    at one session version.  Strong edges are counted off the memoized
    per-service parent sets (backed by the per-signature parent
    postings view, so a miss after a mutation re-joins only affected
    signatures); weak edges stream through the segment engine.
    """

    include_weak: bool = False
    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        return (
            "edge_summary",
            self.include_weak,
            self.resolved_attacker(default_attacker),
        )


@dataclasses.dataclass(frozen=True)
class EdgeSummary:
    """Strong/weak edge and fringe counts at one session version."""

    attacker: str
    version: int
    strong_edges: int
    fringe: int
    weak_edges: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attacker": self.attacker,
            "version": self.version,
            "strong_edges": self.strong_edges,
            "fringe": self.fringe,
            "weak_edges": self.weak_edges,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "EdgeSummary":
        return cls(
            attacker=document["attacker"],
            version=document["version"],
            strong_edges=document["strong_edges"],
            fringe=document["fringe"],
            weak_edges=document.get("weak_edges"),
        )


@dataclasses.dataclass(frozen=True)
class CoupleFileQuery(Query):
    """One page of the Couple File (Definition 3's weak-directivity
    records), in the engine's canonical enumeration order.

    ``cursor`` is either a flat integer offset (``0`` = first page;
    counted over the current session version's stream) or a **segment
    watermark token** from a previous page's ``next_cursor``.  Tokens are
    the stable form: they name the service segment being drained (by its
    monotone insertion ordinal) plus the records consumed within it, so
    a pagination interrupted by mutations resumes at the watermark --
    drained segments are never re-emitted or re-enumerated, segments
    still ahead are served in their post-mutation state (see
    :class:`~repro.streams.StreamCursor`).

    Cache-key contract: the key is ``("couples", cursor, page_size,
    max_size, attacker)``; paired with the session version it fully
    determines the page, because the backing stream is a pure function
    of the graph state at that version and the watermark names an
    absolute position.  A mutation bumps the version, so a re-requested
    page recomputes against the spliced segments instead of serving a
    stale cache entry.
    """

    cursor: Union[int, str] = 0
    page_size: int = 256
    max_size: int = 3
    attacker: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.cursor, int) and self.cursor < 0:
            raise ValueError("integer cursors must be >= 0")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")

    def canonical_key(self, default_attacker: str) -> Tuple:
        return (
            "couples",
            self.cursor,
            self.page_size,
            self.max_size,
            self.resolved_attacker(default_attacker),
        )


@dataclasses.dataclass(frozen=True)
class CouplePage:
    """One page of Couple File records.

    ``next_cursor`` is a segment-watermark token (pass it as the next
    request's ``cursor``; it stays valid across mutations), or ``None``
    when this page is the last."""

    attacker: str
    version: int
    cursor: Union[int, str]
    records: Tuple[CoupleRecord, ...]
    #: Watermark token of the next page, or ``None`` on the last page.
    next_cursor: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attacker": self.attacker,
            "version": self.version,
            "cursor": self.cursor,
            "next_cursor": self.next_cursor,
            "records": [
                {
                    "providers": sorted(record.providers),
                    "target": record.target,
                    "path": auth_path_to_dict(record.path),
                }
                for record in self.records
            ],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CouplePage":
        return cls(
            attacker=document["attacker"],
            version=document["version"],
            cursor=document["cursor"],
            next_cursor=document["next_cursor"],
            records=tuple(
                CoupleRecord(
                    providers=frozenset(item["providers"]),
                    target=item["target"],
                    path=auth_path_from_dict(item["path"]),
                )
                for item in document["records"]
            ),
        )


@dataclasses.dataclass(frozen=True)
class WeakEdgeQuery(Query):
    """One page of distinct weak-directivity edges, streamed.

    Cursor and cache-key semantics are those of
    :class:`CoupleFileQuery`: integer cursors are flat offsets, string
    cursors are segment-watermark tokens stable across mutations, and
    the canonical key below plus the session version fully determines
    the page."""

    cursor: Union[int, str] = 0
    page_size: int = 1024
    max_size: int = 3
    attacker: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.cursor, int) and self.cursor < 0:
            raise ValueError("integer cursors must be >= 0")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")

    def canonical_key(self, default_attacker: str) -> Tuple:
        return (
            "weak_edges",
            self.cursor,
            self.page_size,
            self.max_size,
            self.resolved_attacker(default_attacker),
        )


@dataclasses.dataclass(frozen=True)
class EdgePage:
    """One page of (provider, child) weak-directivity edges.

    ``next_cursor`` is a segment-watermark token valid across mutations
    (see :class:`CouplePage`), or ``None`` on the last page."""

    attacker: str
    version: int
    cursor: Union[int, str]
    edges: Tuple[Tuple[str, str], ...]
    next_cursor: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attacker": self.attacker,
            "version": self.version,
            "cursor": self.cursor,
            "next_cursor": self.next_cursor,
            "edges": [list(edge) for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "EdgePage":
        return cls(
            attacker=document["attacker"],
            version=document["version"],
            cursor=document["cursor"],
            next_cursor=document["next_cursor"],
            edges=tuple(
                (parent, child) for parent, child in document["edges"]
            ),
        )


# ----------------------------------------------------------------------
# Defense evaluation and rollout what-ifs
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DefenseEvalQuery(Query):
    """Section VII's ablation over the *current* ecosystem state.

    ``defenses`` names transforms registered with the service
    (``None`` = its standard set, in registration order); ``attackers``
    selects the attacker labels to sweep (``None`` = primary only).

    Cache-key contract: ``("defense_eval", defenses, include_combined,
    attackers)`` at one session version, *plus* the service's
    defense-registry epoch (appended by the service itself), so
    re-registering a transform under an old name can never serve a
    result computed under the previous registry.
    """

    defenses: Optional[Tuple[str, ...]] = None
    include_combined: bool = True
    attackers: Optional[Tuple[str, ...]] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        labels = (
            self.attackers
            if self.attackers is not None
            else (default_attacker,)
        )
        return (
            "defense_eval",
            self.defenses,
            self.include_combined,
            tuple(labels),
        )


@dataclasses.dataclass(frozen=True)
class DefenseEvalResult:
    """The ablation grid: attacker label -> (baseline, defenses..., combined)."""

    version: int
    #: Variant labels in evaluation order (baseline first).
    variants: Tuple[str, ...]
    rows: Mapping[str, Tuple]

    def row(self, attacker: str) -> Tuple:
        """One attacker's outcomes across the variants."""
        return self.rows[attacker]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "variants": list(self.variants),
            "rows": {
                attacker: [outcome.to_dict() for outcome in outcomes]
                for attacker, outcomes in self.rows.items()
            },
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "DefenseEvalResult":
        from repro.defense.evaluation import DefenseOutcome

        return cls(
            version=document["version"],
            variants=tuple(document["variants"]),
            rows={
                attacker: tuple(
                    DefenseOutcome.from_dict(item) for item in outcomes
                )
                for attacker, outcomes in document["rows"].items()
            },
        )


@dataclasses.dataclass(frozen=True)
class RolloutQuery(Query):
    """A staged-deployment what-if over the current ecosystem state.

    ``steps=None`` replays the paper's narrative plan (email hardening
    provider by provider, then symmetry repair domain by domain, with
    symmetry targets computed on the email-hardened ecosystem).  Returns
    a :class:`~repro.dynamic.rollout.RolloutTrajectory`.

    Cache-key contract: ``("rollout", plan key, platforms,
    include_weak, attacker)`` at one session version, where the plan
    key is ``("default",)`` or the steps' deterministic reprs
    (mutations can carry unhashable profile payloads).  The what-if
    replays over a *fresh* facade seeded from the current ecosystem
    state, so the key pins the baseline version the trajectory started
    from.
    """

    steps: Optional[Tuple[RolloutStep, ...]] = None
    platforms: Tuple[Platform, ...] = BOTH_PLATFORMS
    include_weak: bool = False
    attacker: Optional[str] = None

    def canonical_key(self, default_attacker: str) -> Tuple:
        if self.steps is None:
            plan_key: Tuple = ("default",)
        else:
            # Mutations can hold unhashable payloads (service profiles
            # carry mappings), so the key uses their deterministic reprs:
            # equal reprs imply equal dataclass field values here.
            plan_key = tuple(repr(step) for step in self.steps)
        return (
            "rollout",
            plan_key,
            tuple(self.platforms),
            self.include_weak,
            self.resolved_attacker(default_attacker),
        )
