"""The version-keyed result cache behind :class:`~repro.api.service.AnalysisService`.

Entries are keyed by ``(canonical query key, session version)``: a
mutation bumps the version, so stale results are never *returned* -- they
simply stop being addressable and age out of the LRU bound.  Repeated
queries at an unchanged version are O(1) dictionary hits, which is the
contract the ``api_serve`` benchmark tier and the perf-smoke gate
measure.

Counters live on the owning :class:`~repro.obs.Instrumentation` handle's
registry (``repro_result_cache_*``); :meth:`ResultCache.stats` is the
behavior-compatible thin view over them.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.obs import Instrumentation

__all__ = ["CacheStats", "ResultCache"]

#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Counters for one cache instance."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU of query results keyed by (key, version)."""

    def __init__(
        self,
        max_entries: int = 4096,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Hashable, int], Any]" = OrderedDict()
        obs = instrumentation if instrumentation is not None else Instrumentation()
        self._hits = obs.counter(
            "repro_result_cache_hits_total",
            "Result-cache lookups served from a live (key, version) entry.",
        )
        self._misses = obs.counter(
            "repro_result_cache_misses_total",
            "Result-cache lookups that fell through to the engines.",
        )
        self._evictions = obs.counter(
            "repro_result_cache_evictions_total",
            "Entries dropped past the LRU bound (stale versions typical).",
        )
        self._entries_gauge = obs.gauge(
            "repro_result_cache_entries",
            "Live result-cache entries (any version).",
        )

    def get(self, key: Hashable, version: int) -> Any:
        """The cached value, or the module-private miss sentinel."""
        entry = self._entries.get((key, version), _MISS)
        if entry is _MISS:
            self._misses.inc()
        else:
            self._hits.inc()
            self._entries.move_to_end((key, version))
        return entry

    def peek(self, key: Hashable, version: int) -> bool:
        """Whether an entry exists, without touching stats or recency."""
        return (key, version) in self._entries

    def put(self, key: Hashable, version: int, value: Any) -> None:
        """Store one result, evicting the least recently used beyond the
        bound (old-version entries are the typical victims)."""
        self._entries[(key, version)] = value
        self._entries.move_to_end((key, version))
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._entries_gauge.set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._entries_gauge.set(0)

    def entries_at(self, version: int):
        """``(key, value)`` pairs live at one version, in recency order
        (the still-addressable entries a snapshot can carry as warm
        results)."""
        return [
            (key, value)
            for (key, entry_version), value in self._entries.items()
            if entry_version == version
        ]

    @property
    def miss(self) -> object:
        """The sentinel :meth:`get` returns on a miss."""
        return _MISS

    def stats(self) -> CacheStats:
        """The legacy stats view, now read off the metrics registry."""
        return CacheStats(
            hits=int(self._hits.value),
            misses=int(self._misses.value),
            entries=len(self._entries),
        )
