"""Kind-tagged wire codecs for typed queries and their results.

Result dataclasses already know how to ``to_dict``/``from_dict``
themselves; what a serving layer additionally needs is (a) the inverse
direction for *queries* -- a JSON body naming which query to run -- and
(b) a kind tag on both sides so a response document is self-describing.
This module is that seam: :func:`query_from_dict` is what the HTTP tier
feeds request bodies through, and the same codecs let
:meth:`~repro.api.service.AnalysisService.snapshot` carry its warm
result-cache entries across a migration.

``RolloutQuery`` is deliberately not wire-codable: its ``steps`` payload
can hold arbitrary mutation objects (service profiles included), which
belong to the trusted in-process API, not to request bodies.  Unknown
kinds raise ``ValueError`` -- the HTTP tier maps that to a 400, never a
dead-letter.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.analysis.measurement import MeasurementResults
from repro.api.queries import (
    ClosureQuery,
    ClosureSummary,
    CoupleFileQuery,
    CouplePage,
    DefenseEvalQuery,
    DefenseEvalResult,
    DependencyLevelsQuery,
    DependencyLevelsResult,
    EdgePage,
    EdgeSummary,
    EdgeSummaryQuery,
    LevelReportQuery,
    LevelReportResult,
    MeasurementQuery,
    Query,
    WeakEdgeQuery,
)
from repro.model.factors import PersonalInfoKind, Platform

__all__ = [
    "query_from_dict",
    "query_to_dict",
    "result_from_dict",
    "result_to_dict",
]


def _opt_tuple(value):
    return tuple(value) if value is not None else None


def _encode_level_report(query: LevelReportQuery) -> Dict[str, Any]:
    return {
        "platforms": [platform.value for platform in query.platforms],
        "attacker": query.attacker,
    }


def _decode_level_report(document: Mapping[str, Any]) -> LevelReportQuery:
    platforms = document.get("platforms")
    return LevelReportQuery(
        platforms=(
            tuple(Platform(value) for value in platforms)
            if platforms is not None
            else LevelReportQuery.platforms
        ),
        attacker=document.get("attacker"),
    )


def _encode_dependency_levels(
    query: DependencyLevelsQuery,
) -> Dict[str, Any]:
    return {"platform": query.platform.value, "attacker": query.attacker}


def _decode_dependency_levels(
    document: Mapping[str, Any],
) -> DependencyLevelsQuery:
    platform = document.get("platform")
    return DependencyLevelsQuery(
        platform=(
            Platform(platform)
            if platform is not None
            else DependencyLevelsQuery.platform
        ),
        attacker=document.get("attacker"),
    )


def _encode_closure(query: ClosureQuery) -> Dict[str, Any]:
    return {
        "initially_compromised": list(query.initially_compromised),
        "extra_info": [kind.value for kind in query.extra_info],
        "email_provider": query.email_provider,
        "attacker": query.attacker,
    }


def _decode_closure(document: Mapping[str, Any]) -> ClosureQuery:
    return ClosureQuery(
        initially_compromised=tuple(
            document.get("initially_compromised", ())
        ),
        extra_info=tuple(
            PersonalInfoKind(value)
            for value in document.get("extra_info", ())
        ),
        email_provider=document.get("email_provider"),
        attacker=document.get("attacker"),
    )


def _encode_measurement(query: MeasurementQuery) -> Dict[str, Any]:
    return {"attacker": query.attacker}


def _decode_measurement(document: Mapping[str, Any]) -> MeasurementQuery:
    return MeasurementQuery(attacker=document.get("attacker"))


def _encode_edge_summary(query: EdgeSummaryQuery) -> Dict[str, Any]:
    return {"include_weak": query.include_weak, "attacker": query.attacker}


def _decode_edge_summary(document: Mapping[str, Any]) -> EdgeSummaryQuery:
    return EdgeSummaryQuery(
        include_weak=bool(document.get("include_weak", False)),
        attacker=document.get("attacker"),
    )


def _encode_page_query(query) -> Dict[str, Any]:
    return {
        "cursor": query.cursor,
        "page_size": query.page_size,
        "max_size": query.max_size,
        "attacker": query.attacker,
    }


def _decode_couples(document: Mapping[str, Any]) -> CoupleFileQuery:
    return CoupleFileQuery(
        cursor=document.get("cursor", 0),
        page_size=document.get("page_size", 256),
        max_size=document.get("max_size", 3),
        attacker=document.get("attacker"),
    )


def _decode_weak_edges(document: Mapping[str, Any]) -> WeakEdgeQuery:
    return WeakEdgeQuery(
        cursor=document.get("cursor", 0),
        page_size=document.get("page_size", 1024),
        max_size=document.get("max_size", 3),
        attacker=document.get("attacker"),
    )


def _encode_defense_eval(query: DefenseEvalQuery) -> Dict[str, Any]:
    return {
        "defenses": (
            list(query.defenses) if query.defenses is not None else None
        ),
        "include_combined": query.include_combined,
        "attackers": (
            list(query.attackers) if query.attackers is not None else None
        ),
    }


def _decode_defense_eval(document: Mapping[str, Any]) -> DefenseEvalQuery:
    return DefenseEvalQuery(
        defenses=_opt_tuple(document.get("defenses")),
        include_combined=bool(document.get("include_combined", True)),
        attackers=_opt_tuple(document.get("attackers")),
    )


#: kind -> (query class, encode, decode); kinds match the first element
#: of each query's canonical cache key.
_QUERY_CODECS = {
    "level_report": (
        LevelReportQuery, _encode_level_report, _decode_level_report,
    ),
    "dependency_levels": (
        DependencyLevelsQuery,
        _encode_dependency_levels,
        _decode_dependency_levels,
    ),
    "closure": (ClosureQuery, _encode_closure, _decode_closure),
    "measurement": (
        MeasurementQuery, _encode_measurement, _decode_measurement,
    ),
    "edge_summary": (
        EdgeSummaryQuery, _encode_edge_summary, _decode_edge_summary,
    ),
    "couples": (CoupleFileQuery, _encode_page_query, _decode_couples),
    "weak_edges": (WeakEdgeQuery, _encode_page_query, _decode_weak_edges),
    "defense_eval": (
        DefenseEvalQuery, _encode_defense_eval, _decode_defense_eval,
    ),
}

_KIND_BY_QUERY = {
    cls: kind for kind, (cls, _enc, _dec) in _QUERY_CODECS.items()
}

#: kind -> result class; every listed class round-trips via its own
#: ``to_dict``/``from_dict``.
_RESULT_KINDS = {
    "level_report": LevelReportResult,
    "dependency_levels": DependencyLevelsResult,
    "closure": ClosureSummary,
    "measurement": MeasurementResults,
    "edge_summary": EdgeSummary,
    "couple_page": CouplePage,
    "edge_page": EdgePage,
    "defense_eval": DefenseEvalResult,
}

_KIND_BY_RESULT = {cls: kind for kind, cls in _RESULT_KINDS.items()}


def query_to_dict(query: Query) -> Dict[str, Any]:
    """One query as a kind-tagged JSON document."""
    kind = _KIND_BY_QUERY.get(type(query))
    if kind is None:
        raise ValueError(
            f"{type(query).__name__} is not wire-codable"
        )
    _cls, encode, _decode = _QUERY_CODECS[kind]
    document = encode(query)
    document["kind"] = kind
    return document


def query_from_dict(document: Mapping[str, Any]) -> Query:
    """Inverse of :func:`query_to_dict`; ``ValueError`` on unknown or
    missing kinds (the HTTP tier's 400 path)."""
    kind = document.get("kind")
    codec = _QUERY_CODECS.get(kind)
    if codec is None:
        raise ValueError(
            f"unknown query kind {kind!r} "
            f"(expected one of {sorted(_QUERY_CODECS)})"
        )
    _cls, _encode, decode = codec
    try:
        return decode(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed {kind!r} query: {exc}") from exc


def result_to_dict(result: Any) -> Dict[str, Any]:
    """One query result as a kind-tagged JSON document."""
    kind = _KIND_BY_RESULT.get(type(result))
    if kind is None:
        raise ValueError(
            f"{type(result).__name__} is not wire-codable"
        )
    return {"kind": kind, "data": result.to_dict()}


def result_from_dict(document: Mapping[str, Any]) -> Any:
    """Inverse of :func:`result_to_dict`."""
    kind = document.get("kind")
    cls = _RESULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown result kind {kind!r}")
    return cls.from_dict(document["data"])
