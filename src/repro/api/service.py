"""The :class:`AnalysisService` facade: one surface over the whole pipeline.

Everything the paper's pipeline computes -- TDG construction, level
classification, measurement, forward closure, defense evaluation,
rollout what-ifs -- is served here through typed queries
(:mod:`repro.api.queries`) against live
:class:`~repro.dynamic.session.DynamicAnalysisSession` state:

- **Mutations route through the incremental engines.**  :meth:`apply`
  feeds each :class:`~repro.dynamic.events.Mutation` to the session,
  which splices the shared indexes and delta-BFSes the level engine; the
  service just bumps its version.
- **Queries are version-cache-keyed.**  Every query has a canonical key;
  results live in a :class:`~repro.api.cache.ResultCache` keyed by
  (key, version), so a repeated query at an unchanged version is an O(1)
  lookup and a mutation invalidates *by construction* (the version moved)
  rather than by scanning.
- **Plan/execute separation.**  :meth:`plan` resolves attacker labels,
  dedupes canonical keys, and hoists the shared work of a batch -- one
  level-engine flush covering the union of requested platforms per
  attacker -- into a prefetch step; :meth:`run` then serves each query
  from the warm engines (and :meth:`execute_batch` is the two composed).
- **Streams paginate, and survive mutations.**  Couple File and
  weak-edge queries return cursor pages served from each graph's
  :class:`~repro.streams.RecordStreamEngine`: one memoized record
  segment per service, spliced (not discarded) when a mutation lands.
  ``next_cursor`` is a segment watermark token, so page *n+1* starts at
  the watermark -- never re-enumerating pages ``0..n`` -- and a
  pagination interrupted by a mutation resumes without re-emitting
  drained segments.

This facade is the serving seam: anything that wants to shard, batch,
or distribute the analysis talks to these queries, not to the engines.
:class:`~repro.analysis.measurement.MeasurementStudy`,
:class:`~repro.defense.evaluation.DefenseEvaluation` and
:class:`~repro.dynamic.rollout.RolloutPlanner` are thin clients.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.api.cache import CacheStats, ResultCache
from repro.api.queries import (
    BOTH_PLATFORMS,
    ClosureQuery,
    ClosureSummary,
    CoupleFileQuery,
    CouplePage,
    DefenseEvalQuery,
    DefenseEvalResult,
    DependencyLevelsQuery,
    DependencyLevelsResult,
    EdgePage,
    EdgeSummary,
    EdgeSummaryQuery,
    LevelReportQuery,
    LevelReportResult,
    MeasurementQuery,
    Query,
    RolloutQuery,
    WeakEdgeQuery,
)
from repro.core.actfort import ActFort
from repro.core.strategy import StrategyEngine
from repro.dynamic.events import EcosystemDelta, Mutation
from repro.dynamic.session import DynamicAnalysisSession
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform
from repro.obs import Instrumentation, metrics_snapshot
from repro.websim.internet import Internet

__all__ = [
    "AnalysisService",
    "ApplyMutation",
    "ExecutionPlan",
    "MutationReceipt",
    "PlannedQuery",
]


@dataclasses.dataclass(frozen=True)
class ApplyMutation:
    """The one command kind: apply a typed mutation to the live state."""

    mutation: Mutation


@dataclasses.dataclass(frozen=True)
class MutationReceipt:
    """What a command returns: the delta and the version it produced."""

    delta: EcosystemDelta
    version: int


@dataclasses.dataclass(frozen=True)
class PlannedQuery:
    """One query of a plan, with its resolved cache key."""

    query: Query
    key: Tuple
    #: Whether the planner saw a cache entry at plan time (advisory).
    cached: bool


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """A batch of queries resolved against one session version."""

    version: int
    steps: Tuple[PlannedQuery, ...]
    #: Attacker label -> platform sweep one engine flush should cover.
    level_prefetch: Mapping[str, Tuple[Platform, ...]]


class AnalysisService:
    """Typed query/command facade over one evolving account ecosystem.

    The service owns one multi-attacker
    :class:`~repro.dynamic.session.DynamicAnalysisSession` (one shared
    ecosystem index, one maintained graph per attacker label) plus the
    version-keyed result cache and the stream cursors.  Construct it from
    an ecosystem (profile mode), from stage-1/2 reports or a deployed
    internet (probe mode, read-only), or adopt an existing session.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
        attackers: Optional[Mapping[str, AttackerProfile]] = None,
        cache_entries: int = 4096,
        instrumentation: Optional[Instrumentation] = None,
        build_workers: Optional[int] = None,
    ) -> None:
        self._adopt(
            DynamicAnalysisSession(
                ecosystem,
                attacker=attacker,
                attackers=attackers,
                instrumentation=instrumentation,
                build_workers=build_workers,
            ),
            cache_entries,
        )

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_session(
        cls, session: DynamicAnalysisSession, cache_entries: int = 4096
    ) -> "AnalysisService":
        """Adopt a live session (shared, not copied: mutations through
        either surface are visible to both)."""
        service = cls.__new__(cls)
        service._adopt(session, cache_entries)
        return service

    @classmethod
    def from_reports(
        cls,
        auth_reports,
        collection_reports,
        attacker: Optional[AttackerProfile] = None,
        attackers: Optional[Mapping[str, AttackerProfile]] = None,
        cache_entries: int = 4096,
        instrumentation: Optional[Instrumentation] = None,
    ) -> "AnalysisService":
        """A read-only service over pre-built stage-1/2 reports."""
        return cls.from_session(
            DynamicAnalysisSession.from_reports(
                auth_reports,
                collection_reports,
                attacker=attacker,
                attackers=attackers,
                instrumentation=instrumentation,
            ),
            cache_entries,
        )

    @classmethod
    def from_actfort(
        cls, actfort: ActFort, cache_entries: int = 4096
    ) -> "AnalysisService":
        """A read-only service over one analyzed ActFort instance."""
        return cls.from_reports(
            actfort.auth_reports,
            actfort.collection_reports,
            attacker=actfort.attacker,
            cache_entries=cache_entries,
        )

    @classmethod
    def from_internet(
        cls,
        internet: Internet,
        attacker: Optional[AttackerProfile] = None,
        cache_entries: int = 4096,
    ) -> "AnalysisService":
        """Probe a deployed internet black-box, then serve its analysis."""
        return cls.from_actfort(
            ActFort.from_internet(internet, attacker=attacker),
            cache_entries=cache_entries,
        )

    @classmethod
    def restore(
        cls,
        document: Mapping[str, Any],
        cache_entries: int = 4096,
        instrumentation: Optional[Instrumentation] = None,
    ) -> "AnalysisService":
        """Warm-start a service from a :meth:`snapshot` document.

        The session restores lazily (reports and graphs materialize on
        first engine access) and the snapshot's ``warm_results`` seed the
        result cache at the restored version -- so a migrated tenant's
        standard query batch is served as O(1) hits before any engine
        exists.  Entries that fail to decode are dropped (the cache is an
        optimization; a dropped entry just recomputes on miss)."""
        from repro.api.wire import query_from_dict, result_from_dict

        service = cls.from_session(
            DynamicAnalysisSession.restore(
                document, instrumentation=instrumentation
            ),
            cache_entries,
        )
        primary = service.primary_attacker
        for entry in document.get("warm_results", ()):
            try:
                query = query_from_dict(entry["query"])
                value = result_from_dict(entry["result"])
            except (KeyError, ValueError):
                continue  # recomputes on first miss; never fatal
            key = service._cache_key(query, primary)
            service._query_by_key[key] = query
            service._cache.put(key, service.version, value)
        return service

    def snapshot(self, include_warm_results: bool = True) -> Dict[str, Any]:
        """The backing session's snapshot document, extended with this
        service's live cache entries as ``warm_results``.

        Only wire-codable entries at the *current* version are carried
        (``RolloutQuery`` trajectories are in-process-only, and defense
        rows are dropped once :meth:`register_defense` has customized the
        registry, since the restored side starts from the standard set).
        """
        document = dict(self._session.snapshot())
        if not include_warm_results:
            return document
        from repro.api.wire import query_to_dict, result_to_dict

        warm: List[Dict[str, Any]] = []
        for key, value in self._cache.entries_at(self.version):
            query = self._query_by_key.get(key)
            if query is None:
                continue
            if (
                isinstance(query, DefenseEvalQuery)
                and self._defense_epoch != 0
            ):
                continue
            try:
                warm.append(
                    {
                        "query": query_to_dict(query),
                        "result": result_to_dict(value),
                    }
                )
            except ValueError:
                continue  # not wire-codable (e.g. rollout trajectories)
        document["warm_results"] = warm
        return document

    def _adopt(
        self, session: DynamicAnalysisSession, cache_entries: int
    ) -> None:
        from repro.defense.evaluation import standard_defenses

        self._session = session
        # One handle per session: graphs and engines already report into
        # it (attached by the session), the service adds the serving-tier
        # instruments on top.
        self._obs = session.instrumentation
        self._cache = ResultCache(
            max_entries=cache_entries, instrumentation=self._obs
        )
        self._queries_counter = self._obs.counter(
            "repro_api_queries_total",
            "Queries served, by query kind and outcome (hit/computed).",
            labels=("kind", "outcome"),
        )
        self._plans_counter = self._obs.counter(
            "repro_api_plans_total", "Execution plans resolved."
        )
        self._plan_dedupe_counter = self._obs.counter(
            "repro_api_plan_deduped_total",
            "Planned steps whose canonical key duplicated an earlier "
            "step of the same batch (served once, hit thereafter).",
        )
        self._defense_transforms: Dict[str, Callable[[Ecosystem], Ecosystem]] = (
            dict(standard_defenses())
        )
        #: Bumped on re-registration so defense cache keys can never serve
        #: a result computed under a different transform set.
        self._defense_epoch = 0
        #: Cache key -> the query that computed it, so :meth:`snapshot`
        #: can re-encode live cache entries as warm results.  Bounded by
        #: the number of distinct canonical keys (version-independent).
        self._query_by_key: Dict[Tuple, Query] = {}

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------

    @property
    def session(self) -> DynamicAnalysisSession:
        """The backing live session."""
        return self._session

    @property
    def ecosystem(self) -> Optional[Ecosystem]:
        """Current ecosystem state (``None`` in probe mode)."""
        return self._session.ecosystem

    @property
    def version(self) -> int:
        """Number of mutations absorbed; part of every cache key."""
        return self._session.version

    @property
    def attackers(self) -> Mapping[str, AttackerProfile]:
        return self._session.attackers

    @property
    def primary_attacker(self) -> str:
        """The label an omitted ``attacker=`` resolves to (first label)."""
        return next(iter(self._session.attackers))

    def __len__(self) -> int:
        return len(self._session)

    @property
    def instrumentation(self) -> Instrumentation:
        """The shared metrics/tracing handle (the session's; every engine
        layer under this service reports into its one registry)."""
        return self._obs

    def cache_stats(self) -> CacheStats:
        """Result-cache counters (hits / misses / live entries)."""
        return self._cache.stats()

    def closure_cache_stats(
        self, attacker: Optional[str] = None
    ) -> Mapping[str, int]:
        """The graph-level closure-cache counters behind ``ClosureQuery``.

        Shows the incremental serve split: ``hits`` (clean records served
        verbatim), ``computes`` (scratch fixpoint runs), ``resumes``
        (support-reaching mutations re-derived from the recorded per-round
        postings), and ``revalidations`` (records marked dirty by deltas).
        """
        label = attacker if attacker is not None else self.primary_attacker
        return self._session.graph(label).closure_cache_stats()

    def observability_snapshot(self) -> Dict[str, Any]:
        """One JSON-serializable dict covering every engine layer.

        ``layers`` holds the five thin per-engine views (result cache,
        closure records, depth fixpoints, parent postings, stream
        segments) keyed the way their legacy ``stats()`` surfaces report
        them; ``metrics`` is the full registry snapshot those views read
        from (plus histograms the views never summarized); and
        ``recent_spans`` is the tracer's bounded ring of finished root
        traces.
        """
        registry = self._obs.registry
        stats = self._cache.stats()
        closure: Dict[str, Any] = {}
        levels: Dict[str, Any] = {}
        parents: Dict[str, Any] = {}
        streams: Dict[str, Any] = {}
        for label in self._session.attackers:
            graph = self._session.graph(label)
            closure[label] = dict(graph.closure_cache_stats())
            levels[label] = {
                "flushes": int(
                    registry.value(
                        "repro_levels_flushes_total", {"attacker": label}
                    )
                ),
                "scratch_builds": int(
                    registry.value(
                        "repro_levels_scratch_builds_total",
                        {"attacker": label},
                    )
                ),
            }
            parents[label] = dict(graph.parents_view().stats())
            streams[label] = dict(graph.streams_engine().stats())
        return {
            "version": self.version,
            "attackers": list(self._session.attackers),
            "layers": {
                "result_cache": {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "entries": stats.entries,
                    "hit_rate": stats.hit_rate,
                },
                "closure": closure,
                "levels": levels,
                "parents": parents,
                "streams": streams,
            },
            "metrics": metrics_snapshot(registry),
            "recent_spans": [
                span.to_dict() for span in self._obs.tracer.recent()
            ],
        }

    def prometheus_metrics(self) -> str:
        """The shared registry in Prometheus text exposition format."""
        return self._obs.prometheus()

    def register_defense(
        self, name: str, transform: Callable[[Ecosystem], Ecosystem]
    ) -> None:
        """Register (or replace) a defense transform for
        :class:`~repro.api.queries.DefenseEvalQuery` to name."""
        self._defense_transforms[name] = transform
        self._defense_epoch += 1

    def defense_names(self) -> Tuple[str, ...]:
        """Registered defense names, in registration order."""
        return tuple(self._defense_transforms)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def apply(self, mutation: Mutation) -> MutationReceipt:
        """Apply one mutation through the incremental engines.

        The session splices indexes and routes the delta into each level
        engine; version-keyed cache entries for the old state simply stop
        being addressable.
        """
        with self._obs.span("api.apply", mutation=mutation.describe()):
            delta = self._session.mutate(mutation)
        return MutationReceipt(delta=delta, version=self.version)

    def replay(
        self, mutations: Iterable[Mutation]
    ) -> Tuple[MutationReceipt, ...]:
        """Apply a mutation sequence; receipts come back in order."""
        return tuple(self.apply(mutation) for mutation in mutations)

    def execute_command(self, command: ApplyMutation) -> MutationReceipt:
        """Typed-command form of :meth:`apply`."""
        if not isinstance(command, ApplyMutation):
            raise TypeError(f"unknown command {command!r}")
        return self.apply(command.mutation)

    # ------------------------------------------------------------------
    # Plan / execute
    # ------------------------------------------------------------------

    def plan(self, queries: Iterable[Query]) -> ExecutionPlan:
        """Resolve a query batch against the current version.

        Planning dedupes canonical keys, marks which queries the cache
        already holds, and computes the per-attacker platform union a
        single level-engine flush should cover -- the shared work
        :meth:`run` hoists ahead of the per-query dispatch.
        """
        queries = tuple(queries)
        with self._obs.span("api.plan", queries=len(queries)) as span:
            primary = self.primary_attacker
            steps: List[PlannedQuery] = []
            prefetch: Dict[str, Set[Platform]] = {}
            seen_keys: Set[Tuple] = set()
            deduped = 0
            for query in queries:
                key = self._cache_key(query, primary)
                cached = self._cache.peek(key, self.version)
                steps.append(
                    PlannedQuery(query=query, key=key, cached=cached)
                )
                if key in seen_keys:
                    deduped += 1
                seen_keys.add(key)
                if cached:
                    continue
                label = query.resolved_attacker(primary)
                if isinstance(query, LevelReportQuery):
                    prefetch.setdefault(label, set()).update(query.platforms)
                elif isinstance(query, DependencyLevelsQuery):
                    prefetch.setdefault(label, set()).add(query.platform)
                elif isinstance(query, MeasurementQuery):
                    prefetch.setdefault(label, set()).update(BOTH_PLATFORMS)
                elif isinstance(query, DefenseEvalQuery):
                    for row_label in query.attackers or (primary,):
                        prefetch.setdefault(row_label, set()).update(
                            BOTH_PLATFORMS
                        )
            ordered_prefetch = {
                label: tuple(
                    sorted(platforms, key=lambda platform: platform.value)
                )
                for label, platforms in prefetch.items()
            }
            self._plans_counter.inc()
            if deduped:
                self._plan_dedupe_counter.inc(deduped)
            span.set_attribute(
                "cached", sum(1 for step in steps if step.cached)
            )
            span.set_attribute("deduped", deduped)
            span.set_attribute("prefetch_attackers", len(ordered_prefetch))
            return ExecutionPlan(
                version=self.version,
                steps=tuple(steps),
                level_prefetch=ordered_prefetch,
            )

    def run(self, plan: ExecutionPlan) -> Tuple[Any, ...]:
        """Execute a plan, one result per planned query (in order)."""
        if plan.version != self.version:
            raise ValueError(
                f"plan was made at version {plan.version} but the service "
                f"is at {self.version}; re-plan after mutations"
            )
        with self._obs.span("api.run", steps=len(plan.steps)) as span:
            for label, platforms in plan.level_prefetch.items():
                # One engine flush per attacker covers every platform the
                # batch needs; the per-query dispatches below then serve
                # from the warm fixpoints and classification caches.
                self._session.graph(label).levels_report(platforms)
            results: List[Any] = []
            hits = 0
            for step in plan.steps:
                kind = type(step.query).__name__
                hit = self._cache.get(step.key, self.version)
                if hit is not self._cache.miss:
                    hits += 1
                    self._queries_counter.labels(
                        kind=kind, outcome="hit"
                    ).inc()
                    results.append(hit)
                    continue
                with self._obs.span("api.query", kind=kind):
                    value = self._dispatch(step.query)
                self._queries_counter.labels(
                    kind=kind, outcome="computed"
                ).inc()
                self._cache.put(step.key, self.version, value)
                self._query_by_key[step.key] = step.query
                results.append(value)
            span.set_attribute("hits", hits)
            return tuple(results)

    def execute(self, query: Query) -> Any:
        """Plan and run one query."""
        return self.run(self.plan((query,)))[0]

    def execute_batch(self, queries: Iterable[Query]) -> Tuple[Any, ...]:
        """Plan and run a batch (the shared-work path)."""
        return self.run(self.plan(tuple(queries)))

    def raw_query(
        self, what, *args, attacker: Optional[str] = None, **kwargs
    ):
        """Escape hatch: run an arbitrary (uncached) graph query through
        the session's generic ``query`` surface."""
        return self._session.query(what, *args, attacker=attacker, **kwargs)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _cache_key(self, query: Query, primary: str) -> Tuple:
        key = query.canonical_key(primary)
        if isinstance(query, DefenseEvalQuery):
            key = key + (self._defense_epoch,)
        return key

    def _dispatch(self, query: Query) -> Any:
        if isinstance(query, LevelReportQuery):
            return self._execute_level_report(query)
        if isinstance(query, DependencyLevelsQuery):
            return self._execute_dependency_levels(query)
        if isinstance(query, ClosureQuery):
            return self._execute_closure(query)
        if isinstance(query, MeasurementQuery):
            return self._execute_measurement(query)
        if isinstance(query, EdgeSummaryQuery):
            return self._execute_edge_summary(query)
        if isinstance(query, CoupleFileQuery):
            return self._execute_couples(query)
        if isinstance(query, WeakEdgeQuery):
            return self._execute_weak_edges(query)
        if isinstance(query, DefenseEvalQuery):
            return self._execute_defense_eval(query)
        if isinstance(query, RolloutQuery):
            return self._execute_rollout(query)
        raise TypeError(f"unknown query {query!r}")

    def _label(self, query: Query) -> str:
        label = query.resolved_attacker(self.primary_attacker)
        if label not in self._session.attackers:
            raise KeyError(f"unknown attacker label {label!r}")
        return label

    def _execute_level_report(
        self, query: LevelReportQuery
    ) -> LevelReportResult:
        label = self._label(query)
        fractions = self._session.graph(label).levels_report(query.platforms)
        return LevelReportResult(
            attacker=label, version=self.version, fractions=fractions
        )

    def _execute_dependency_levels(
        self, query: DependencyLevelsQuery
    ) -> DependencyLevelsResult:
        label = self._label(query)
        levels = self._session.graph(label).dependency_levels(query.platform)
        return DependencyLevelsResult(
            attacker=label,
            version=self.version,
            platform=query.platform,
            levels=levels,
        )

    def _execute_closure(self, query: ClosureQuery) -> ClosureSummary:
        label = self._label(query)
        closure = StrategyEngine(self._session.graph(label)).forward_closure(
            initially_compromised=query.initially_compromised,
            extra_info=query.extra_info,
            email_provider=query.email_provider,
        )
        return ClosureSummary(
            attacker=label,
            version=self.version,
            rounds=closure.by_round(),
            compromised=tuple(entry.service for entry in closure.entries),
            safe=tuple(sorted(closure.safe)),
            final_info=closure.final_info,
        )

    def _execute_measurement(self, query: MeasurementQuery):
        # Served from the session's maintained counter view (folded per
        # touched service on every mutation), equal to a scratch
        # aggregate_reports() over the current reports exactly.
        return self._session.measurement(attacker=self._label(query))

    def _execute_edge_summary(self, query: EdgeSummaryQuery) -> EdgeSummary:
        label = self._label(query)
        graph = self._session.graph(label)
        weak = (
            sum(1 for _edge in graph.iter_weak_edges())
            if query.include_weak
            else None
        )
        return EdgeSummary(
            attacker=label,
            version=self.version,
            # Counted off the memoized parent sets (no edge-set build);
            # after a mutation only the dirty parent sets re-derive.
            strong_edges=graph.strong_edge_count(),
            fringe=len(graph.fringe_nodes()),
            weak_edges=weak,
        )

    # -- streaming pages ------------------------------------------------

    def _page(
        self, kind: str, label: str, query
    ) -> Tuple[Tuple[Any, ...], Optional[str]]:
        """One stream page through the graph's segment engine.

        Integer cursors are flat offsets over the current version's
        stream; string cursors are segment-watermark tokens from a
        previous ``next_cursor`` and resume at the watermark even across
        mutations.  Either way the page is served from memoized segments
        -- after a mutation only the dirty ones re-derive.
        """
        engine = self._session.graph(label).streams_engine()
        return engine.page(
            kind, query.max_size, query.cursor, query.page_size
        )

    def _execute_couples(self, query: CoupleFileQuery) -> CouplePage:
        label = self._label(query)
        records, next_cursor = self._page("couples", label, query)
        return CouplePage(
            attacker=label,
            version=self.version,
            cursor=query.cursor,
            records=records,
            next_cursor=next_cursor,
        )

    def _execute_weak_edges(self, query: WeakEdgeQuery) -> EdgePage:
        label = self._label(query)
        edges, next_cursor = self._page("weak_edges", label, query)
        return EdgePage(
            attacker=label,
            version=self.version,
            cursor=query.cursor,
            edges=edges,
            next_cursor=next_cursor,
        )

    # -- defense ablation and rollout what-ifs --------------------------

    def _require_ecosystem(self) -> Ecosystem:
        ecosystem = self._session.ecosystem
        if ecosystem is None:
            raise RuntimeError(
                "this service fronts probe reports; defense and rollout "
                "what-ifs need a profile-backed ecosystem"
            )
        return ecosystem

    def _execute_defense_eval(
        self, query: DefenseEvalQuery
    ) -> DefenseEvalResult:
        from repro.defense.evaluation import measure_outcome

        ecosystem = self._require_ecosystem()
        labels = (
            tuple(query.attackers)
            if query.attackers is not None
            else (self.primary_attacker,)
        )
        for label in labels:
            if label not in self._session.attackers:
                raise KeyError(f"unknown attacker label {label!r}")
        names = (
            tuple(query.defenses)
            if query.defenses is not None
            else tuple(self._defense_transforms)
        )
        transforms = []
        for name in names:
            if name not in self._defense_transforms:
                raise KeyError(f"unknown defense {name!r}")
            transforms.append((name, self._defense_transforms[name]))

        variants: List[Tuple[str, Optional[Ecosystem]]] = [("baseline", None)]
        for name, transform in transforms:
            variants.append((name, transform(ecosystem)))
        if query.include_combined and transforms:
            combined = ecosystem
            for _name, transform in transforms:
                combined = transform(combined)
            variants.append(("all_combined", combined))

        rows: Dict[str, List] = {label: [] for label in labels}
        profiles = self._session.attackers
        for variant_label, variant_ecosystem in variants:
            if variant_ecosystem is None:
                # The baseline row serves straight from the maintained
                # session graphs (bit-identical to a rebuild, per the
                # dynamic differential suite) -- warm fixpoints, cached
                # closure.
                for label in labels:
                    rows[label].append(
                        measure_outcome(
                            variant_label,
                            self._session.graph(label),
                            len(self._session),
                        )
                    )
                continue
            base = ActFort.from_ecosystem(
                variant_ecosystem, attacker=profiles[labels[0]]
            )
            clones = base.batch(profiles[label] for label in labels)
            for label, clone in zip(labels, clones):
                rows[label].append(
                    measure_outcome(
                        variant_label, clone.tdg(), len(variant_ecosystem)
                    )
                )
        return DefenseEvalResult(
            version=self.version,
            variants=tuple(label for label, _eco in variants),
            rows={label: tuple(row) for label, row in rows.items()},
        )

    def _execute_rollout(self, query: RolloutQuery):
        from repro.defense.hardening import EmailHardening
        from repro.dynamic.rollout import (
            email_hardening_rollout,
            replay_plan,
            symmetry_repair_rollout,
        )

        ecosystem = self._require_ecosystem()
        label = self._label(query)
        steps = query.steps
        if steps is None:
            # The paper's narrative order at deployment granularity;
            # symmetry targets computed on the email-hardened ecosystem
            # (hardening can itself introduce asymmetries).
            steps = email_hardening_rollout(
                ecosystem
            ) + symmetry_repair_rollout(EmailHardening().apply(ecosystem))
        return replay_plan(
            ecosystem,
            steps,
            attacker=self._session.attackers[label],
            platforms=query.platforms,
            include_weak=query.include_weak,
        )
