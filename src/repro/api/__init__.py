"""The unified analysis API: typed queries over a version-cached facade.

The paper's pipeline (TDG construction -> level classification ->
measurement -> defense evaluation) historically grew one entry-point
style per layer.  This package is the single surface in front of all of
them -- the seam a serving system caches, batches, versions, or shards
behind:

- :mod:`repro.api.queries` -- frozen dataclass queries
  (:class:`LevelReportQuery`, :class:`ClosureQuery`,
  :class:`MeasurementQuery`, :class:`DefenseEvalQuery`,
  :class:`RolloutQuery`, cursor-paged :class:`CoupleFileQuery` /
  :class:`WeakEdgeQuery`, ...), each with a canonical cache key and a
  JSON-serializable result type;
- :mod:`repro.api.cache` -- the version-keyed LRU
  :class:`~repro.api.cache.ResultCache`;
- :mod:`repro.api.service` -- :class:`AnalysisService`, which owns the
  live :class:`~repro.dynamic.session.DynamicAnalysisSession`, routes
  mutations through the incremental engines, and serves query batches
  with plan/execute separation so shared engine work (index builds,
  level-fixpoint flushes) happens once per batch.

Quickstart::

    from repro import AnalysisService, build_default_ecosystem
    from repro.api import LevelReportQuery, MeasurementQuery

    service = AnalysisService(build_default_ecosystem())
    report, measurement = service.execute_batch(
        [LevelReportQuery(), MeasurementQuery()]
    )
    service.apply(some_mutation)      # routes through the delta engines
    report2 = service.execute(LevelReportQuery())   # recomputed once
    report3 = service.execute(LevelReportQuery())   # O(1) cache hit

The serving story -- the query/command lifecycle, canonical cache keys,
version-keyed invalidation, and the record streams' segment-watermark
cursors -- is documented end to end in ``docs/serving.md`` (see the
repo-root ``README.md`` for the full documentation map).
"""

from repro.api.cache import CacheStats, ResultCache
from repro.api.queries import (
    ClosureQuery,
    ClosureSummary,
    CoupleFileQuery,
    CouplePage,
    DefenseEvalQuery,
    DefenseEvalResult,
    DependencyLevelsQuery,
    DependencyLevelsResult,
    EdgePage,
    EdgeSummary,
    EdgeSummaryQuery,
    LevelReportQuery,
    LevelReportResult,
    MeasurementQuery,
    Query,
    RolloutQuery,
    WeakEdgeQuery,
)
from repro.api.service import (
    AnalysisService,
    ApplyMutation,
    ExecutionPlan,
    MutationReceipt,
    PlannedQuery,
)
from repro.api.wire import (
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "AnalysisService",
    "ApplyMutation",
    "CacheStats",
    "ClosureQuery",
    "ClosureSummary",
    "CoupleFileQuery",
    "CouplePage",
    "DefenseEvalQuery",
    "DefenseEvalResult",
    "DependencyLevelsQuery",
    "DependencyLevelsResult",
    "EdgePage",
    "EdgeSummary",
    "EdgeSummaryQuery",
    "ExecutionPlan",
    "LevelReportQuery",
    "LevelReportResult",
    "MeasurementQuery",
    "MutationReceipt",
    "PlannedQuery",
    "Query",
    "ResultCache",
    "RolloutQuery",
    "WeakEdgeQuery",
    "query_from_dict",
    "query_to_dict",
    "result_from_dict",
    "result_to_dict",
]
