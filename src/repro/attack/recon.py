"""Victim bootstrap: how the attacker gets a phone number to aim at.

Both attack modes in Section II need the victim's cellphone number (and,
implicitly, proximity -- the address):

- **Targeted attack**: "utilize the existing illegal databases of leaked
  personal information" -- modelled by :class:`SocialEngineeringDatabase`,
  a synthetic leak corpus with configurable coverage per field.
- **Random attack**: "deploy phishing WiFi at airports and railway stations
  to get surrounding potential victims' phone numbers" -- modelled by
  :class:`PhishingWifi`, which harvests numbers from phones camping in the
  attacker's cell.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Optional, Tuple

from repro.model.factors import PersonalInfoKind
from repro.model.identity import Identity
from repro.telecom.network import GSMNetwork


@dataclasses.dataclass(frozen=True)
class VictimDossier:
    """What recon produced about one victim."""

    person_id: str
    facts: Dict[PersonalInfoKind, str]

    @property
    def phone_number(self) -> Optional[str]:
        """The victim's cellphone number, if the leak covered it."""
        return self.facts.get(PersonalInfoKind.CELLPHONE_NUMBER)

    def known_kinds(self) -> frozenset:
        """The information kinds the dossier contains."""
        return frozenset(self.facts)


class SocialEngineeringDatabase:
    """A synthetic leaked-PII corpus.

    ``coverage`` maps each information kind to the probability that a given
    victim's record includes that field; phone numbers and real names leak
    near-universally, citizen IDs often (the paper: "severely leaked and
    commonly traded in the black market in China").
    """

    DEFAULT_COVERAGE: Dict[PersonalInfoKind, float] = {
        PersonalInfoKind.CELLPHONE_NUMBER: 0.95,
        PersonalInfoKind.REAL_NAME: 0.90,
        PersonalInfoKind.ADDRESS: 0.70,
        PersonalInfoKind.CITIZEN_ID: 0.50,
        PersonalInfoKind.EMAIL_ADDRESS: 0.60,
    }

    def __init__(
        self,
        identities: Iterable[Identity],
        coverage: Optional[Dict[PersonalInfoKind, float]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._rng = rng if rng is not None else random.Random(0)
        self._coverage = dict(coverage or self.DEFAULT_COVERAGE)
        self._records: Dict[str, VictimDossier] = {}
        self._by_phone: Dict[str, str] = {}
        self._by_name: Dict[str, list] = {}
        for identity in identities:
            self._ingest(identity)

    def _ingest(self, identity: Identity) -> None:
        facts: Dict[PersonalInfoKind, str] = {}
        for kind, probability in self._coverage.items():
            if self._rng.random() < probability:
                facts[kind] = identity.info_value(kind)
        dossier = VictimDossier(person_id=identity.person_id, facts=facts)
        self._records[identity.person_id] = dossier
        phone = facts.get(PersonalInfoKind.CELLPHONE_NUMBER)
        if phone is not None:
            self._by_phone[phone] = identity.person_id
        name = facts.get(PersonalInfoKind.REAL_NAME)
        if name is not None:
            self._by_name.setdefault(name, []).append(identity.person_id)

    def __len__(self) -> int:
        return len(self._records)

    def lookup_by_name(self, real_name: str) -> Tuple[VictimDossier, ...]:
        """All leaked records under a real name (names collide)."""
        return tuple(
            self._records[pid] for pid in self._by_name.get(real_name, ())
        )

    def lookup_by_phone(self, phone: str) -> Optional[VictimDossier]:
        """The leaked record for a phone number, if any."""
        person_id = self._by_phone.get(phone)
        return self._records.get(person_id) if person_id else None

    def lookup(self, person_id: str) -> Optional[VictimDossier]:
        """Direct record access by person id (for tests/scenarios)."""
        return self._records.get(person_id)


class PhishingWifi:
    """A rogue access point harvesting phone numbers in one cell.

    The captive portal asks passers-by for their number "to get online";
    within the simulation, every phone camping in the cell is a potential
    mark and each falls for the portal with probability ``hit_rate``.
    """

    def __init__(
        self,
        network: GSMNetwork,
        cell_id: str,
        hit_rate: float = 0.3,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError("hit_rate must be in [0, 1]")
        network.cell(cell_id)  # validate
        self._network = network
        self._cell_id = cell_id
        self._hit_rate = hit_rate
        self._rng = rng if rng is not None else random.Random(0)

    def harvest(self) -> Tuple[str, ...]:
        """Phone numbers of victims who connected to the rogue AP."""
        numbers = []
        for phone in self._network.phones_in_cell(self._cell_id):
            if self._rng.random() < self._hit_rate:
                numbers.append(phone.msisdn)
        return tuple(numbers)
