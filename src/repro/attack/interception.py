"""Uniform interface over the two SMS-interception rigs.

The chain executor does not care whether codes come from passive GSM
sniffing or an active fake base station; it asks an :class:`SMSInterceptor`
to trigger the OTP dispatch and hand back the code.  Both adapters account
for the operational physics:

- :class:`SnifferInterception` waits out the A5/1 cracking delay on the
  shared logical clock and honours the OTP's expiry deadline -- a code
  cracked too late is useless.
- :class:`MitMInterception` swallows the message entirely (the victim never
  sees it), which is the stealth advantage Section V attributes to the
  active attack.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.telecom.mitm import ActiveMitM
from repro.telecom.sniffer import OsmocomSniffer
from repro.utils.clock import Clock


class InterceptionError(Exception):
    """The rig failed to produce a usable code."""


class SMSInterceptor(Protocol):
    """Anything that can turn an OTP dispatch into a code string."""

    def obtain_code(
        self, sender: str, trigger: Callable[[], None], otp_ttl: float = 300.0
    ) -> str:
        """Trigger the dispatch via ``trigger`` and return the code.

        Raises :class:`InterceptionError` when the code could not be
        captured (dark frequency, failed crack, rig out of range...).
        """


class SnifferInterception:
    """Passive capture through an :class:`~repro.telecom.sniffer.OsmocomSniffer`.

    A single A5/1 crack fails with probability ~0.1, so the adapter retries
    by waiting out the service's resend window and triggering a fresh code
    -- exactly what an attacker at a laptop would do.
    """

    def __init__(
        self,
        sniffer: OsmocomSniffer,
        clock: Clock,
        max_attempts: int = 4,
        resend_wait: float = 61.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._sniffer = sniffer
        self._clock = clock
        self._max_attempts = max_attempts
        self._resend_wait = resend_wait
        self._sniffer.start()

    def obtain_code(
        self, sender: str, trigger: Callable[[], None], otp_ttl: float = 300.0
    ) -> str:
        last_stats = {}
        for attempt in range(self._max_attempts):
            if attempt > 0:
                # Wait out the resend window before asking for a new code.
                self._clock.advance(self._resend_wait)
            requested_at = self._clock.now()
            trigger()
            deadline = requested_at + otp_ttl
            captures = self._sniffer.codes_from(
                sender, since=requested_at, ready_by=deadline
            )
            if captures:
                capture = captures[-1]
                # Cracking takes wall time: move the clock to the moment
                # the plaintext became available (never backwards).
                if capture.available_at > self._clock.now():
                    self._clock.advance(
                        capture.available_at - self._clock.now()
                    )
                return capture.otp_code  # type: ignore[return-value]
            last_stats = self._sniffer.stats
        raise InterceptionError(
            f"sniffer captured no usable code from {sender!r} after "
            f"{self._max_attempts} attempts (stats: {last_stats})"
        )


class MitMInterception:
    """Active capture through a fake base station already holding the victim."""

    def __init__(self, mitm: ActiveMitM, clock: Clock) -> None:
        self._mitm = mitm
        self._clock = clock

    def obtain_code(
        self, sender: str, trigger: Callable[[], None], otp_ttl: float = 300.0
    ) -> str:
        requested_at = self._clock.now()
        trigger()
        code: Optional[str] = self._mitm.latest_code_from(
            sender, since=requested_at
        )
        if code is None:
            raise InterceptionError(
                f"MitM rig intercepted no code from {sender!r}; "
                "is the victim captured?"
            )
        return code
