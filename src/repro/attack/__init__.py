"""The Chain Reaction Attack engine.

Section V's three attack steps, as executable code against the simulated
infrastructure:

1. **Attack path generation** is ActFort's job (:mod:`repro.core.strategy`);
   the bootstrap inputs (victim phone number and address) come from
   :mod:`repro.attack.recon` -- a synthetic leaked-PII database for targeted
   attacks, a phishing-Wi-Fi model for random ones.
2. **SMS code interception** adapters in :mod:`repro.attack.interception`
   wrap the passive sniffer and the active MitM rig behind one interface.
3. **High-value account intrusion** is :mod:`repro.attack.executor`: it
   replays an :class:`~repro.core.strategy.AttackChain` step by step --
   requesting OTPs, intercepting them, harvesting profile pages, combining
   masked views, reading compromised mailboxes -- until the target falls.

:mod:`repro.attack.scenarios` packages the paper's Cases I-III as
end-to-end runnable scenarios.
"""

from repro.attack.recon import PhishingWifi, SocialEngineeringDatabase, VictimDossier
from repro.attack.interception import (
    InterceptionError,
    MitMInterception,
    SMSInterceptor,
    SnifferInterception,
)
from repro.attack.executor import (
    ChainExecutionResult,
    ChainExecutor,
    StepResult,
)
from repro.attack.scenarios import (
    ScenarioResult,
    run_case_i_baidu_wallet,
    run_case_ii_paypal_via_gmail,
    run_case_iii_alipay_via_ctrip,
)
from repro.attack.random_attack import CampaignResult, RandomAttackCampaign

__all__ = [
    "CampaignResult",
    "RandomAttackCampaign",
    "ChainExecutionResult",
    "ChainExecutor",
    "InterceptionError",
    "MitMInterception",
    "PhishingWifi",
    "SMSInterceptor",
    "ScenarioResult",
    "SnifferInterception",
    "SocialEngineeringDatabase",
    "StepResult",
    "VictimDossier",
    "run_case_i_baidu_wallet",
    "run_case_ii_paypal_via_gmail",
    "run_case_iii_alipay_via_ctrip",
]
