"""The Random Attack mode of Section II.

"The attacker aims to attack arbitrary victims nearby and has no knowledge
about the victims in advance.  In practice, the attack can be conducted in
the airports or the railway stations which have a large flow of people."

A :class:`RandomAttackCampaign` is that scenario end to end: deploy a
phishing Wi-Fi access point in the rig's cell to harvest phone numbers,
optionally enrich each mark from a leaked-PII database, then run the same
ActFort-generated chain against every harvested victim.  The campaign
result aggregates per-victim outcomes -- the paper's point being that the
attack scales to *arbitrary* victims because it needs nothing
victim-specific beyond the phone number.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.attack.executor import ChainExecutionResult, ChainExecutor
from repro.attack.interception import SnifferInterception
from repro.attack.recon import PhishingWifi, SocialEngineeringDatabase
from repro.catalog.builder import DeployedEcosystem
from repro.core.actfort import ActFort
from repro.model.factors import Platform
from repro.telecom.cipher import CrackModel
from repro.telecom.sniffer import OsmocomSniffer


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of one random-attack campaign."""

    cell_id: str
    target: str
    harvested_numbers: Tuple[str, ...]
    executions: Dict[str, ChainExecutionResult]

    @property
    def victims_compromised(self) -> Tuple[str, ...]:
        """Phone numbers whose target account fell."""
        return tuple(
            phone
            for phone, result in self.executions.items()
            if result.success
        )

    @property
    def success_rate(self) -> float:
        """Fraction of harvested marks whose target account fell."""
        if not self.executions:
            return 0.0
        return len(self.victims_compromised) / len(self.executions)

    def describe(self) -> str:
        """Compact campaign summary."""
        lines = [
            f"random attack in cell {self.cell_id!r} against {self.target!r}:",
            f"  phishing Wi-Fi harvested {len(self.harvested_numbers)} numbers",
            f"  compromised {len(self.victims_compromised)}"
            f"/{len(self.executions)} "
            f"({100 * self.success_rate:.0f}%)",
        ]
        return "\n".join(lines)


class RandomAttackCampaign:
    """Phishing-Wi-Fi bootstrap + chain execution against a whole cell."""

    def __init__(
        self,
        deployed: DeployedEcosystem,
        cell_id: str,
        target: str,
        platform: Optional[Platform] = None,
        wifi_hit_rate: float = 0.6,
        se_database: Optional[SocialEngineeringDatabase] = None,
    ) -> None:
        if not deployed.internet.has_service(target):
            raise KeyError(f"no service {target!r} in the deployment")
        self._deployed = deployed
        self._cell_id = cell_id
        self._target = target
        self._platform = platform
        self._wifi_hit_rate = wifi_hit_rate
        self._se_database = se_database

    def run(self) -> CampaignResult:
        """Execute the campaign; one sniffer rig serves every mark."""
        deployed = self._deployed
        wifi = PhishingWifi(
            deployed.network,
            self._cell_id,
            hit_rate=self._wifi_hit_rate,
            rng=deployed.seeds.stream("phishing-wifi"),
        )
        harvested = wifi.harvest()

        sniffer = OsmocomSniffer(
            deployed.network,
            self._cell_id,
            monitors=16,
            crack_model=CrackModel(rng=deployed.seeds.stream("campaign-crack")),
        )
        interception = SnifferInterception(sniffer, deployed.clock)

        actfort = ActFort.from_ecosystem(deployed.ecosystem)
        executions: Dict[str, ChainExecutionResult] = {}
        for phone in harvested:
            dossier = (
                self._se_database.lookup_by_phone(phone)
                if self._se_database is not None
                else None
            )
            victim_email = self._email_of(phone)
            provider = (
                deployed.internet.email_provider_for(victim_email)
                if victim_email is not None
                else None
            )
            chain = actfort.attack_chain(
                self._target, platform=self._platform, email_provider=provider
            )
            if chain is None:
                continue
            executor = ChainExecutor(deployed, interception, dossier=dossier)
            executions[phone] = executor.execute(chain, phone)
        return CampaignResult(
            cell_id=self._cell_id,
            target=self._target,
            harvested_numbers=harvested,
            executions=executions,
        )

    def _email_of(self, phone: str) -> Optional[str]:
        for victim in self._deployed.victims:
            if victim.cellphone_number == phone:
                return victim.email_address
        return None
