"""The paper's real-world case studies (Section V-B) as runnable scenarios.

- **Case I** -- Baidu Wallet: the SMS code works as a one-time sign-in
  token; once in, the attacker makes a QR payment.  No intermediate
  account needed.
- **Case II** -- PayPal: resetting the password needs both an SMS code and
  an email code, so the attacker first resets the victim's Gmail-class
  account with an intercepted SMS code, then harvests PayPal's email token
  from the compromised mailbox.
- **Case III** -- Alipay: the mobile app's citizen-ID + SMS reset falls once
  the attacker pulls the full citizen ID off Ctrip (whose sign-in is an
  SMS one-time token); the web client additionally offers a customer
  service path that harvested personal information can social-engineer.

Each scenario builds a seed-service deployment, asks ActFort for the
attack path, executes it with real SMS interception on the simulated GSM
network, and returns a :class:`ScenarioResult` transcript.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.attack.executor import ChainExecutionResult, ChainExecutor
from repro.attack.interception import SnifferInterception
from repro.attack.recon import SocialEngineeringDatabase, VictimDossier
from repro.catalog.builder import CatalogBuilder, DeployedEcosystem
from repro.catalog.seeds import seed_profiles
from repro.catalog.spec import CatalogSpec
from repro.core.actfort import ActFort
from repro.core.strategy import AttackChain
from repro.model.attacker import AttackerProfile
from repro.model.factors import Platform
from repro.model.identity import Identity
from repro.telecom.cipher import CrackModel
from repro.telecom.network import RadioTech
from repro.telecom.sniffer import OsmocomSniffer


@dataclasses.dataclass(frozen=True)
class ScenarioResult:
    """Everything one case-study run produced."""

    name: str
    narrative: str
    chain: AttackChain
    execution: ChainExecutionResult
    payment_receipt: Optional[str] = None

    @property
    def success(self) -> bool:
        """Whether the full scenario (chain + final action) succeeded."""
        return self.execution.success

    def describe(self) -> str:
        """Multi-line transcript."""
        lines = [f"=== {self.name} ===", self.narrative, ""]
        lines.append(self.chain.describe())
        lines.append(self.execution.describe())
        if self.payment_receipt is not None:
            lines.append(f"payment authorized: {self.payment_receipt}")
        return "\n".join(lines)


def deploy_seed_ecosystem(seed: int = 2021, victims: int = 8) -> DeployedEcosystem:
    """A live deployment containing only the paper's named services."""
    spec = CatalogSpec(
        total_services=len(seed_profiles()),
        victims=victims,
        cells=1,
    )
    builder = CatalogBuilder(spec, seed=seed)
    return builder.deploy(victim_tech=RadioTech.GSM)


def _sniffer_executor(
    deployed: DeployedEcosystem,
    victim: Identity,
    dossier: Optional[VictimDossier] = None,
) -> ChainExecutor:
    cell = deployed.cell_of(victim)
    sniffer = OsmocomSniffer(
        deployed.network,
        cell,
        monitors=16,
        crack_model=CrackModel(rng=deployed.seeds.stream("scenario-crack")),
    )
    interception = SnifferInterception(sniffer, deployed.clock)
    return ChainExecutor(deployed, interception, dossier=dossier)


def _victim_with_provider(
    deployed: DeployedEcosystem, domain: str
) -> Identity:
    for victim in deployed.victims:
        if victim.email_address.endswith("@" + domain):
            return victim
    raise RuntimeError(
        f"no deployed victim uses the {domain!r} email domain; "
        "increase the victim count or change the seed"
    )


def run_case_i_baidu_wallet(
    deployed: Optional[DeployedEcosystem] = None,
) -> ScenarioResult:
    """Case I: direct SMS one-time-token login, then a QR payment."""
    deployed = deployed if deployed is not None else deploy_seed_ecosystem()
    victim = deployed.victim(0)
    actfort = ActFort.from_ecosystem(deployed.ecosystem)
    chain = actfort.attack_chain("baidu_wallet", platform=Platform.MOBILE)
    if chain is None:
        raise RuntimeError("ActFort found no path to baidu_wallet")
    executor = _sniffer_executor(deployed, victim)
    execution = executor.execute(chain, victim.cellphone_number)

    receipt = None
    if execution.success and execution.target_session is not None:
        wallet = deployed.internet.service("baidu_wallet")
        receipt = wallet.authorize_payment(execution.target_session, 99.0)
    return ScenarioResult(
        name="Case I: Baidu Wallet",
        narrative=(
            "SMS code used as a one-time token to log straight into the "
            "wallet; QR payment follows with no intermediate account."
        ),
        chain=chain,
        execution=execution,
        payment_receipt=receipt,
    )


def run_case_ii_paypal_via_gmail(
    deployed: Optional[DeployedEcosystem] = None,
) -> ScenarioResult:
    """Case II: reset Gmail by SMS, then harvest PayPal's email token."""
    deployed = deployed if deployed is not None else deploy_seed_ecosystem()
    victim = _victim_with_provider(deployed, "gmail.test")
    provider = deployed.internet.email_provider_for(victim.email_address)
    actfort = ActFort.from_ecosystem(deployed.ecosystem)
    chain = actfort.attack_chain(
        "paypal", platform=Platform.WEB, email_provider=provider
    )
    if chain is None:
        raise RuntimeError("ActFort found no path to paypal")
    executor = _sniffer_executor(deployed, victim)
    execution = executor.execute(chain, victim.cellphone_number)
    return ScenarioResult(
        name="Case II: PayPal via Gmail",
        narrative=(
            "PayPal demands SMS + email codes; the email account falls to "
            "an intercepted SMS reset first, then yields PayPal's token."
        ),
        chain=chain,
        execution=execution,
    )


def run_case_iii_alipay_via_ctrip(
    deployed: Optional[DeployedEcosystem] = None,
    web_variant: bool = False,
) -> ScenarioResult:
    """Case III: harvest the citizen ID from Ctrip, then reset Alipay.

    With ``web_variant`` the scenario targets the web client instead, whose
    additional customer-service option falls to social engineering with the
    harvested dossier (and requires the stronger attacker profile).
    """
    deployed = deployed if deployed is not None else deploy_seed_ecosystem()
    victim = deployed.victim(0)
    dossier: Optional[VictimDossier] = None
    if web_variant:
        attacker = AttackerProfile.with_se_database()
        se_db = SocialEngineeringDatabase(
            deployed.victims, rng=deployed.seeds.stream("se-db")
        )
        dossier = se_db.lookup(victim.person_id)
        platform = Platform.WEB
        narrative = (
            "Web client: the customer-service reset option falls to social "
            "engineering once enough personal facts are harvested."
        )
    else:
        attacker = AttackerProfile.baseline()
        platform = Platform.MOBILE
        narrative = (
            "Ctrip's SMS one-time login exposes the full citizen ID in "
            "Frequent Travelers Info; citizen ID + SMS resets Alipay."
        )
    actfort = ActFort.from_ecosystem(deployed.ecosystem, attacker=attacker)
    chain = actfort.attack_chain("alipay", platform=platform)
    if chain is None:
        raise RuntimeError("ActFort found no path to alipay")
    executor = _sniffer_executor(deployed, victim, dossier=dossier)
    execution = executor.execute(chain, victim.cellphone_number)

    receipt = None
    if execution.success and execution.target_session is not None:
        alipay = deployed.internet.service("alipay")
        receipt = alipay.authorize_payment(execution.target_session, 250.0)
    return ScenarioResult(
        name=(
            "Case III: Alipay via Ctrip"
            + (" (web / customer service)" if web_variant else " (mobile)")
        ),
        narrative=narrative,
        chain=chain,
        execution=execution,
        payment_receipt=receipt,
    )


def run_all_cases(
    seed: int = 2021,
) -> Tuple[ScenarioResult, ScenarioResult, ScenarioResult]:
    """Run Cases I-III on fresh deployments (as the paper did, separately)."""
    return (
        run_case_i_baidu_wallet(deploy_seed_ecosystem(seed)),
        run_case_ii_paypal_via_gmail(deploy_seed_ecosystem(seed)),
        run_case_iii_alipay_via_ctrip(deploy_seed_ecosystem(seed)),
    )
