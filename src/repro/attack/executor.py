"""Replaying an ActFort attack chain against the simulated internet.

The :class:`ChainExecutor` is step 3 of the Chain Reaction Attack
("high-value account intrusion"): it takes the
:class:`~repro.core.strategy.AttackChain` the strategy engine produced and
actually performs each takeover -- requesting OTP codes and intercepting
them over the air, harvesting every profile page of each fallen account,
combining masked views into full values (Insight 4), reading compromised
mailboxes for email codes (Case II), presenting harvested dossiers to
customer service (Case III's web path) -- until the target account is under
attacker control.

The executor only ever uses attacker-legitimate powers: the victim's phone
number from recon, the interception rig, and whatever fell out of earlier
steps.  It never touches victim-side state (handsets, device secrets).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.attack.interception import InterceptionError, SMSInterceptor
from repro.attack.recon import VictimDossier
from repro.catalog.builder import DeployedEcosystem
from repro.core.strategy import AttackChain, ChainStep
from repro.core.tdg import DOSSIER_KINDS
from repro.model.account import AuthPurpose
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    info_satisfying_factor,
)
from repro.model.identity import MaskedValue, combine_views
from repro.websim.errors import RateLimited, WebSimError
from repro.websim.service import SimulatedService
from repro.websim.sessions import Session

_CODE_RE = re.compile(r"code is (\d+)")


class AttackFailure(Exception):
    """A chain step could not be completed."""


@dataclasses.dataclass(frozen=True)
class StepResult:
    """Outcome of one chain step."""

    service: str
    path_description: str
    ok: bool
    detail: str
    harvested_kinds: Tuple[PersonalInfoKind, ...] = ()


@dataclasses.dataclass(frozen=True)
class ChainExecutionResult:
    """Outcome of one full chain execution."""

    chain: AttackChain
    success: bool
    steps: Tuple[StepResult, ...]
    harvested: Mapping[PersonalInfoKind, str]
    target_session: Optional[Session]
    failure_reason: Optional[str] = None

    def describe(self) -> str:
        """Human-readable execution transcript."""
        lines = [
            f"chain execution -> {self.chain.target}: "
            + ("SUCCESS" if self.success else f"FAILED ({self.failure_reason})")
        ]
        for step in self.steps:
            marker = "ok " if step.ok else "FAIL"
            lines.append(f"  [{marker}] {step.service}: {step.detail}")
        return "\n".join(lines)


class ChainExecutor:
    """Executes attack chains against one deployed ecosystem."""

    def __init__(
        self,
        deployed: DeployedEcosystem,
        interceptor: SMSInterceptor,
        dossier: Optional[VictimDossier] = None,
    ) -> None:
        self._deployed = deployed
        self._internet = deployed.internet
        self._clock = deployed.clock
        self._interceptor = interceptor
        self._dossier = dossier

    def execute(
        self, chain: AttackChain, victim_phone: str
    ) -> ChainExecutionResult:
        """Run ``chain`` against the victim reachable at ``victim_phone``."""
        harvested: Dict[PersonalInfoKind, str] = {
            PersonalInfoKind.CELLPHONE_NUMBER: victim_phone
        }
        if self._dossier is not None:
            harvested.update(self._dossier.facts)
        views: Dict[PersonalInfoKind, List[MaskedValue]] = {}
        sessions: Dict[str, Session] = {}
        step_results: List[StepResult] = []

        for step in chain.steps:
            try:
                session, gained = self._execute_step(
                    step, victim_phone, harvested, views, sessions
                )
            except (AttackFailure, WebSimError, InterceptionError) as exc:
                step_results.append(
                    StepResult(
                        service=step.service,
                        path_description=step.path.describe(),
                        ok=False,
                        detail=str(exc),
                    )
                )
                return ChainExecutionResult(
                    chain=chain,
                    success=False,
                    steps=tuple(step_results),
                    harvested=dict(harvested),
                    target_session=None,
                    failure_reason=f"{step.service}: {exc}",
                )
            sessions[step.service] = session
            step_results.append(
                StepResult(
                    service=step.service,
                    path_description=step.path.describe(),
                    ok=True,
                    detail=f"took over via {step.path.describe()}",
                    harvested_kinds=tuple(sorted(gained, key=lambda k: k.value)),
                )
            )

        return ChainExecutionResult(
            chain=chain,
            success=True,
            steps=tuple(step_results),
            harvested=dict(harvested),
            target_session=sessions.get(chain.target),
        )

    # ------------------------------------------------------------------
    # One step
    # ------------------------------------------------------------------

    def _execute_step(
        self,
        step: ChainStep,
        victim_phone: str,
        harvested: Dict[PersonalInfoKind, str],
        views: Dict[PersonalInfoKind, List[MaskedValue]],
        sessions: Dict[str, Session],
    ) -> Tuple[Session, Tuple[PersonalInfoKind, ...]]:
        service = self._internet.service(step.service)
        path = step.path
        supplied: Dict[CredentialFactor, object] = {}
        for factor in sorted(path.factors, key=lambda f: f.value):
            supplied[factor] = self._supply_factor(
                factor, step, service, victim_phone, harvested, views, sessions
            )

        if path.purpose is AuthPurpose.SIGN_IN:
            session = service.sign_in(path.platform, victim_phone, supplied)
        else:
            session = service.reset_password(
                path.platform,
                victim_phone,
                supplied,
                new_password=f"pwned-{step.service}",
            )
        gained = self._scrape(service, session, harvested, views)
        return session, gained

    def _scrape(
        self,
        service: SimulatedService,
        session: Session,
        harvested: Dict[PersonalInfoKind, str],
        views: Dict[PersonalInfoKind, List[MaskedValue]],
    ) -> Tuple[PersonalInfoKind, ...]:
        """Read every platform's profile page of a fallen account."""
        gained: List[PersonalInfoKind] = []
        for platform in sorted(
            service.profile.platforms, key=lambda p: p.value
        ):
            page = service.profile_page(session, platform)
            for kind, value in page.complete_values().items():
                if kind not in harvested:
                    harvested[kind] = value
                    gained.append(kind)
            for kind, view in page.masked_views().items():
                views.setdefault(kind, []).append(view)
                # Combining rule: if the accumulated views now reconstruct
                # the full value, promote it to harvested (Insight 4).
                if kind not in harvested:
                    try:
                        combined = combine_views(views[kind])
                    except ValueError:
                        combined = None
                    if combined is not None:
                        harvested[kind] = combined
                        gained.append(kind)
        return tuple(gained)

    # ------------------------------------------------------------------
    # Factor acquisition
    # ------------------------------------------------------------------

    def _supply_factor(
        self,
        factor: CredentialFactor,
        step: ChainStep,
        service: SimulatedService,
        victim_phone: str,
        harvested: Dict[PersonalInfoKind, str],
        views: Dict[PersonalInfoKind, List[MaskedValue]],
        sessions: Dict[str, Session],
    ) -> object:
        if factor is CredentialFactor.SMS_CODE:
            return self._intercept_sms_code(
                service, victim_phone, step.path.purpose
            )
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            return self._read_email_code(
                factor, service, victim_phone, harvested, sessions, step
            )
        if factor is CredentialFactor.LINKED_ACCOUNT:
            for provider in sorted(step.path.linked_providers):
                if provider in sessions:
                    return sessions[provider]
            raise AttackFailure(
                f"no controlled session for any linked provider of "
                f"{step.service!r}"
            )
        if factor is CredentialFactor.CUSTOMER_SERVICE:
            dossier = {
                kind: harvested[kind]
                for kind in DOSSIER_KINDS
                if kind in harvested
            }
            if PersonalInfoKind.ACQUAINTANCE_NAME in dossier:
                dossier[PersonalInfoKind.ACQUAINTANCE_NAME] = dossier[
                    PersonalInfoKind.ACQUAINTANCE_NAME
                ].split(";")[0]
            if len(dossier) < 3:
                raise AttackFailure(
                    "dossier too thin to social-engineer customer service"
                )
            return dossier
        if factor is CredentialFactor.USERNAME:
            for kind in (PersonalInfoKind.USER_ID, PersonalInfoKind.EMAIL_ADDRESS):
                if kind in harvested:
                    return harvested[kind]
            raise AttackFailure("no harvested handle usable as username")
        if factor is CredentialFactor.ACQUAINTANCE_NAME:
            value = harvested.get(PersonalInfoKind.ACQUAINTANCE_NAME)
            if value is None:
                chat = harvested.get(PersonalInfoKind.CHAT_HISTORY)
                if chat is None:
                    raise AttackFailure("no acquaintance information harvested")
                raise AttackFailure(
                    "chat history harvested but no acquaintance extraction "
                    "implemented for this marker value"
                )
            return value.split(";")[0]
        # Generic knowledge factors: any harvested kind that satisfies the
        # factor per the transformation mapping.
        for kind in sorted(info_satisfying_factor(factor), key=lambda k: k.value):
            if kind in harvested:
                return harvested[kind]
        # Last resort: combine masked views gathered so far.
        for kind in sorted(info_satisfying_factor(factor), key=lambda k: k.value):
            if kind in views:
                try:
                    combined = combine_views(views[kind])
                except ValueError:
                    combined = None
                if combined is not None:
                    harvested[kind] = combined
                    return combined
        raise AttackFailure(f"cannot supply credential factor {factor}")

    def _intercept_sms_code(
        self,
        service: SimulatedService,
        victim_phone: str,
        purpose: AuthPurpose,
    ) -> str:
        def trigger() -> None:
            try:
                service.request_otp(
                    victim_phone, CredentialFactor.SMS_CODE, purpose
                )
            except RateLimited as exc:
                # The attacker simply waits out the resend window.
                self._clock.advance(exc.retry_after + 1.0)
                service.request_otp(
                    victim_phone, CredentialFactor.SMS_CODE, purpose
                )

        ttl = service.otp_manager.policy.ttl
        return self._interceptor.obtain_code(service.name, trigger, otp_ttl=ttl)

    def _read_email_code(
        self,
        factor: CredentialFactor,
        service: SimulatedService,
        victim_phone: str,
        harvested: Dict[PersonalInfoKind, str],
        sessions: Dict[str, Session],
        step: ChainStep,
    ) -> str:
        email = harvested.get(PersonalInfoKind.EMAIL_ADDRESS)
        if email is None:
            raise AttackFailure(
                "victim email address not yet harvested; cannot receive "
                "email codes"
            )
        provider_name = self._internet.email_provider_for(email)
        if provider_name is None:
            raise AttackFailure(f"no known provider for {email!r}")
        provider_session = sessions.get(provider_name)
        if provider_session is None:
            raise AttackFailure(
                f"email provider {provider_name!r} not compromised; "
                "cannot read the mailbox"
            )
        try:
            service.request_otp(victim_phone, factor, step.path.purpose)
        except RateLimited as exc:
            self._clock.advance(exc.retry_after + 1.0)
            service.request_otp(victim_phone, factor, step.path.purpose)
        messages = self._internet.read_mailbox(email, provider_session)
        for message in reversed(messages):
            if message.sender != service.name:
                continue
            match = _CODE_RE.search(message.body)
            if match:
                return match.group(1)
        raise AttackFailure(
            f"no email code from {service.name!r} found in {email!r}"
        )
