"""CLI entry point: ``python -m repro.serve --port 8400``.

Boots one :class:`~repro.serve.server.AnalysisServer` in the
foreground and serves until interrupted.  Every knob on
:class:`~repro.serve.shard.ServeConfig` that matters for a standalone
deployment is exposed as a flag; ``--port 0`` binds an ephemeral port
and prints the resolved address either way.
"""

from __future__ import annotations

import argparse

from repro.serve.server import AnalysisServer
from repro.serve.shard import ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the analysis facade as a multi-tenant HTTP tier.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8400, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--max-concurrent-per-tenant",
        type=int,
        default=ServeConfig.max_concurrent_per_tenant,
    )
    parser.add_argument(
        "--max-queue-per-tenant",
        type=int,
        default=ServeConfig.max_queue_per_tenant,
    )
    parser.add_argument(
        "--mutation-retries",
        type=int,
        default=ServeConfig.mutation_retries,
    )
    parser.add_argument(
        "--audit-path",
        default=None,
        help="NDJSON audit log destination (default: in-memory ring only)",
    )
    return parser


def main(argv=None) -> int:
    options = build_parser().parse_args(argv)
    config = ServeConfig(
        mutation_retries=options.mutation_retries,
        max_concurrent_per_tenant=options.max_concurrent_per_tenant,
        max_queue_per_tenant=options.max_queue_per_tenant,
        audit_path=options.audit_path,
    )
    server = AnalysisServer(
        host=options.host, port=options.port, config=config
    )
    server.start()
    print(f"serving on {server.url} (Ctrl-C to stop)", flush=True)
    try:
        server.join()
    except KeyboardInterrupt:  # noqa: Ctrl-C is the intended shutdown path
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
