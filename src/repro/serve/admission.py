"""Per-tenant admission control for the HTTP tier.

Each tenant gets a concurrency cap plus a bounded wait queue.  A request
either runs immediately (a slot is free), waits its turn (queue has
room), or is rejected -- and a rejection is *immediate*, never a timeout:
the caller gets :class:`AdmissionRejected` carrying the ``Retry-After``
hint, which the HTTP front-end turns into a 429.  Fairness within a
tenant is FIFO (`threading.Condition` wakes waiters in wait order under
CPython; each waiter re-checks its own ticket against the admitted
watermark, so a late waiter can never overtake an earlier one).

The controller is the *outermost* gate: a slot is held for the whole
request lifetime (including time spent queued at a shard), so the cap
bounds a tenant's total in-flight work, not just its CPU slice.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.obs import Instrumentation

__all__ = ["AdmissionRejected", "AdmissionController", "TenantGate"]


class AdmissionRejected(Exception):
    """Raised when a tenant's slots and wait queue are both full."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is at its concurrency cap and its "
            f"admission queue is full; retry after {retry_after:g}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class TenantGate:
    """One tenant's slot counter + FIFO wait queue."""

    def __init__(
        self,
        tenant: str,
        max_concurrent: int,
        max_queue: int,
        retry_after: float,
    ) -> None:
        if max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.tenant = tenant
        self._max_concurrent = max_concurrent
        self._max_queue = max_queue
        self._retry_after = retry_after
        self._lock = threading.Lock()
        self._slots_free = threading.Condition(self._lock)
        self._active = 0
        self._waiting = 0
        # FIFO tickets: a waiter runs only once every earlier ticket has.
        self._next_ticket = 0
        self._admitted_watermark = 0

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    def acquire(self) -> None:
        """Take a slot, waiting in FIFO order; raise
        :class:`AdmissionRejected` when cap and queue are both full."""
        with self._lock:
            if (
                self._active >= self._max_concurrent
                or self._next_ticket > self._admitted_watermark
            ):
                if self._waiting >= self._max_queue:
                    raise AdmissionRejected(self.tenant, self._retry_after)
                ticket = self._next_ticket
                self._next_ticket += 1
                self._waiting += 1
                try:
                    while (
                        self._active >= self._max_concurrent
                        or ticket > self._admitted_watermark
                    ):
                        self._slots_free.wait()
                finally:
                    self._waiting -= 1
                self._admitted_watermark += 1
            else:
                self._next_ticket += 1
                self._admitted_watermark += 1
            self._active += 1

    def release(self) -> None:
        with self._lock:
            self._active -= 1
            self._slots_free.notify_all()


class AdmissionController:
    """Tenant label -> :class:`TenantGate`, with serve-tier metrics.

    Gates are created on first sight of a tenant with the controller's
    default bounds (per-tenant overrides via :meth:`configure_tenant`).
    Use as a context manager factory::

        with controller.admit(tenant):
            ... handle the request ...
    """

    def __init__(
        self,
        max_concurrent: int = 8,
        max_queue: int = 16,
        retry_after: float = 1.0,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self._defaults = (max_concurrent, max_queue)
        self._retry_after = retry_after
        self._lock = threading.Lock()
        self._gates: Dict[str, TenantGate] = {}
        obs = (
            instrumentation
            if instrumentation is not None
            else Instrumentation()
        )
        self._rejects = obs.counter(
            "repro_serve_admission_rejects_total",
            "Requests rejected (429) at the tenant admission gate.",
            labels=("tenant",),
        )
        self._queue_depth = obs.gauge(
            "repro_serve_admission_queue_depth",
            "Requests waiting at the tenant admission gate.",
            labels=("tenant",),
        )
        self._occupancy = obs.gauge(
            "repro_serve_tenant_occupancy",
            "Requests a tenant currently has in flight past admission.",
            labels=("tenant",),
        )

    def configure_tenant(
        self, tenant: str, max_concurrent: int, max_queue: int
    ) -> None:
        """Pin one tenant's bounds (replaces any auto-created gate; safe
        only before that tenant has in-flight requests)."""
        with self._lock:
            self._gates[tenant] = TenantGate(
                tenant, max_concurrent, max_queue, self._retry_after
            )

    def gate(self, tenant: str) -> TenantGate:
        with self._lock:
            gate = self._gates.get(tenant)
            if gate is None:
                max_concurrent, max_queue = self._defaults
                gate = TenantGate(
                    tenant, max_concurrent, max_queue, self._retry_after
                )
                self._gates[tenant] = gate
            return gate

    def admit(self, tenant: str) -> "_AdmissionTicket":
        return _AdmissionTicket(self, self.gate(tenant))

    def depths(self) -> Dict[str, Tuple[int, int]]:
        """Tenant -> (active, waiting), for /observability."""
        with self._lock:
            gates = list(self._gates.values())
        return {gate.tenant: (gate.active, gate.waiting) for gate in gates}

    # -- metric updates (called by tickets) -----------------------------

    def _note_state(self, gate: TenantGate) -> None:
        self._queue_depth.labels(tenant=gate.tenant).set(gate.waiting)
        self._occupancy.labels(tenant=gate.tenant).set(gate.active)

    def _note_reject(self, gate: TenantGate) -> None:
        self._rejects.labels(tenant=gate.tenant).inc()


class _AdmissionTicket:
    """Context manager holding one admitted slot."""

    def __init__(
        self, controller: AdmissionController, gate: TenantGate
    ) -> None:
        self._controller = controller
        self._gate = gate

    def __enter__(self) -> "_AdmissionTicket":
        try:
            self._gate.acquire()
        except AdmissionRejected:
            self._controller._note_reject(self._gate)
            raise
        finally:
            self._controller._note_state(self._gate)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._gate.release()
        self._controller._note_state(self._gate)
