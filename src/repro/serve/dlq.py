"""The mutation dead-letter queue.

A mutation that decodes cleanly but keeps failing at apply time (after
the shard's capped-exponential-backoff retries) lands here instead of
vanishing: the entry carries the original wire document, the final
error, and the attempt count, so an operator can inspect, requeue, or
cancel it through the ``/v1/{tenant}/dead-letters`` endpoints.
Malformed documents never reach the queue -- they are a 400 at the HTTP
edge, because a request that cannot name a mutation has nothing to
retry.

State machine: an entry is born ``dead``; ``requeue`` marks it
``requeued`` and re-submits the mutation to its shard (a repeat failure
dead-letters *again* as a fresh entry, pointing back via
``retried_from``); ``cancel`` marks it ``cancelled``.  Entries are never
deleted -- the queue doubles as the failure audit trail.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["DeadLetter", "DeadLetterQueue"]


class DeadLetter:
    """One dead-lettered mutation (mutable state field, lock-guarded by
    the owning queue)."""

    __slots__ = (
        "id",
        "tenant",
        "session",
        "mutation",
        "error",
        "attempts",
        "state",
        "retried_from",
    )

    def __init__(
        self,
        id: str,
        tenant: str,
        session: str,
        mutation: Dict[str, Any],
        error: str,
        attempts: int,
        retried_from: Optional[str] = None,
    ) -> None:
        self.id = id
        self.tenant = tenant
        self.session = session
        self.mutation = mutation
        self.error = error
        self.attempts = attempts
        self.state = "dead"
        self.retried_from = retried_from

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "session": self.session,
            "mutation": self.mutation,
            "error": self.error,
            "attempts": self.attempts,
            "state": self.state,
            "retried_from": self.retried_from,
        }


class DeadLetterQueue:
    """Thread-safe id -> :class:`DeadLetter` store with tenant views."""

    def __init__(self, instrumentation=None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, DeadLetter] = {}
        self._next_id = 0
        self._counter = None
        if instrumentation is not None:
            self._counter = instrumentation.counter(
                "repro_serve_dead_letters_total",
                "Mutations dead-lettered after retry exhaustion.",
                labels=("tenant",),
            )

    def add(
        self,
        tenant: str,
        session: str,
        mutation: Dict[str, Any],
        error: str,
        attempts: int,
        retried_from: Optional[str] = None,
    ) -> DeadLetter:
        with self._lock:
            self._next_id += 1
            entry = DeadLetter(
                id=f"dl-{self._next_id}",
                tenant=tenant,
                session=session,
                mutation=mutation,
                error=error,
                attempts=attempts,
                retried_from=retried_from,
            )
            self._entries[entry.id] = entry
        if self._counter is not None:
            self._counter.labels(tenant=tenant).inc()
        return entry

    def get(self, tenant: str, entry_id: str) -> Optional[DeadLetter]:
        """The entry, or ``None`` when unknown or owned by another tenant
        (tenants can never see each other's failures)."""
        with self._lock:
            entry = self._entries.get(entry_id)
            if entry is None or entry.tenant != tenant:
                return None
            return entry

    def list(self, tenant: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                entry.to_dict()
                for entry in self._entries.values()
                if entry.tenant == tenant
            ]

    def mark(self, entry: DeadLetter, state: str) -> None:
        with self._lock:
            entry.state = state
