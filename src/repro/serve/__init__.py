"""The multi-tenant serving tier: HTTP front-end over session shards.

This package turns the :class:`~repro.api.AnalysisService` facade into a
running, dependency-free service (stdlib ``http.server`` only):

- :mod:`repro.serve.shard` -- the worker pool.  Every ``(tenant,
  session)`` gets a single-writer event loop that owns its service
  exclusively: queries coalesce into shared-plan batches, mutations
  serialize per shard with capped-backoff retries, and snapshot
  migration swaps a session onto a fresh worker bit-for-bit.
- :mod:`repro.serve.admission` -- per-tenant concurrency caps with a
  bounded FIFO wait queue; overflow is an immediate 429 +
  ``Retry-After``.
- :mod:`repro.serve.dlq` / :mod:`repro.serve.audit` -- retry-exhausted
  mutations dead-letter (list/requeue/cancel endpoints) and every
  mutation receipt lands in an NDJSON audit log.
- :mod:`repro.serve.server` -- the HTTP route table, ``/health`` /
  ``/ready`` / ``/metrics`` included.

See ``docs/serving.md`` for the tenancy model, admission semantics, and
the snapshot compatibility contract.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionRejected,
    TenantGate,
)
from repro.serve.audit import AuditLog
from repro.serve.dlq import DeadLetter, DeadLetterQueue
from repro.serve.server import AnalysisServer
from repro.serve.shard import (
    DeadLettered,
    ServeConfig,
    Shard,
    ShardManager,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AnalysisServer",
    "AuditLog",
    "DeadLetter",
    "DeadLetterQueue",
    "DeadLettered",
    "ServeConfig",
    "Shard",
    "ShardManager",
    "TenantGate",
]
