"""The stdlib HTTP front-end over the shard pool.

``AnalysisServer`` binds a :class:`http.server.ThreadingHTTPServer`
(thread per connection, keep-alive HTTP/1.1) in front of a
:class:`~repro.serve.shard.ShardManager`: the HTTP thread does admission
and wire decode/encode only, while every touch of analysis state rides
the target shard's single-writer inbox.  JSON in, JSON out, through the
codecs in :mod:`repro.api.wire` and :mod:`repro.utils.serialization` --
no third-party dependencies anywhere in the tier.

Route map (all bodies JSON)::

    GET  /health                                liveness (always 200)
    GET  /ready                                 503 until every shard worker is live
    GET  /metrics                               serve-tier Prometheus text
    GET  /observability                         serve-tier JSON snapshot
    POST /v1/{t}/sessions                       create: {"name", "services"|"snapshot", ...}
    GET  /v1/{t}/sessions                       list session names
    GET  /v1/{t}/sessions/{s}                   version/size/shard info
    POST /v1/{t}/sessions/{s}/query             one kind-tagged query document
    POST /v1/{t}/sessions/{s}/batch             {"queries": [...]} (one shard plan)
    POST /v1/{t}/sessions/{s}/mutations         one mutation document -> receipt
    GET  /v1/{t}/sessions/{s}/snapshot          snapshot document (with warm results)
    POST /v1/{t}/sessions/{s}/migrate           snapshot/restore onto a fresh shard
    GET  /v1/{t}/sessions/{s}/observability     per-session engine-layer snapshot
    GET  /v1/{t}/sessions/{s}/metrics           per-session Prometheus text
    GET  /v1/{t}/dead-letters                   list this tenant's DLQ entries
    POST /v1/{t}/dead-letters/{id}/requeue      re-apply through the shard
    POST /v1/{t}/dead-letters/{id}/cancel       mark cancelled
    GET  /v1/{t}/audit?tail=N                   this tenant's audit tail

Error contract: malformed/unknown documents are 400 (never
dead-lettered), unknown sessions/entries are 404, session-name
collisions are 409, admission overflow is 429 with ``Retry-After``, and
a retry-exhausted mutation is a 500 whose body carries the dead-letter
entry id -- the failure is preserved, queryable, and requeueable, never
swallowed.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.api.wire import query_from_dict, result_to_dict
from repro.obs import DEFAULT_SECONDS_BUCKETS, Instrumentation, monotonic
from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.shard import DeadLettered, ServeConfig, ShardManager
from repro.utils.serialization import mutation_from_dict

__all__ = ["AnalysisServer"]


class _Response:
    """One dispatch result: payload + status + content type + headers."""

    __slots__ = ("payload", "status", "content_type", "headers")

    def __init__(
        self,
        payload: Any,
        status: int = 200,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.payload = payload
        self.status = status
        self.content_type = content_type
        self.headers = headers or {}

    def body(self) -> bytes:
        if self.content_type == "application/json":
            return json.dumps(self.payload).encode("utf-8")
        return str(self.payload).encode("utf-8")


class _HTTPError(Exception):
    """Dispatch-level error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class AnalysisServer:
    """Multi-tenant HTTP tier: admission -> shard routing -> codecs.

    ``port=0`` binds an ephemeral port (see :attr:`address`); call
    :meth:`start` to serve on a background thread and :meth:`stop` to
    shut the listener and every shard worker down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServeConfig] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.instrumentation = (
            instrumentation
            if instrumentation is not None
            else Instrumentation()
        )
        self.manager = ShardManager(
            config=self.config, instrumentation=self.instrumentation
        )
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent_per_tenant,
            max_queue=self.config.max_queue_per_tenant,
            retry_after=self.config.retry_after_seconds,
            instrumentation=self.instrumentation,
        )
        self._requests = self.instrumentation.counter(
            "repro_serve_requests_total",
            "HTTP requests, by tenant ('-' = infrastructure), route, "
            "and status.",
            labels=("tenant", "route", "status"),
        )
        self._latency = self.instrumentation.histogram(
            "repro_serve_request_seconds",
            "End-to-end request latency per tenant (admission wait "
            "included).",
            labels=("tenant",),
            buckets=DEFAULT_SECONDS_BUCKETS,
        )
        tier = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            server_version = "repro-serve/1"

            def do_GET(self) -> None:
                tier._handle(self, "GET")

            def do_POST(self) -> None:
                tier._handle(self, "POST")

            def log_message(self, format: str, *args: Any) -> None:
                # Request logging goes through the metrics registry and
                # the audit log, not stderr.
                return

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- resolves ephemeral port 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AnalysisServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-listener",
            daemon=True,
        )
        self._thread.start()
        return self

    def join(self) -> None:
        """Block the calling thread until the listener stops."""
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.manager.close()

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- request handling -------------------------------------------------

    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        started = monotonic()
        parsed = urllib.parse.urlparse(handler.path)
        parts = [part for part in parsed.path.split("/") if part]
        params = urllib.parse.parse_qs(parsed.query)
        tenant = (
            parts[1] if len(parts) >= 2 and parts[0] == "v1" else None
        )
        route = self._route_name(parts)
        try:
            body = self._read_body(handler)
            if tenant is not None:
                with self.admission.admit(tenant):
                    response = self._dispatch(
                        method, parts, params, body
                    )
            else:
                response = self._dispatch(method, parts, params, body)
        except AdmissionRejected as exc:
            response = _Response(
                {"error": str(exc), "retry_after": exc.retry_after},
                status=429,
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
        except DeadLettered as exc:
            response = _Response(
                {
                    "error": str(exc),
                    "outcome": "dead_lettered",
                    "dead_letter": exc.entry.to_dict(),
                },
                status=500,
            )
        except _HTTPError as exc:
            response = _Response({"error": str(exc)}, status=exc.status)
        except (ValueError, TypeError) as exc:
            response = _Response({"error": str(exc)}, status=400)
        except KeyError as exc:
            response = _Response({"error": str(exc)}, status=404)
        except TimeoutError as exc:
            response = _Response({"error": str(exc)}, status=504)
        except Exception as exc:
            # Last-resort guard: report the failure to the client (and
            # the metrics) rather than letting the socket thread die.
            response = _Response(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )
        self._send(handler, response)
        label = tenant if tenant is not None else "-"
        self._requests.labels(
            tenant=label, route=route, status=str(response.status)
        ).inc()
        self._latency.labels(tenant=label).observe(
            monotonic() - started
        )

    @staticmethod
    def _route_name(parts) -> str:
        if not parts:
            return "root"
        if parts[0] != "v1":
            return parts[0]
        if len(parts) >= 3 and parts[2] == "sessions":
            return (
                f"sessions/{parts[4]}" if len(parts) >= 5 else "sessions"
            )
        if len(parts) >= 3 and parts[2] == "dead-letters":
            return (
                f"dead-letters/{parts[4]}"
                if len(parts) >= 5
                else "dead-letters"
            )
        if len(parts) >= 3:
            return parts[2]
        return "v1"

    @staticmethod
    def _read_body(handler: BaseHTTPRequestHandler) -> Optional[Dict]:
        length = int(handler.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = handler.rfile.read(length)
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"request body is not JSON: {exc}")
        if not isinstance(document, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return document

    @staticmethod
    def _send(
        handler: BaseHTTPRequestHandler, response: _Response
    ) -> None:
        body = response.body()
        try:
            handler.send_response(response.status)
            handler.send_header("Content-Type", response.content_type)
            handler.send_header("Content-Length", str(len(body)))
            for name, value in response.headers.items():
                handler.send_header(name, value)
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response; the request itself was
            # served (and audited) -- nothing is lost but the reply.
            handler.close_connection = True

    # -- dispatch ----------------------------------------------------------

    def _dispatch(
        self, method: str, parts, params, body
    ) -> _Response:
        if not parts:
            raise _HTTPError(404, "no route")
        head = parts[0]
        if head == "health" and method == "GET":
            return _Response({"status": "ok"})
        if head == "ready" and method == "GET":
            ready = self.manager.ready()
            return _Response(
                {"ready": ready}, status=200 if ready else 503
            )
        if head == "metrics" and method == "GET":
            return _Response(
                self.instrumentation.prometheus(),
                content_type="text/plain; version=0.0.4",
            )
        if head == "observability" and method == "GET":
            snapshot = self.instrumentation.snapshot()
            snapshot["shards"] = self.manager.describe()["shards"]
            snapshot["admission"] = {
                tenant: {"active": active, "waiting": waiting}
                for tenant, (active, waiting) in
                self.admission.depths().items()
            }
            return _Response(snapshot)
        if head == "v1" and len(parts) >= 3:
            return self._dispatch_tenant(method, parts, params, body)
        raise _HTTPError(404, f"no route for {'/'.join(parts)!r}")

    def _dispatch_tenant(
        self, method: str, parts, params, body
    ) -> _Response:
        tenant, area = parts[1], parts[2]
        rest = parts[3:]
        if area == "sessions":
            return self._dispatch_sessions(
                method, tenant, rest, params, body
            )
        if area == "dead-letters":
            return self._dispatch_dead_letters(method, tenant, rest)
        if area == "audit" and method == "GET" and not rest:
            limit = int(params.get("tail", ["100"])[0])
            return _Response(
                {"entries": self.manager.audit.tail(tenant, limit)}
            )
        raise _HTTPError(404, f"no route for {'/'.join(parts)!r}")

    def _dispatch_sessions(
        self, method: str, tenant: str, rest, params, body
    ) -> _Response:
        if not rest:
            if method == "GET":
                return _Response(
                    {"sessions": self.manager.sessions(tenant)}
                )
            if method == "POST":
                return self._create_session(tenant, body)
            raise _HTTPError(405, f"{method} not allowed on sessions")
        name = rest[0]
        sub = rest[1] if len(rest) > 1 else None
        shard = self.manager.shard(tenant, name)
        if shard is None:
            raise _HTTPError(
                404, f"tenant {tenant!r} has no session {name!r}"
            )
        if sub is None and method == "GET":
            return _Response(shard.info())
        if sub == "query" and method == "POST":
            if body is None:
                raise _HTTPError(400, "query body required")
            query = query_from_dict(body)
            (result,) = shard.execute((query,))
            return _Response(result_to_dict(result))
        if sub == "batch" and method == "POST":
            if body is None or "queries" not in body:
                raise _HTTPError(400, "body must carry 'queries'")
            queries = tuple(
                query_from_dict(entry) for entry in body["queries"]
            )
            results = shard.execute(queries)
            return _Response(
                {"results": [result_to_dict(r) for r in results]}
            )
        if sub == "mutations" and method == "POST":
            if body is None:
                raise _HTTPError(400, "mutation body required")
            mutation = mutation_from_dict(body)
            receipt = shard.apply(mutation, body)
            return _Response(receipt)
        if sub == "snapshot" and method == "GET":
            return _Response(
                shard.call(lambda service: service.snapshot())
            )
        if sub == "migrate" and method == "POST":
            return _Response(self.manager.migrate(tenant, name))
        if sub == "observability" and method == "GET":
            return _Response(
                shard.call(
                    lambda service: service.observability_snapshot()
                )
            )
        if sub == "metrics" and method == "GET":
            return _Response(
                shard.call(
                    lambda service: service.prometheus_metrics()
                ),
                content_type="text/plain; version=0.0.4",
            )
        raise _HTTPError(
            404, f"no session route {sub!r} for method {method}"
        )

    def _create_session(self, tenant: str, body) -> _Response:
        if body is None or "name" not in body:
            raise _HTTPError(400, "body must carry a session 'name'")
        try:
            created = self.manager.create_session(
                tenant,
                body["name"],
                services=body.get("services"),
                seed=body.get("seed", 2021),
                attackers=body.get("attackers"),
                snapshot=body.get("snapshot"),
            )
        except KeyError as exc:
            raise _HTTPError(409, str(exc))
        return _Response(created, status=201)

    def _dispatch_dead_letters(
        self, method: str, tenant: str, rest
    ) -> _Response:
        if not rest and method == "GET":
            return _Response(
                {"dead_letters": self.manager.dlq.list(tenant)}
            )
        if len(rest) == 2 and method == "POST":
            entry_id, action = rest
            if action == "requeue":
                try:
                    return _Response(
                        self.manager.requeue_dead_letter(
                            tenant, entry_id
                        )
                    )
                except KeyError as exc:
                    raise _HTTPError(404, str(exc))
            if action == "cancel":
                try:
                    return _Response(
                        self.manager.cancel_dead_letter(
                            tenant, entry_id
                        )
                    )
                except KeyError as exc:
                    raise _HTTPError(404, str(exc))
        raise _HTTPError(404, "no dead-letter route")
