"""NDJSON audit log of mutation receipts.

Every mutation that reaches a shard leaves exactly one audit record --
``applied``, ``noop``, ``dead_lettered``, ``requeued``, or ``cancelled``
-- so the mutation history of a tenant is reconstructible from the log
alone.  Records append to an NDJSON file when a path is configured and
always land in a bounded in-memory ring, which is what the
``/v1/{tenant}/audit`` endpoint serves (the file is the durable copy,
the ring is the queryable tail).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["AuditLog"]


class AuditLog:
    """Thread-safe NDJSON writer + bounded in-memory tail."""

    def __init__(
        self, path: Optional[str] = None, ring_size: int = 4096
    ) -> None:
        self._path = path
        self._lock = threading.Lock()
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=ring_size)
        self._seq = 0
        self._file = open(path, "a", encoding="utf-8") if path else None

    @property
    def path(self) -> Optional[str]:
        return self._path

    def record(
        self,
        tenant: str,
        session: str,
        outcome: str,
        mutation: Dict[str, Any],
        version: Optional[int] = None,
        delta: Optional[str] = None,
        attempts: Optional[int] = None,
        error: Optional[str] = None,
        dead_letter_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append one receipt; returns the record written."""
        with self._lock:
            self._seq += 1
            entry: Dict[str, Any] = {
                "seq": self._seq,
                "time": time.time(),  # noqa: wall-clock receipt timestamp
                "tenant": tenant,
                "session": session,
                "outcome": outcome,
                "mutation": mutation,
            }
            if version is not None:
                entry["version"] = version
            if delta is not None:
                entry["delta"] = delta
            if attempts is not None:
                entry["attempts"] = attempts
            if error is not None:
                entry["error"] = error
            if dead_letter_id is not None:
                entry["dead_letter_id"] = dead_letter_id
            self._ring.append(entry)
            if self._file is not None:
                self._file.write(json.dumps(entry, sort_keys=True) + "\n")
                self._file.flush()
            return entry

    def tail(
        self, tenant: Optional[str] = None, limit: int = 100
    ) -> List[Dict[str, Any]]:
        """The most recent records (newest last), optionally one
        tenant's."""
        with self._lock:
            entries = list(self._ring)
        if tenant is not None:
            entries = [e for e in entries if e["tenant"] == tenant]
        return entries[-limit:] if limit >= 0 else entries

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
