"""Session shards: one single-writer worker loop per tenant session.

The engines behind an :class:`~repro.api.AnalysisService` are fast but
not thread-safe -- memoized postings, closure records, and stream
segments are spliced in place.  The shard layer makes that safe to serve
concurrently by giving every ``(tenant, session)`` pair its own worker
thread that owns the service exclusively: all access rides the shard's
inbox queue, so **mutations serialize per shard** while traffic to
different shards runs fully in parallel across the pool.

Read batching: consecutive queued queries are drained into one
``execute_batch`` call, so the planner's level-prefetch hoisting (one
engine flush per attacker covering the union of requested platforms)
amortizes across concurrent readers -- the fan-out happens *inside* the
plan, where shared work is deduped, instead of across threads fighting
over one graph.

Mutation failures retry with capped exponential backoff inside the
worker (mutations are serialized anyway, so backoff never blocks another
shard) and dead-letter into the manager's
:class:`~repro.serve.dlq.DeadLetterQueue` when retries are exhausted.
Every receipt -- applied, no-op, or dead-lettered -- is recorded in the
NDJSON :class:`~repro.serve.audit.AuditLog`.

Snapshot migration: :meth:`ShardManager.migrate` snapshots the session
*inside* its worker loop (a consistent point between mutations), restores
a fresh service from the document, and atomically swaps the routing
entry to a brand-new worker -- the differential suite pins restored
query results bit-for-bit against pre-migration ones.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import AnalysisService, Query
from repro.api.queries import RolloutQuery
from repro.model.attacker import AttackerProfile
from repro.obs import Instrumentation
from repro.serve.audit import AuditLog
from repro.serve.dlq import DeadLetterQueue
from repro.utils.serialization import (
    attacker_profile_from_dict,
    mutation_from_dict,
    mutation_to_dict,
)

__all__ = ["DeadLettered", "ServeConfig", "Shard", "ShardManager"]

_STOP = object()


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Knobs for the serving tier (one instance per server)."""

    #: Apply attempts per mutation (1 initial + ``mutation_retries``).
    mutation_retries: int = 2
    #: Exponential backoff base / cap between apply attempts, seconds.
    retry_backoff_base: float = 0.05
    retry_backoff_cap: float = 1.0
    #: Per-tenant admission defaults.
    max_concurrent_per_tenant: int = 8
    max_queue_per_tenant: int = 16
    retry_after_seconds: float = 1.0
    #: NDJSON audit log destination (``None`` = in-memory ring only).
    audit_path: Optional[str] = None
    #: Catalog ceiling for cold session builds over the HTTP surface.
    max_services_per_session: int = 30_000


class DeadLettered(Exception):
    """A mutation exhausted its retries; carries the DLQ entry."""

    def __init__(self, entry) -> None:
        super().__init__(f"mutation dead-lettered as {entry.id}")
        self.entry = entry


class _Reply:
    """One-shot result slot a caller blocks on."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def set(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("shard did not reply in time")
        if self._error is not None:
            raise self._error
        return self._value


@dataclasses.dataclass
class _QueryWork:
    queries: Tuple[Query, ...]
    reply: _Reply


@dataclasses.dataclass
class _MutationWork:
    mutation: Any
    document: Dict[str, Any]
    reply: _Reply
    retried_from: Optional[str] = None


@dataclasses.dataclass
class _CallWork:
    fn: Callable[[AnalysisService], Any]
    reply: _Reply


class Shard:
    """One session, one owning worker thread, one inbox."""

    def __init__(
        self,
        shard_id: str,
        tenant: str,
        session_name: str,
        service: AnalysisService,
        config: ServeConfig,
        audit: AuditLog,
        dlq: DeadLetterQueue,
        metrics: "_ShardMetrics",
    ) -> None:
        self.shard_id = shard_id
        self.tenant = tenant
        self.session_name = session_name
        self._service = service
        self._config = config
        self._audit = audit
        self._dlq = dlq
        self._metrics = metrics
        self._inbox: "queue.Queue[Any]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"shard-{tenant}-{session_name}",
            daemon=True,
        )
        self._closed = False
        self._thread.start()

    # -- public surface (any thread) ------------------------------------

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def execute(
        self, queries: Sequence[Query], timeout: Optional[float] = 60.0
    ) -> Tuple[Any, ...]:
        """Run a read-only query batch through the worker loop."""
        for query in queries:
            if isinstance(query, RolloutQuery):
                raise ValueError(
                    "RolloutQuery is not served over the shard surface"
                )
        reply = _Reply()
        self._submit(_QueryWork(queries=tuple(queries), reply=reply))
        return reply.wait(timeout)

    def apply(
        self,
        mutation,
        document: Dict[str, Any],
        timeout: Optional[float] = 60.0,
        retried_from: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Apply one mutation; returns the receipt document or raises
        :class:`DeadLettered` after retry exhaustion."""
        reply = _Reply()
        self._submit(
            _MutationWork(
                mutation=mutation,
                document=document,
                reply=reply,
                retried_from=retried_from,
            )
        )
        return reply.wait(timeout)

    def call(
        self,
        fn: Callable[[AnalysisService], Any],
        timeout: Optional[float] = 60.0,
    ) -> Any:
        """Run an arbitrary read against the service inside the loop."""
        reply = _Reply()
        self._submit(_CallWork(fn=fn, reply=reply))
        return reply.wait(timeout)

    def info(self) -> Dict[str, Any]:
        return self.call(
            lambda service: {
                "session": self.session_name,
                "shard": self.shard_id,
                "version": service.version,
                "services": len(service),
                "attackers": list(service.attackers),
            }
        )

    def close(self, timeout: float = 5.0) -> None:
        if not self._closed:
            self._closed = True
            self._inbox.put(_STOP)
        self._thread.join(timeout)

    # -- worker internals ------------------------------------------------

    def _submit(self, work) -> None:
        if self._closed:
            raise RuntimeError(
                f"shard {self.shard_id} for session "
                f"{self.session_name!r} is closed"
            )
        self._inbox.put(work)
        self._note_depth()

    def _note_depth(self) -> None:
        self._metrics.queue_depth.labels(
            tenant=self.tenant, session=self.session_name
        ).set(self._inbox.qsize())

    def _loop(self) -> None:
        while True:
            work = self._inbox.get()
            self._note_depth()
            if work is _STOP:
                return
            if isinstance(work, _QueryWork):
                batch = [work]
                carry: Any = None
                while True:
                    try:
                        nxt = self._inbox.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(nxt, _QueryWork):
                        batch.append(nxt)
                    else:
                        carry = nxt
                        break
                self._note_depth()
                self._run_queries(batch)
                if carry is _STOP:
                    return
                if carry is not None:
                    self._run_sequential(carry)
            else:
                self._run_sequential(work)

    def _run_queries(self, batch: List[_QueryWork]) -> None:
        flat: List[Query] = []
        for work in batch:
            flat.extend(work.queries)
        try:
            results = self._service.execute_batch(flat)
        except Exception as exc:
            for work in batch:
                work.reply.fail(exc)
            return
        self._metrics.queries.labels(tenant=self.tenant).inc(len(flat))
        if len(batch) > 1:
            self._metrics.coalesced.labels(tenant=self.tenant).inc(
                len(batch) - 1
            )
        offset = 0
        for work in batch:
            count = len(work.queries)
            work.reply.set(tuple(results[offset:offset + count]))
            offset += count

    def _run_sequential(self, work) -> None:
        if isinstance(work, _CallWork):
            try:
                work.reply.set(work.fn(self._service))
            except Exception as exc:
                work.reply.fail(exc)
            return
        self._apply_with_retries(work)

    def _apply_with_retries(self, work: _MutationWork) -> None:
        config = self._config
        attempts = 0
        while True:
            attempts += 1
            try:
                receipt = self._service.apply(work.mutation)
            except Exception as exc:
                if attempts <= config.mutation_retries:
                    backoff = min(
                        config.retry_backoff_base * (2 ** (attempts - 1)),
                        config.retry_backoff_cap,
                    )
                    time.sleep(backoff)
                    continue
                entry = self._dlq.add(
                    tenant=self.tenant,
                    session=self.session_name,
                    mutation=work.document,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=attempts,
                    retried_from=work.retried_from,
                )
                self._audit.record(
                    tenant=self.tenant,
                    session=self.session_name,
                    outcome="dead_lettered",
                    mutation=work.document,
                    attempts=attempts,
                    error=entry.error,
                    dead_letter_id=entry.id,
                )
                self._metrics.mutations.labels(
                    tenant=self.tenant, outcome="dead_lettered"
                ).inc()
                work.reply.fail(DeadLettered(entry))
                return
            outcome = "noop" if receipt.delta.is_noop else "applied"
            self._audit.record(
                tenant=self.tenant,
                session=self.session_name,
                outcome=outcome,
                mutation=work.document,
                version=receipt.version,
                delta=receipt.delta.describe(),
                attempts=attempts,
            )
            self._metrics.mutations.labels(
                tenant=self.tenant, outcome=outcome
            ).inc()
            work.reply.set(
                {
                    "outcome": outcome,
                    "version": receipt.version,
                    "delta": receipt.delta.describe(),
                    "attempts": attempts,
                }
            )
            return


class _ShardMetrics:
    """The shard-layer instruments, created once per manager."""

    def __init__(self, obs: Instrumentation) -> None:
        self.queue_depth = obs.gauge(
            "repro_serve_shard_queue_depth",
            "Work items queued at one session shard.",
            labels=("tenant", "session"),
        )
        self.queries = obs.counter(
            "repro_serve_queries_total",
            "Queries served through the shard pool.",
            labels=("tenant",),
        )
        self.coalesced = obs.counter(
            "repro_serve_query_batches_coalesced_total",
            "Queued query works merged into an earlier batch's plan.",
            labels=("tenant",),
        )
        self.mutations = obs.counter(
            "repro_serve_mutations_total",
            "Mutation receipts, by outcome.",
            labels=("tenant", "outcome"),
        )
        self.shards_live = obs.gauge(
            "repro_serve_shards_live", "Session shards currently routed."
        )
        self.migrations = obs.counter(
            "repro_serve_migrations_total",
            "Snapshot/restore shard migrations completed.",
            labels=("tenant",),
        )


class ShardManager:
    """Routes ``(tenant, session)`` to shards; owns DLQ, audit, config.

    Creation, migration, and retirement swap routing entries under one
    lock; the per-shard worker loops never block each other.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.instrumentation = (
            instrumentation
            if instrumentation is not None
            else Instrumentation()
        )
        self.audit = AuditLog(path=self.config.audit_path)
        self.dlq = DeadLetterQueue(instrumentation=self.instrumentation)
        self._metrics = _ShardMetrics(self.instrumentation)
        self._lock = threading.Lock()
        self._shards: Dict[Tuple[str, str], Shard] = {}
        self._shard_counter = 0

    # -- session lifecycle -----------------------------------------------

    def create_session(
        self,
        tenant: str,
        name: str,
        services: Optional[int] = None,
        seed: int = 2021,
        attackers: Optional[Dict[str, Dict[str, Any]]] = None,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Build (cold) or restore (warm) a session and route it.

        Exactly one of ``services`` (a catalog size to cold-build) or
        ``snapshot`` (a snapshot document to warm-start from) must be
        given.  Raises ``ValueError`` on bad arguments and ``KeyError``
        on (tenant, name) collision.
        """
        if (services is None) == (snapshot is None):
            raise ValueError(
                "pass exactly one of 'services' (cold build) or "
                "'snapshot' (warm start)"
            )
        with self._lock:
            if (tenant, name) in self._shards:
                raise KeyError(
                    f"tenant {tenant!r} already has a session {name!r}"
                )
        if snapshot is not None:
            service = AnalysisService.restore(snapshot)
        else:
            service = self._cold_build(services, seed, attackers)
        shard = self._route(tenant, name, service)
        return {
            "tenant": tenant,
            "session": name,
            "shard": shard.shard_id,
            "version": service.version,
            "services": len(service),
            "warm_start": snapshot is not None,
        }

    def _cold_build(
        self,
        services: int,
        seed: int,
        attackers: Optional[Dict[str, Dict[str, Any]]],
    ) -> AnalysisService:
        from repro.catalog import CatalogBuilder
        from repro.catalog.spec import CatalogSpec

        if not 1 <= services <= self.config.max_services_per_session:
            raise ValueError(
                f"services must be in "
                f"[1, {self.config.max_services_per_session}]"
            )
        profiles: Optional[Dict[str, AttackerProfile]] = None
        if attackers is not None:
            profiles = {
                label: attacker_profile_from_dict(entry)
                for label, entry in attackers.items()
            }
        ecosystem = CatalogBuilder(
            CatalogSpec(total_services=services), seed=seed
        ).build_ecosystem()
        return AnalysisService(ecosystem, attackers=profiles)

    def _route(
        self, tenant: str, name: str, service: AnalysisService
    ) -> Shard:
        with self._lock:
            if (tenant, name) in self._shards:
                raise KeyError(
                    f"tenant {tenant!r} already has a session {name!r}"
                )
            self._shard_counter += 1
            shard = Shard(
                shard_id=f"shard-{self._shard_counter}",
                tenant=tenant,
                session_name=name,
                service=service,
                config=self.config,
                audit=self.audit,
                dlq=self.dlq,
                metrics=self._metrics,
            )
            self._shards[(tenant, name)] = shard
            self._metrics.shards_live.set(len(self._shards))
            return shard

    def shard(self, tenant: str, name: str) -> Optional[Shard]:
        with self._lock:
            return self._shards.get((tenant, name))

    def sessions(self, tenant: str) -> List[str]:
        with self._lock:
            return sorted(
                session
                for (owner, session) in self._shards
                if owner == tenant
            )

    def migrate(self, tenant: str, name: str) -> Dict[str, Any]:
        """Snapshot the session on its current shard, restore it on a
        fresh one, and swap routing -- the tenant's next request lands on
        the new worker; other tenants are untouched throughout."""
        shard = self.shard(tenant, name)
        if shard is None:
            raise KeyError(f"no session {name!r} for tenant {tenant!r}")
        document = shard.call(lambda service: service.snapshot())
        restored = AnalysisService.restore(document)
        with self._lock:
            self._shard_counter += 1
            replacement = Shard(
                shard_id=f"shard-{self._shard_counter}",
                tenant=tenant,
                session_name=name,
                service=restored,
                config=self.config,
                audit=self.audit,
                dlq=self.dlq,
                metrics=self._metrics,
            )
            self._shards[(tenant, name)] = replacement
        shard.close()
        self._metrics.migrations.labels(tenant=tenant).inc()
        return {
            "tenant": tenant,
            "session": name,
            "from_shard": shard.shard_id,
            "to_shard": replacement.shard_id,
            "version": restored.version,
            "warm_results": len(document.get("warm_results", ())),
        }

    # -- dead-letter operations -------------------------------------------

    def requeue_dead_letter(
        self, tenant: str, entry_id: str
    ) -> Dict[str, Any]:
        """Re-apply a dead-lettered mutation through its shard.

        A repeat failure dead-letters again as a *new* entry chained via
        ``retried_from``; either way the original entry is marked
        ``requeued`` and audited.
        """
        entry = self.dlq.get(tenant, entry_id)
        if entry is None:
            raise KeyError(f"no dead letter {entry_id!r}")
        shard = self.shard(tenant, entry.session)
        if shard is None:
            raise KeyError(
                f"session {entry.session!r} for dead letter "
                f"{entry_id!r} is gone"
            )
        mutation = mutation_from_dict(entry.mutation)
        self.dlq.mark(entry, "requeued")
        self.audit.record(
            tenant=tenant,
            session=entry.session,
            outcome="requeued",
            mutation=entry.mutation,
            dead_letter_id=entry.id,
        )
        try:
            receipt = shard.apply(
                mutation, entry.mutation, retried_from=entry.id
            )
        except DeadLettered as exc:
            return {
                "outcome": "dead_lettered",
                "dead_letter": exc.entry.to_dict(),
            }
        return receipt

    def cancel_dead_letter(
        self, tenant: str, entry_id: str
    ) -> Dict[str, Any]:
        entry = self.dlq.get(tenant, entry_id)
        if entry is None:
            raise KeyError(f"no dead letter {entry_id!r}")
        self.dlq.mark(entry, "cancelled")
        self.audit.record(
            tenant=tenant,
            session=entry.session,
            outcome="cancelled",
            mutation=entry.mutation,
            dead_letter_id=entry.id,
        )
        return entry.to_dict()

    # -- health -----------------------------------------------------------

    def ready(self) -> bool:
        """All routed shards have live worker threads."""
        with self._lock:
            shards = list(self._shards.values())
        return all(shard.alive for shard in shards)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            shards = list(self._shards.values())
        return {
            "shards": [
                {
                    "tenant": shard.tenant,
                    "session": shard.session_name,
                    "shard": shard.shard_id,
                    "alive": shard.alive,
                }
                for shard in shards
            ],
        }

    def close(self) -> None:
        with self._lock:
            shards = list(self._shards.values())
            self._shards.clear()
            self._metrics.shards_live.set(0)
        for shard in shards:
            shard.close()
        self.audit.close()


def encode_mutation(mutation) -> Dict[str, Any]:
    """Re-export convenience for callers that already hold a typed
    mutation (benchmarks, tests) -- the shard surface wants both the
    object and its wire document for audit/DLQ records."""
    return mutation_to_dict(mutation)
