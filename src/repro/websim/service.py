"""Stateful simulated account services.

A :class:`SimulatedService` is one deployed Internet service: it holds user
records, verifies each :class:`~repro.model.account.AuthPath` its
:class:`~repro.model.account.ServiceProfile` declares, dispatches OTP codes
over the SMS/email channels, issues sessions, and serves masked profile
pages.  It is intentionally faithful to how the attacks in the paper
interact with real services:

- sign-in and password reset are separate flows with separate policies,
- OTP codes are requested explicitly and travel over an interceptable
  channel,
- a successful password reset revokes existing sessions and hands the
  caller a fresh one (control of the account),
- biometric / hardware factors verify against a device secret the attacker
  has no way to obtain.
"""

from __future__ import annotations

import hashlib
import typing
from typing import Dict, Mapping, Optional, Tuple

from repro.model.account import AuthPath, AuthPurpose, ServiceProfile
from repro.model.factors import CredentialFactor, PersonalInfoKind, Platform
from repro.model.identity import Identity
from repro.websim.errors import (
    AccountLocked,
    FactorMismatch,
    MissingFactor,
    OTPError,
    UnknownHandle,
    UnknownPath,
)
from repro.websim.otp import OTPManager, OTPPolicy
from repro.websim.profile_page import ProfilePage
from repro.websim.sessions import Session, SessionStore

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.websim.internet import Internet

#: Wrong-factor failures tolerated per user on the reset flow before the
#: account locks.  Generous enough that legitimate chains never trip it.
_LOCK_THRESHOLD = 10

_DEVICE_SALT = "repro-device-secret"


def device_secret(person_id: str, factor: CredentialFactor) -> str:
    """The secret a victim's device/body presents for a robust factor.

    Only victim-side code (and tests playing the victim) may call this; the
    attack layer treats robust factors as unsatisfiable, mirroring the
    paper's Insight 5.
    """
    digest = hashlib.sha256(
        f"{_DEVICE_SALT}:{person_id}:{factor.value}".encode("utf-8")
    ).hexdigest()
    return f"dev-{digest[:16]}"


class UserRecord:
    """One enrolled user on one service."""

    __slots__ = ("identity", "password", "locked", "reset_failures")

    def __init__(self, identity: Identity, password: str) -> None:
        self.identity = identity
        self.password = password
        self.locked = False
        self.reset_failures = 0


class SimulatedService:
    """One deployed service on the simulated internet."""

    def __init__(
        self,
        profile: ServiceProfile,
        internet: "Internet",
        otp_policy: OTPPolicy = OTPPolicy(),
    ) -> None:
        self._profile = profile
        self._internet = internet
        self._users: Dict[str, UserRecord] = {}
        self._by_phone: Dict[str, str] = {}
        self._by_email: Dict[str, str] = {}
        self._otp = OTPManager(
            internet.clock,
            policy=otp_policy,
            rng=internet.seeds.stream(f"otp:{profile.name}"),
        )
        self._sessions = SessionStore(profile.name, internet.clock)
        self._payments: list = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The service's name (unique on its internet)."""
        return self._profile.name

    @property
    def profile(self) -> ServiceProfile:
        """The static policy profile this deployment enforces."""
        return self._profile

    @property
    def otp_manager(self) -> OTPManager:
        """The service's OTP manager (exposed for tests and telemetry)."""
        return self._otp

    def advertised_paths(
        self, platform: Platform, purpose: AuthPurpose
    ) -> Tuple[AuthPath, ...]:
        """What the sign-in / reset wizard shows as available options.

        Real services enumerate their verification options in the UI; the
        ActFort probe records exactly this surface.
        """
        return self._profile.paths(platform=platform, purpose=purpose)

    # ------------------------------------------------------------------
    # Enrollment and lookup
    # ------------------------------------------------------------------

    def enroll(self, identity: Identity, password: str) -> UserRecord:
        """Register ``identity`` with ``password``; returns the record."""
        if identity.person_id in self._users:
            raise ValueError(
                f"{identity.person_id!r} already enrolled on {self.name!r}"
            )
        record = UserRecord(identity, password)
        self._users[identity.person_id] = record
        self._by_phone[identity.cellphone_number] = identity.person_id
        self._by_email[identity.email_address] = identity.person_id
        return record

    def is_enrolled(self, person_id: str) -> bool:
        """Whether a user with ``person_id`` exists."""
        return person_id in self._users

    def _resolve_handle(self, handle: str) -> UserRecord:
        person_id = (
            handle
            if handle in self._users
            else self._by_phone.get(handle) or self._by_email.get(handle)
        )
        if person_id is None or person_id not in self._users:
            raise UnknownHandle(f"no account for handle {handle!r} on {self.name!r}")
        return self._users[person_id]

    # ------------------------------------------------------------------
    # OTP dispatch
    # ------------------------------------------------------------------

    def request_otp(
        self, handle: str, factor: CredentialFactor, purpose: AuthPurpose
    ) -> None:
        """Issue and dispatch an OTP for an authentication attempt.

        SMS codes go to the account's phone number over the SMS gateway
        (where the paper's sniffer sits); email codes and links go to the
        account's mailbox.  Raises on unknown handles and rate limits.
        """
        record = self._resolve_handle(handle)
        identity = record.identity
        if not any(factor in p.factors for p in self._profile.auth_paths):
            # A service that dropped a factor from every auth path does not
            # send codes for it (how the built-in-auth upgrade achieves
            # radio silence).
            raise UnknownPath(
                f"{self.name!r} has no authentication path using {factor}"
            )
        if factor is CredentialFactor.SMS_CODE:
            code = self._otp.issue(identity.cellphone_number, purpose.value)
            self._internet.send_sms(
                identity.cellphone_number,
                f"[{self.name}] Your verification code is {code}. "
                f"Do not share it with anyone.",
                sender=self.name,
            )
        elif factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            code = self._otp.issue(identity.email_address, purpose.value)
            noun = "code" if factor is CredentialFactor.EMAIL_CODE else "link token"
            self._internet.send_email(
                identity.email_address,
                subject=f"[{self.name}] Verification {noun}",
                body=f"Your verification code is {code}.",
                sender=self.name,
            )
        else:
            raise UnknownPath(f"{factor} is not a dispatchable OTP factor")

    # ------------------------------------------------------------------
    # Authentication flows
    # ------------------------------------------------------------------

    def sign_in(
        self,
        platform: Platform,
        handle: str,
        supplied: Mapping[CredentialFactor, object],
    ) -> Session:
        """Attempt sign-in; returns a session on success.

        The service tries each advertised sign-in path whose factor set is
        covered by ``supplied``; the first path whose factors all verify
        wins.  This mirrors a user picking the matching option in the UI.
        """
        return self._authenticate(platform, handle, supplied, AuthPurpose.SIGN_IN)

    def reset_password(
        self,
        platform: Platform,
        handle: str,
        supplied: Mapping[CredentialFactor, object],
        new_password: str,
    ) -> Session:
        """Attempt a password reset; on success the caller owns the account.

        Existing sessions are revoked, the password changes, and a fresh
        session is returned (services commonly auto-login after a reset --
        and even when they don't, the caller now knows the password).
        """
        record = self._resolve_handle(handle)
        # Raises on factor mismatch; its session is superseded below.
        self._authenticate(
            platform, handle, supplied, AuthPurpose.PASSWORD_RESET
        )
        record.password = new_password
        self._sessions.revoke_all_for(record.identity.person_id)
        return self._sessions.issue(record.identity.person_id, platform)

    def _authenticate(
        self,
        platform: Platform,
        handle: str,
        supplied: Mapping[CredentialFactor, object],
        purpose: AuthPurpose,
    ) -> Session:
        record = self._resolve_handle(handle)
        if record.locked:
            raise AccountLocked(f"account {handle!r} on {self.name!r} is locked")
        paths = self.advertised_paths(platform, purpose)
        if not paths:
            raise UnknownPath(
                f"{self.name!r} offers no {purpose.value} path on {platform.value}"
            )
        candidates = [p for p in paths if p.factors <= set(supplied)]
        if not candidates:
            needed = min(
                (p.factors - set(supplied) for p in paths),
                key=len,
            )
            raise MissingFactor(sorted(f.value for f in needed))

        last_error: Optional[Exception] = None
        for path in candidates:
            try:
                self._verify_path(record, path, supplied, purpose)
            except (FactorMismatch, MissingFactor, OTPError) as exc:
                last_error = exc
                continue
            record.reset_failures = 0
            return self._sessions.issue(record.identity.person_id, platform)

        if purpose is AuthPurpose.PASSWORD_RESET:
            record.reset_failures += 1
            if record.reset_failures >= _LOCK_THRESHOLD:
                record.locked = True
        assert last_error is not None
        raise last_error

    def _verify_path(
        self,
        record: UserRecord,
        path: AuthPath,
        supplied: Mapping[CredentialFactor, object],
        purpose: AuthPurpose,
    ) -> None:
        for factor in sorted(path.factors, key=lambda f: f.value):
            if factor not in supplied:
                raise MissingFactor(factor)
            self._verify_factor(record, path, factor, supplied[factor], purpose)

    def _verify_factor(
        self,
        record: UserRecord,
        path: AuthPath,
        factor: CredentialFactor,
        value: object,
        purpose: AuthPurpose,
    ) -> None:
        identity = record.identity
        if factor is CredentialFactor.PASSWORD:
            if value != record.password:
                raise FactorMismatch(factor)
        elif factor is CredentialFactor.USERNAME:
            if value not in (identity.person_id, identity.email_address):
                raise FactorMismatch(factor)
        elif factor is CredentialFactor.SMS_CODE:
            self._otp.validate(identity.cellphone_number, purpose.value, str(value))
        elif factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            self._otp.validate(identity.email_address, purpose.value, str(value))
        elif factor is CredentialFactor.LINKED_ACCOUNT:
            self._verify_linked_account(record, path, value)
        elif factor is CredentialFactor.CUSTOMER_SERVICE:
            self._verify_customer_service(record, value)
        elif factor in (
            CredentialFactor.FACE_SCAN,
            CredentialFactor.FINGERPRINT,
            CredentialFactor.U2F_KEY,
            CredentialFactor.TRUSTED_DEVICE,
            CredentialFactor.AUTHENTICATOR_TOTP,
        ):
            if value != device_secret(identity.person_id, factor):
                raise FactorMismatch(factor)
        elif factor is CredentialFactor.ACQUAINTANCE_NAME:
            if value not in identity.acquaintances:
                raise FactorMismatch(factor)
        elif factor is CredentialFactor.SECURITY_QUESTION:
            if value != identity.security_answer:
                raise FactorMismatch(factor)
        else:
            # Remaining knowledge factors compare against identity ground
            # truth (real name, citizen ID, bankcard, address, IDs...).
            kind = _FACTOR_TO_IDENTITY_KIND.get(factor)
            if kind is None:
                raise FactorMismatch(factor)
            if value != identity.info_value(kind):
                raise FactorMismatch(factor)

    def _verify_linked_account(
        self, record: UserRecord, path: AuthPath, value: object
    ) -> None:
        if not isinstance(value, Session):
            raise FactorMismatch(CredentialFactor.LINKED_ACCOUNT)
        if path.linked_providers and value.service not in path.linked_providers:
            raise FactorMismatch(CredentialFactor.LINKED_ACCOUNT)
        provider = self._internet.service(value.service)
        provider.validate_session(value)
        bound = self._internet.bindings.providers_for(
            record.identity.person_id, self.name
        )
        if value.service not in bound:
            raise FactorMismatch(CredentialFactor.LINKED_ACCOUNT)
        if value.person_id != record.identity.person_id:
            raise FactorMismatch(CredentialFactor.LINKED_ACCOUNT)

    def _verify_customer_service(self, record: UserRecord, value: object) -> None:
        """Human customer-service reset: convince an agent with a dossier.

        The caller presents a mapping of personal-information kinds to
        claimed values; the agent accepts when at least three claims check
        out against the account on file (the social-engineering surface of
        Case III's web-client path).
        """
        if not isinstance(value, Mapping):
            raise FactorMismatch(CredentialFactor.CUSTOMER_SERVICE)
        identity = record.identity
        correct = 0
        for kind, claimed in value.items():
            if not isinstance(kind, PersonalInfoKind):
                continue
            try:
                truth = identity.info_value(kind)
            except KeyError:
                continue
            if kind is PersonalInfoKind.ACQUAINTANCE_NAME:
                if claimed in identity.acquaintances or claimed == truth:
                    correct += 1
            elif claimed == truth:
                correct += 1
        if correct < 3:
            raise FactorMismatch(CredentialFactor.CUSTOMER_SERVICE)

    # ------------------------------------------------------------------
    # Authenticated surface
    # ------------------------------------------------------------------

    def validate_session(self, session: Session) -> Session:
        """Validate a session issued by this service."""
        return self._sessions.validate(session)

    def profile_page(self, session: Session, platform: Platform) -> ProfilePage:
        """Render the logged-in profile page for ``platform``.

        This is what the attacker scrapes after a takeover: every exposed
        information kind, masked per the provider's rules.
        """
        live = self._sessions.validate(session)
        record = self._users[live.person_id]
        return ProfilePage.render(self._profile, record.identity, platform, self._internet)

    def authorize_payment(self, session: Session, amount: float) -> str:
        """Authorize a payment from the logged-in account (QR-code style).

        Any live session suffices -- which is precisely Case I's point: an
        SMS one-time login token is full spending power on Baidu Wallet.
        Returns a receipt id; payments are recorded for test inspection.
        """
        if amount <= 0:
            raise ValueError("payment amount must be positive")
        live = self._sessions.validate(session)
        self._payments.append((live.person_id, amount))
        return f"receipt-{self.name}-{len(self._payments):06d}"

    @property
    def payments(self) -> Tuple[Tuple[str, float], ...]:
        """(person id, amount) pairs of authorized payments."""
        return tuple(self._payments)

    def session_store(self) -> SessionStore:
        """The service's session store (exposed for tests)."""
        return self._sessions


_FACTOR_TO_IDENTITY_KIND: Dict[CredentialFactor, PersonalInfoKind] = {
    CredentialFactor.CELLPHONE_NUMBER: PersonalInfoKind.CELLPHONE_NUMBER,
    CredentialFactor.EMAIL_ADDRESS: PersonalInfoKind.EMAIL_ADDRESS,
    CredentialFactor.REAL_NAME: PersonalInfoKind.REAL_NAME,
    CredentialFactor.CITIZEN_ID: PersonalInfoKind.CITIZEN_ID,
    CredentialFactor.BANKCARD_NUMBER: PersonalInfoKind.BANKCARD_NUMBER,
    CredentialFactor.ADDRESS: PersonalInfoKind.ADDRESS,
    CredentialFactor.USER_ID: PersonalInfoKind.USER_ID,
    CredentialFactor.STUDENT_ID: PersonalInfoKind.STUDENT_ID,
}
