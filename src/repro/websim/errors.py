"""Typed failure hierarchy for the simulated internet.

Attack code needs to distinguish *why* an authentication attempt failed --
a wrong OTP is retryable, a missing credential factor sends the strategy
engine looking for another source account, a locked account ends the chain.
Every failure the simulated services raise derives from :class:`WebSimError`.
"""

from __future__ import annotations


class WebSimError(Exception):
    """Base class for every simulated-internet failure."""


class AuthenticationError(WebSimError):
    """An authentication attempt was rejected."""


class UnknownHandle(AuthenticationError):
    """No account matches the supplied handle (phone, email or username)."""


class UnknownPath(AuthenticationError):
    """The service offers no authentication path matching the request."""


class MissingFactor(AuthenticationError):
    """A required credential factor was not supplied at all."""

    def __init__(self, factor: object) -> None:
        super().__init__(f"missing credential factor: {factor}")
        self.factor = factor


class FactorMismatch(AuthenticationError):
    """A supplied credential factor value did not verify."""

    def __init__(self, factor: object) -> None:
        super().__init__(f"credential factor failed verification: {factor}")
        self.factor = factor


class OTPError(AuthenticationError):
    """An OTP code was wrong, expired, or never issued."""


class RateLimited(WebSimError):
    """Too many OTP requests or attempts inside the policy window."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"rate limited; retry after {retry_after:.0f}s")
        self.retry_after = retry_after


class AccountLocked(AuthenticationError):
    """The account was locked after repeated failures."""


class InvalidSession(WebSimError):
    """A session token was missing, expired or forged."""
