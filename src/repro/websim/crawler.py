"""The ActFort measurement probe.

The paper's authors "manually set up test accounts and collected all
possible Authentication Process methods and types of personal information
leaked for all the services" (Section IV-A).  :class:`ActFortProbe` is that
workflow, automated against the simulated internet:

1. enroll a canary identity on the service,
2. read the sign-in / reset wizards to enumerate the advertised
   authentication paths per platform,
3. actually *exercise* one takeover path per platform as the legitimate
   owner (reading OTPs off the canary's own handset/mailbox) to obtain a
   session, and
4. scrape the logged-in profile page, recording which information kinds
   appear and which character positions the provider's masking reveals.

The probe only uses owner-side powers (its own handset, its own mailbox,
its own device secrets) -- it never intercepts anything, so it measures the
service, not the attack.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.model.account import AuthPath, AuthPurpose
from repro.model.factors import CredentialFactor, PersonalInfoKind, Platform
from repro.model.identity import Identity, IdentityGenerator
from repro.websim.errors import WebSimError
from repro.websim.internet import Internet
from repro.websim.service import SimulatedService, device_secret
from repro.websim.sessions import Session

_CODE_RE = re.compile(r"code is (\d+)")


@dataclasses.dataclass(frozen=True)
class ProbeObservation:
    """Everything the probe learned about one service."""

    service: str
    domain: str
    paths: Tuple[AuthPath, ...]
    exposed: Mapping[Platform, FrozenSet[PersonalInfoKind]]
    #: Observed masking: (platform, kind) -> revealed character positions.
    observed_masks: Mapping[Tuple[Platform, PersonalInfoKind], FrozenSet[int]]
    #: Platforms on which the probe obtained a logged-in session.
    verified_platforms: FrozenSet[Platform]

    def paths_on(
        self, platform: Platform, purpose: Optional[AuthPurpose] = None
    ) -> Tuple[AuthPath, ...]:
        """Observed paths filtered by platform (and optionally purpose)."""
        result = tuple(p for p in self.paths if p.platform is platform)
        if purpose is not None:
            result = tuple(p for p in result if p.purpose is purpose)
        return result


class ActFortProbe:
    """Black-box prober for one simulated internet."""

    def __init__(self, internet: Internet, canary_seed: int = 0xC0FFEE) -> None:
        self._internet = internet
        self._identities = IdentityGenerator(canary_seed)
        self._password = "probe-Secret-1"

    def observe(self, service: SimulatedService) -> ProbeObservation:
        """Probe one service end to end; returns the observation."""
        canary = self._identities.generate()
        if not service.is_enrolled(canary.person_id):
            service.enroll(canary, self._password)

        profile = service.profile
        paths: List[AuthPath] = []
        exposed: Dict[Platform, FrozenSet[PersonalInfoKind]] = {}
        masks: Dict[Tuple[Platform, PersonalInfoKind], FrozenSet[int]] = {}
        verified: set = set()

        for platform in sorted(profile.platforms, key=lambda p: p.value):
            for purpose in (AuthPurpose.SIGN_IN, AuthPurpose.PASSWORD_RESET):
                paths.extend(service.advertised_paths(platform, purpose))
            session = self._obtain_session(service, canary, platform)
            if session is None:
                continue
            verified.add(platform)
            page = service.profile_page(session, platform)
            exposed[platform] = page.visible_kinds()
            for kind, view in page.entries.items():
                masks[(platform, kind)] = view.revealed_positions

        return ProbeObservation(
            service=profile.name,
            domain=profile.domain,
            paths=tuple(paths),
            exposed=exposed,
            observed_masks=masks,
            verified_platforms=frozenset(verified),
        )

    def observe_all(
        self, services: Optional[Tuple[SimulatedService, ...]] = None
    ) -> Tuple[ProbeObservation, ...]:
        """Probe every deployed service (or the given subset)."""
        if services is None:
            services = tuple(
                self._internet.service(name)
                for name in self._internet.service_names
            )
        return tuple(self.observe(s) for s in services)

    # ------------------------------------------------------------------
    # Owner-side authentication
    # ------------------------------------------------------------------

    def _obtain_session(
        self, service: SimulatedService, canary: Identity, platform: Platform
    ) -> Optional[Session]:
        """Authenticate as the canary via the cheapest workable path."""
        candidates = sorted(
            service.advertised_paths(platform, AuthPurpose.SIGN_IN)
            + service.advertised_paths(platform, AuthPurpose.PASSWORD_RESET),
            key=lambda p: len(p.factors),
        )
        for path in candidates:
            if CredentialFactor.LINKED_ACCOUNT in path.factors:
                continue  # canary bound no providers
            if CredentialFactor.CUSTOMER_SERVICE in path.factors:
                continue  # the probe does not social-engineer humans
            try:
                supplied = self._supply_factors(service, canary, path)
            except WebSimError:
                continue
            try:
                if path.purpose is AuthPurpose.SIGN_IN:
                    return service.sign_in(platform, canary.person_id, supplied)
                return service.reset_password(
                    platform, canary.person_id, supplied, self._password
                )
            except WebSimError:
                continue
        return None

    def _supply_factors(
        self, service: SimulatedService, canary: Identity, path: AuthPath
    ) -> Dict[CredentialFactor, object]:
        supplied: Dict[CredentialFactor, object] = {}
        for factor in path.factors:
            supplied[factor] = self._supply_one(service, canary, path, factor)
        return supplied

    def _supply_one(
        self,
        service: SimulatedService,
        canary: Identity,
        path: AuthPath,
        factor: CredentialFactor,
    ) -> object:
        if factor is CredentialFactor.PASSWORD:
            return self._password
        if factor is CredentialFactor.USERNAME:
            return canary.person_id
        if factor is CredentialFactor.SMS_CODE:
            self._request_otp_patiently(service, canary, factor, path)
            return self._read_own_sms_code(canary, service.name)
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            self._request_otp_patiently(service, canary, factor, path)
            return self._read_own_email_code(canary, service.name)
        if factor in (
            CredentialFactor.FACE_SCAN,
            CredentialFactor.FINGERPRINT,
            CredentialFactor.U2F_KEY,
            CredentialFactor.TRUSTED_DEVICE,
            CredentialFactor.AUTHENTICATOR_TOTP,
        ):
            return device_secret(canary.person_id, factor)
        if factor is CredentialFactor.ACQUAINTANCE_NAME:
            return canary.acquaintances[0]
        if factor is CredentialFactor.SECURITY_QUESTION:
            return canary.security_answer
        # Knowledge factors straight from the canary's own identity.
        kind = _FACTOR_KIND.get(factor)
        if kind is None:
            raise WebSimError(f"probe cannot supply factor {factor}")
        return canary.info_value(kind)

    def _request_otp_patiently(
        self,
        service: SimulatedService,
        canary: Identity,
        factor: CredentialFactor,
        path: AuthPath,
    ) -> None:
        """Request an OTP, waiting out the resend window once if throttled.

        The probe is a patient legitimate user: when the service throttles
        repeated code requests, it simply waits (advances the shared logical
        clock) and retries once.
        """
        from repro.websim.errors import RateLimited

        try:
            service.request_otp(canary.person_id, factor, path.purpose)
        except RateLimited as exc:
            self._internet.clock.advance(exc.retry_after + 1.0)
            service.request_otp(canary.person_id, factor, path.purpose)

    def _read_own_sms_code(self, canary: Identity, sender: str) -> str:
        messages = self._internet.handset_messages(canary.cellphone_number)
        for _at, msg_sender, text in reversed(messages):
            if msg_sender != sender:
                continue
            match = _CODE_RE.search(text)
            if match:
                return match.group(1)
        raise WebSimError(f"no SMS code from {sender!r} on canary handset")

    def _read_own_email_code(self, canary: Identity, sender: str) -> str:
        messages = self._internet.read_own_mailbox(canary.email_address, canary)
        for message in reversed(messages):
            if message.sender != sender:
                continue
            match = _CODE_RE.search(message.body)
            if match:
                return match.group(1)
        raise WebSimError(f"no email code from {sender!r} in canary mailbox")


_FACTOR_KIND: Dict[CredentialFactor, PersonalInfoKind] = {
    CredentialFactor.CELLPHONE_NUMBER: PersonalInfoKind.CELLPHONE_NUMBER,
    CredentialFactor.EMAIL_ADDRESS: PersonalInfoKind.EMAIL_ADDRESS,
    CredentialFactor.REAL_NAME: PersonalInfoKind.REAL_NAME,
    CredentialFactor.CITIZEN_ID: PersonalInfoKind.CITIZEN_ID,
    CredentialFactor.BANKCARD_NUMBER: PersonalInfoKind.BANKCARD_NUMBER,
    CredentialFactor.ADDRESS: PersonalInfoKind.ADDRESS,
    CredentialFactor.USER_ID: PersonalInfoKind.USER_ID,
    CredentialFactor.STUDENT_ID: PersonalInfoKind.STUDENT_ID,
}
