"""The simulated internet: service registry, mailboxes and the SMS gateway.

:class:`Internet` is the container every simulated service is deployed into.
It routes the two OTP delivery channels:

- **SMS** goes out through a pluggable gateway.  By default messages land
  in per-phone handset inboxes (the victim's pocket, unreadable by the
  attacker); wiring in the telecom substrate
  (:func:`repro.telecom.network.GSMNetwork.as_sms_gateway`) replaces the
  gateway with one that also radiates interceptable over-the-air events.
- **Email** lands in per-address mailboxes.  Reading a mailbox requires a
  valid session on the email service that owns the address's domain --
  which is precisely why compromising the email account is "the gateway to
  most of the vulnerabilities exposed" (Insight 1).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.account import ServiceProfile
from repro.model.identity import Identity
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence
from repro.websim.errors import InvalidSession
from repro.websim.linker import BindingRegistry
from repro.websim.otp import OTPPolicy
from repro.websim.service import SimulatedService
from repro.websim.sessions import Session

#: Signature of an SMS gateway: (destination phone, text, sender name).
SMSGateway = Callable[[str, str, str], None]


@dataclasses.dataclass(frozen=True)
class EmailMessage:
    """One delivered email."""

    to: str
    sender: str
    subject: str
    body: str
    delivered_at: float


class Internet:
    """Registry and channel fabric for a set of simulated services."""

    def __init__(
        self,
        seeds: Optional[SeedSequence] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.seeds = seeds if seeds is not None else SeedSequence(0)
        self.bindings = BindingRegistry()
        self._services: Dict[str, SimulatedService] = {}
        self._mailboxes: Dict[str, List[EmailMessage]] = {}
        self._handsets: Dict[str, List[Tuple[float, str, str]]] = {}
        self._email_domains: Dict[str, str] = {}
        self._sms_gateway: Optional[SMSGateway] = None
        self._sms_sent = 0
        self._emails_sent = 0

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        profile: ServiceProfile,
        otp_policy: OTPPolicy = OTPPolicy(),
    ) -> SimulatedService:
        """Deploy a service from its profile; names must be unique."""
        if profile.name in self._services:
            raise ValueError(f"service {profile.name!r} already deployed")
        service = SimulatedService(profile, self, otp_policy=otp_policy)
        self._services[profile.name] = service
        return service

    def service(self, name: str) -> SimulatedService:
        """Look a deployed service up by name."""
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"no service {name!r} deployed") from None

    def has_service(self, name: str) -> bool:
        """Whether a service of that name is deployed."""
        return name in self._services

    @property
    def service_names(self) -> Tuple[str, ...]:
        """Names of all deployed services, in deployment order."""
        return tuple(self._services)

    def enroll_everywhere(
        self, identity: Identity, password: str = "correct-horse"
    ) -> None:
        """Enroll ``identity`` on every deployed service (test/population aid)."""
        for service in self._services.values():
            if not service.is_enrolled(identity.person_id):
                service.enroll(identity, password)

    # ------------------------------------------------------------------
    # SMS channel
    # ------------------------------------------------------------------

    def set_sms_gateway(self, gateway: SMSGateway) -> None:
        """Install the SMS delivery gateway (e.g. the telecom simulator)."""
        self._sms_gateway = gateway

    def send_sms(self, phone: str, text: str, sender: str) -> None:
        """Dispatch one SMS.

        With no gateway installed, messages drop straight onto the victim's
        handset (loopback mode).  With a gateway -- normally the telecom
        simulator -- final delivery is the gateway's responsibility, which
        is what lets an active MitM withhold messages from the victim.
        """
        self._sms_sent += 1
        if self._sms_gateway is None:
            self.deliver_to_handset(phone, sender, text)
        else:
            self._sms_gateway(phone, text, sender)

    def deliver_to_handset(self, phone: str, sender: str, text: str) -> None:
        """Final-hop delivery onto a victim handset (called by the gateway)."""
        self._handsets.setdefault(phone, []).append(
            (self.clock.now(), sender, text)
        )

    def handset_messages(self, phone: str) -> Tuple[Tuple[float, str, str], ...]:
        """Messages on the victim's handset.

        Victim-side view only: the attacker has "no access to the internal
        software/hardware of the victim's cellphone" (Section II), so attack
        code must never read this -- it intercepts over the air instead.
        """
        return tuple(self._handsets.get(phone, ()))

    @property
    def sms_sent(self) -> int:
        """Total SMS messages dispatched."""
        return self._sms_sent

    # ------------------------------------------------------------------
    # Email channel
    # ------------------------------------------------------------------

    def register_email_domain(self, domain: str, service_name: str) -> None:
        """Declare that mailboxes under ``domain`` belong to a service."""
        if service_name not in self._services:
            raise KeyError(f"no service {service_name!r} deployed")
        self._email_domains[domain.lower()] = service_name

    def email_provider_for(self, address: str) -> Optional[str]:
        """The service owning ``address``'s domain, if registered."""
        _, _, domain = address.rpartition("@")
        return self._email_domains.get(domain.lower())

    def send_email(self, address: str, subject: str, body: str, sender: str) -> None:
        """Deliver one email into the address's mailbox."""
        self._emails_sent += 1
        self._mailboxes.setdefault(address, []).append(
            EmailMessage(
                to=address,
                sender=sender,
                subject=subject,
                body=body,
                delivered_at=self.clock.now(),
            )
        )

    def read_mailbox(
        self, address: str, session: Session
    ) -> Tuple[EmailMessage, ...]:
        """Read a mailbox, gated on controlling the owning email account.

        ``session`` must be a live session on the email service that owns
        the address's domain, for the user whose address it is.  This is the
        mechanism by which compromising Gmail yields PayPal's email token in
        Case II.
        """
        provider_name = self.email_provider_for(address)
        if provider_name is None:
            raise InvalidSession(f"no email provider registered for {address!r}")
        provider = self.service(provider_name)
        live = provider.validate_session(session)
        owner = self._owner_of_address(provider, address)
        if owner is None or owner != live.person_id:
            raise InvalidSession(
                f"session user does not own mailbox {address!r}"
            )
        return tuple(self._mailboxes.get(address, ()))

    def read_own_mailbox(
        self, address: str, identity: Identity
    ) -> Tuple[EmailMessage, ...]:
        """Read a mailbox as its legitimate owner (IMAP from their own
        device).  Used by victim-side code and the measurement probe, which
        operates its own test accounts exactly as the paper's authors did.
        """
        if identity.email_address != address:
            raise InvalidSession(f"{identity.person_id} does not own {address!r}")
        return tuple(self._mailboxes.get(address, ()))

    def _owner_of_address(
        self, provider: SimulatedService, address: str
    ) -> Optional[str]:
        # The provider's handle index maps addresses to person ids; use the
        # public resolution path rather than poking at internals.
        try:
            record = provider._resolve_handle(address)  # noqa: SLF001 - same package
        except Exception:
            return None
        return record.identity.person_id

    @property
    def emails_sent(self) -> int:
        """Total emails delivered."""
        return self._emails_sent

    def mailbox_size(self, address: str) -> int:
        """Number of messages in a mailbox (no authorization required --
        metadata only, used by tests)."""
        return len(self._mailboxes.get(address, ()))
