"""Simulated online-service substrate ("the internet").

The paper's measurement and case studies run against 201 live services; this
package is the offline substitute.  It provides stateful simulated services
with the observable behaviours the attack and analysis layers need:

- registration / sign-in / password-reset state machines driven by the
  service's :class:`~repro.model.account.AuthPath` policy
  (:mod:`repro.websim.service`),
- OTP issuance over SMS and email channels with expiry, rate limits and
  attempt budgets (:mod:`repro.websim.otp`),
- logged-in profile pages exposing (masked) personal information
  (:mod:`repro.websim.profile_page`, :mod:`repro.websim.masking`),
- OAuth-style account binding (login-with) (:mod:`repro.websim.linker`),
- a registry tying the services, mailboxes and the SMS gateway together
  (:mod:`repro.websim.internet`), and
- a black-box probe that rediscovers each service's auth paths and
  information exposure the way ActFort's front-end does
  (:mod:`repro.websim.crawler`).
"""

from repro.websim.errors import (
    AccountLocked,
    AuthenticationError,
    FactorMismatch,
    InvalidSession,
    MissingFactor,
    OTPError,
    RateLimited,
    UnknownHandle,
    UnknownPath,
    WebSimError,
)
from repro.websim.otp import OTPManager, OTPPolicy
from repro.websim.masking import apply_mask, render_profile_value
from repro.websim.sessions import Session, SessionStore
from repro.websim.service import SimulatedService, UserRecord
from repro.websim.profile_page import ProfilePage
from repro.websim.internet import EmailMessage, Internet
from repro.websim.linker import BindingRegistry
from repro.websim.crawler import ActFortProbe, ProbeObservation

__all__ = [
    "AccountLocked",
    "ActFortProbe",
    "AuthenticationError",
    "BindingRegistry",
    "EmailMessage",
    "FactorMismatch",
    "Internet",
    "InvalidSession",
    "MissingFactor",
    "OTPError",
    "OTPManager",
    "OTPPolicy",
    "ProbeObservation",
    "ProfilePage",
    "RateLimited",
    "Session",
    "SessionStore",
    "SimulatedService",
    "UnknownHandle",
    "UnknownPath",
    "UserRecord",
    "WebSimError",
    "apply_mask",
    "render_profile_value",
]
