"""Applying provider masking rules to sensitive values.

Providers render citizen IDs and bankcard numbers with most characters
replaced by ``*``.  The paper's Insight 4 is that the *choice of revealed
positions differs across providers*, so the views compose: this module turns
a :class:`~repro.model.account.MaskSpec` into a
:class:`~repro.model.identity.MaskedValue`, and the attack layer combines
views with :func:`repro.model.identity.combine_views`.
"""

from __future__ import annotations

from repro.model.account import MaskSpec
from repro.model.identity import MaskedValue


def apply_mask(value: str, spec: MaskSpec) -> MaskedValue:
    """Return the masked view of ``value`` under ``spec``."""
    return MaskedValue(value, spec.revealed_positions(len(value)))


def render_profile_value(value: str, spec: MaskSpec) -> str:
    """Render ``value`` the way the provider's profile page displays it."""
    return apply_mask(value, spec).rendered()
