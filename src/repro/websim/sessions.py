"""Login sessions for the simulated services.

A successful sign-in or password reset hands the caller a :class:`Session`
token.  Tokens are unforgeable capabilities within the simulation: profile
pages and linked-account logins validate them against the issuing service's
:class:`SessionStore`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Optional

from repro.model.factors import Platform
from repro.utils.clock import Clock
from repro.websim.errors import InvalidSession

_TOKEN_COUNTER = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class Session:
    """An authenticated session on one service for one user."""

    token: str
    service: str
    person_id: str
    platform: Platform
    issued_at: float
    expires_at: float


class SessionStore:
    """Issues and validates sessions for one service."""

    def __init__(self, service: str, clock: Clock, ttl: float = 3600.0) -> None:
        if ttl <= 0:
            raise ValueError("session ttl must be positive")
        self._service = service
        self._clock = clock
        self._ttl = ttl
        self._sessions: Dict[str, Session] = {}

    def issue(self, person_id: str, platform: Platform) -> Session:
        """Create a fresh session for ``person_id`` on ``platform``."""
        now = self._clock.now()
        token = f"sess-{self._service}-{next(_TOKEN_COUNTER):08d}"
        session = Session(
            token=token,
            service=self._service,
            person_id=person_id,
            platform=platform,
            issued_at=now,
            expires_at=now + self._ttl,
        )
        self._sessions[token] = session
        return session

    def validate(self, session: Optional[Session]) -> Session:
        """Return the live session or raise :class:`InvalidSession`."""
        if session is None:
            raise InvalidSession("no session supplied")
        stored = self._sessions.get(session.token)
        if stored is None or stored != session:
            raise InvalidSession("unknown or forged session token")
        if self._clock.now() > stored.expires_at:
            del self._sessions[session.token]
            raise InvalidSession("session expired")
        return stored

    def revoke(self, session: Session) -> None:
        """Invalidate ``session`` (password change revokes old sessions)."""
        self._sessions.pop(session.token, None)

    def revoke_all_for(self, person_id: str) -> int:
        """Invalidate every session of ``person_id``; returns the count."""
        doomed = [
            token
            for token, sess in self._sessions.items()
            if sess.person_id == person_id
        ]
        for token in doomed:
            del self._sessions[token]
        return len(doomed)

    @property
    def active_count(self) -> int:
        """Number of unexpired sessions currently stored."""
        now = self._clock.now()
        return sum(1 for s in self._sessions.values() if s.expires_at >= now)
