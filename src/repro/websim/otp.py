"""One-time-password issuance and validation.

Each simulated service owns an :class:`OTPManager` that issues numeric codes
to a destination handle (a phone number for SMS codes, an email address for
email codes/links) and validates them under a configurable
:class:`OTPPolicy`: expiry window, per-destination request rate limit, and a
wrong-attempt budget after which the code burns.

The codes themselves travel over the channel substrate -- the telecom
simulator for SMS, the internet mailboxes for email -- which is exactly
where the paper's attacker taps them.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional, Tuple

from repro.utils.clock import Clock
from repro.websim.errors import OTPError, RateLimited


@dataclasses.dataclass(frozen=True)
class OTPPolicy:
    """Issuance and validation policy for one service's OTP codes."""

    #: Number of decimal digits in a code.
    digits: int = 6
    #: Seconds a code stays valid after issuance.
    ttl: float = 300.0
    #: Minimum seconds between two issuance requests to one destination.
    resend_interval: float = 60.0
    #: Wrong guesses tolerated before the code is invalidated.
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.digits < 4:
            raise ValueError("OTP codes must have at least 4 digits")
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


@dataclasses.dataclass
class _IssuedCode:
    code: str
    issued_at: float
    expires_at: float
    attempts_left: int
    purpose: str


class OTPManager:
    """Issues and validates OTP codes for one service.

    Codes are keyed by ``(destination, purpose)`` so a sign-in code cannot be
    replayed into a password-reset flow.  Validation is strict one-shot: a
    successful check consumes the code.
    """

    def __init__(
        self,
        clock: Clock,
        policy: OTPPolicy = OTPPolicy(),
        rng: Optional[random.Random] = None,
    ) -> None:
        self._clock = clock
        self._policy = policy
        self._rng = rng if rng is not None else random.Random(0)
        self._active: Dict[Tuple[str, str], _IssuedCode] = {}
        self._last_request: Dict[str, float] = {}
        self._issued_count = 0

    @property
    def policy(self) -> OTPPolicy:
        """The active issuance/validation policy."""
        return self._policy

    @property
    def issued_count(self) -> int:
        """Total number of codes issued over the manager's lifetime."""
        return self._issued_count

    def issue(self, destination: str, purpose: str) -> str:
        """Issue a fresh code for ``destination`` and ``purpose``.

        Returns the code so the service can hand it to the delivery channel.
        Raises :class:`RateLimited` when the destination asked too recently.
        A new issuance replaces any previous active code for the same key.
        """
        now = self._clock.now()
        last = self._last_request.get(destination)
        if last is not None and now - last < self._policy.resend_interval:
            raise RateLimited(self._policy.resend_interval - (now - last))
        self._last_request[destination] = now

        code = "".join(
            str(self._rng.randrange(10)) for _ in range(self._policy.digits)
        )
        self._active[(destination, purpose)] = _IssuedCode(
            code=code,
            issued_at=now,
            expires_at=now + self._policy.ttl,
            attempts_left=self._policy.max_attempts,
            purpose=purpose,
        )
        self._issued_count += 1
        return code

    def validate(self, destination: str, purpose: str, code: str) -> None:
        """Check ``code``; raise :class:`OTPError` on any failure.

        A correct code is consumed.  A wrong code decrements the attempt
        budget and burns the code when the budget hits zero.
        """
        key = (destination, purpose)
        issued = self._active.get(key)
        if issued is None:
            raise OTPError(f"no active code for {destination!r} ({purpose})")
        if self._clock.now() > issued.expires_at:
            del self._active[key]
            raise OTPError("code expired")
        if code != issued.code:
            issued.attempts_left -= 1
            if issued.attempts_left <= 0:
                del self._active[key]
                raise OTPError("code invalidated after too many wrong attempts")
            raise OTPError("wrong code")
        del self._active[key]

    def peek(self, destination: str, purpose: str) -> Optional[str]:
        """Return the currently-active code without consuming it.

        This is a *test-only* backdoor (the simulated victim "reading their
        own phone"); attack code must never call it -- attackers obtain codes
        through interception or mailbox compromise.
        """
        issued = self._active.get((destination, purpose))
        if issued is None or self._clock.now() > issued.expires_at:
            return None
        return issued.code

    def has_active(self, destination: str, purpose: str) -> bool:
        """Whether an unexpired code is outstanding for the key."""
        return self.peek(destination, purpose) is not None
