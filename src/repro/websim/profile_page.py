"""Rendered logged-in profile pages.

A :class:`ProfilePage` is what an attacker (or the measurement probe) sees
after taking over an account: one entry per exposed information kind, each a
:class:`~repro.model.identity.MaskedValue`.  Unmasked kinds render fully
revealed; citizen IDs and bankcard numbers render under the provider's
:class:`~repro.model.account.MaskSpec` -- the per-provider inconsistency the
combining attack (Insight 4) feeds on.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Dict, FrozenSet, Mapping

from repro.model.account import ServiceProfile
from repro.model.factors import PersonalInfoKind, Platform
from repro.model.identity import Identity, MaskedValue
from repro.websim.masking import apply_mask

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.websim.internet import Internet


@dataclasses.dataclass(frozen=True)
class ProfilePage:
    """One rendering of one account's profile on one platform."""

    service: str
    platform: Platform
    person_id: str
    entries: Mapping[PersonalInfoKind, MaskedValue]
    #: Names of identity providers this account is bound to (shown in the
    #: "linked accounts" section many services have).
    bound_providers: FrozenSet[str]

    @classmethod
    def render(
        cls,
        profile: ServiceProfile,
        identity: Identity,
        platform: Platform,
        internet: "Internet",
    ) -> "ProfilePage":
        """Render ``identity``'s page on ``profile`` for ``platform``."""
        entries: Dict[PersonalInfoKind, MaskedValue] = {}
        for kind in profile.info_on(platform):
            try:
                value = identity.info_value(kind)
            except KeyError:
                value = f"<{kind.value}:{identity.person_id}>"
            spec = profile.mask_for(platform, kind)
            entries[kind] = apply_mask(value, spec)
        bound: FrozenSet[str] = frozenset()
        if PersonalInfoKind.BINDING_ACCOUNT in profile.info_on(platform):
            bound = internet.bindings.providers_for(
                identity.person_id, profile.name
            )
        return cls(
            service=profile.name,
            platform=platform,
            person_id=identity.person_id,
            entries=dict(entries),
            bound_providers=bound,
        )

    def visible_kinds(self) -> FrozenSet[PersonalInfoKind]:
        """Information kinds present on the page."""
        return frozenset(self.entries)

    def complete_values(self) -> Dict[PersonalInfoKind, str]:
        """Kinds whose full value is readable straight off the page."""
        return {
            kind: view.reveal()
            for kind, view in self.entries.items()
            if view.is_complete
        }

    def masked_views(self) -> Dict[PersonalInfoKind, MaskedValue]:
        """Kinds rendered with at least one character hidden."""
        return {
            kind: view
            for kind, view in self.entries.items()
            if not view.is_complete
        }

    def as_text(self) -> str:
        """The page as plain text, the way a scraper would capture it."""
        lines = [f"== {self.service} profile ({self.platform.value}) =="]
        for kind in sorted(self.entries, key=lambda k: k.value):
            lines.append(f"{kind.value}: {self.entries[kind].rendered()}")
        if self.bound_providers:
            lines.append("linked accounts: " + ", ".join(sorted(self.bound_providers)))
        return "\n".join(lines)
