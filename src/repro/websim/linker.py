"""OAuth-style account binding (login-with relations).

The paper's second dependency category is "the linked/binding relation among
the online accounts ... once the Gmail account is logged in, the Expedia
account linked to that Gmail account can also be logged in without
additional authentication" (Section III-D).  The :class:`BindingRegistry`
records which identity provider each user bound to each relying service;
:class:`~repro.websim.service.SimulatedService` consults it when verifying a
``LINKED_ACCOUNT`` factor, and profile pages surface it as
``BINDING_ACCOUNT`` information.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple


class BindingRegistry:
    """Records (user, relying service) -> identity providers bindings."""

    def __init__(self) -> None:
        self._bindings: Dict[Tuple[str, str], Set[str]] = {}

    def bind(self, person_id: str, relying_service: str, provider: str) -> None:
        """Bind ``person_id``'s ``relying_service`` account to ``provider``."""
        if relying_service == provider:
            raise ValueError("a service cannot be bound to itself")
        self._bindings.setdefault((person_id, relying_service), set()).add(provider)

    def unbind(self, person_id: str, relying_service: str, provider: str) -> None:
        """Remove one binding; missing bindings are ignored."""
        providers = self._bindings.get((person_id, relying_service))
        if providers is not None:
            providers.discard(provider)
            if not providers:
                del self._bindings[(person_id, relying_service)]

    def providers_for(self, person_id: str, relying_service: str) -> FrozenSet[str]:
        """Identity providers bound to this user's account on a service."""
        return frozenset(self._bindings.get((person_id, relying_service), ()))

    def relying_services_of(self, person_id: str, provider: str) -> FrozenSet[str]:
        """Services this user can enter via ``provider`` (the blast radius
        of a compromised identity-provider account)."""
        return frozenset(
            service
            for (pid, service), providers in self._bindings.items()
            if pid == person_id and provider in providers
        )

    def binding_count(self) -> int:
        """Total number of (user, service, provider) binding triples."""
        return sum(len(v) for v in self._bindings.values())
