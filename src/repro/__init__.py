"""Reproduction of "SMS Goes Nuclear: Fortifying SMS-Based MFA in Online
Account Ecosystem" (DSN 2021).

The library has three layers:

- **Substrates**: a simulated internet of account services
  (:mod:`repro.websim`), a simulated GSM network with passive sniffing and
  active MitM rigs (:mod:`repro.telecom`), and a calibrated 201-service
  ecosystem generator (:mod:`repro.catalog`).
- **ActFort** (:mod:`repro.core`): the paper's analysis framework --
  authentication-process analysis, personal-information collection, the
  Transformation Dependency Graph, and the strategy engine that outputs
  attack paths.
- **Applications**: the Chain Reaction Attack engine and the paper's three
  case studies (:mod:`repro.attack`), the Section IV measurement study
  (:mod:`repro.analysis`), and the Section VII countermeasures
  (:mod:`repro.defense`).

Quickstart::

    from repro import ActFort, CatalogBuilder

    deployed = CatalogBuilder().deploy()
    actfort = ActFort.from_ecosystem(deployed.ecosystem)
    chain = actfort.attack_chain("alipay")
    print(chain.describe())

The Transformation Dependency Graph runs on an inverted-index engine
(:mod:`repro.core.index`): factor->provider and info-kind->holder indexes
are precomputed per ecosystem, and parent/couple/dependency-level queries
are memoized, so paper-scale (201-service) analysis completes in
milliseconds and 1000-service ecosystems stay interactive.  To sweep
several attacker profiles over one ecosystem, share the indexes with the
batch API instead of rebuilding per profile::

    from repro import ActFort, AttackerProfile, build_default_ecosystem

    base = ActFort.from_ecosystem(build_default_ecosystem())
    profiles = [AttackerProfile.baseline(), AttackerProfile.with_se_database()]
    for analyzer in base.batch(profiles):
        print(analyzer.attacker, len(analyzer.potential_victims().compromised))

The seed's brute-force engine is preserved in :mod:`repro.core.reference`
as the differential-testing oracle; ``tests/test_tdg_equivalence.py`` locks
the indexed engine to it bit-for-bit.

Ecosystems also evolve *in place*: :mod:`repro.dynamic` keeps the indexed
engine live under typed mutations (services launching/retiring, auth paths
and masking rules changing, defenses rolling out provider by provider),
updating the inverted indexes per delta instead of rebuilding::

    from repro import AnalysisService, build_default_ecosystem
    from repro.api import RolloutQuery
    from repro.dynamic import email_hardening_rollout

    ecosystem = build_default_ecosystem()
    trajectory = AnalysisService(ecosystem).execute(
        RolloutQuery(steps=tuple(email_hardening_rollout(ecosystem)))
    )

``tests/test_dynamic_equivalence.py`` locks every incremental state to a
from-scratch rebuild, mirroring the indexed engine's discipline -- the
level fixpoints (:mod:`repro.levels`), the couple/weak-edge record
segments (:mod:`repro.streams`), the signature parent-set views, and the
measurement counters all splice under deltas instead of recomputing.

All of it serves through one surface: :mod:`repro.api`'s
:class:`~repro.api.AnalysisService` facade takes typed queries
(level reports, measurement, forward closure, defense ablations, staged
rollouts, cursor-paged couple/weak-edge streams), caches results under a
version key, and routes mutations through the incremental engines::

    from repro import AnalysisService, build_default_ecosystem
    from repro.api import LevelReportQuery, MeasurementQuery

    service = AnalysisService(build_default_ecosystem())
    report, measured = service.execute_batch(
        [LevelReportQuery(), MeasurementQuery()]
    )

``tests/test_api_service.py`` locks every legacy entry point's routed
results against direct engine use, mutations interleaved.

The top-level ``README.md`` is the front door: quickstart, the
documentation suite (``docs/architecture.md``, ``docs/serving.md``,
``docs/benchmarks.md``), the example walkthroughs in ``examples/``, and
the verify/bench/docs-check command map.
"""

from repro.model import (
    AttackerCapability,
    AttackerProfile,
    AuthPath,
    AuthPurpose,
    CredentialFactor,
    Ecosystem,
    Identity,
    IdentityGenerator,
    OnlineAccount,
    PathType,
    PersonalInfoKind,
    Platform,
    ServiceProfile,
)
from repro.core import (
    ActFort,
    AttackChain,
    DependencyLevel,
    StrategyEngine,
    TransformationDependencyGraph,
)
from repro.catalog import CatalogBuilder, DeployedEcosystem, build_default_ecosystem
from repro.websim import Internet
from repro.telecom import ActiveMitM, FourGJammer, GSMNetwork, OsmocomSniffer
from repro.attack import ChainExecutor, SnifferInterception
from repro.analysis import MeasurementStudy, compute_insights
from repro.defense import DefenseEvaluation
from repro.dynamic import DynamicAnalysisSession
from repro.api import AnalysisService

__version__ = "1.0.0"

__all__ = [
    "ActFort",
    "ActiveMitM",
    "AnalysisService",
    "AttackChain",
    "AttackerCapability",
    "AttackerProfile",
    "AuthPath",
    "AuthPurpose",
    "CatalogBuilder",
    "ChainExecutor",
    "CredentialFactor",
    "DefenseEvaluation",
    "DependencyLevel",
    "DeployedEcosystem",
    "DynamicAnalysisSession",
    "Ecosystem",
    "FourGJammer",
    "GSMNetwork",
    "Identity",
    "IdentityGenerator",
    "Internet",
    "MeasurementStudy",
    "OnlineAccount",
    "OsmocomSniffer",
    "PathType",
    "PersonalInfoKind",
    "Platform",
    "ServiceProfile",
    "SnifferInterception",
    "StrategyEngine",
    "TransformationDependencyGraph",
    "build_default_ecosystem",
    "compute_insights",
    "__version__",
]
