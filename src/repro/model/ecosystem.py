"""The Online Account Ecosystem container.

An :class:`Ecosystem` holds the service profiles under analysis plus,
optionally, the victims who hold accounts on them.  It is the unit every
higher layer consumes: ActFort analyzes an ecosystem, the catalog builder
produces one, the simulated internet instantiates one, and the defenses
transform one into a hardened copy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.model.account import OnlineAccount, ServiceProfile, count_paths
from repro.model.factors import Platform
from repro.model.identity import Identity


class Ecosystem:
    """A set of services and the accounts victims hold on them.

    Services are keyed by name and names must be unique.  The account list
    is optional: pure measurement (Figs. 3-4, Table I) only needs profiles,
    while attack execution needs concrete accounts.
    """

    def __init__(
        self,
        services: Iterable[ServiceProfile],
        accounts: Iterable[OnlineAccount] = (),
    ) -> None:
        self._services: Dict[str, ServiceProfile] = {}
        for service in services:
            if service.name in self._services:
                raise ValueError(f"duplicate service name: {service.name!r}")
            self._services[service.name] = service
        self._accounts: List[OnlineAccount] = []
        for account in accounts:
            self.add_account(account)

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------

    @property
    def services(self) -> Tuple[ServiceProfile, ...]:
        """All service profiles, in insertion order."""
        return tuple(self._services.values())

    @property
    def service_names(self) -> Tuple[str, ...]:
        """All service names, in insertion order."""
        return tuple(self._services.keys())

    def service(self, name: str) -> ServiceProfile:
        """Look a service up by name; raises :class:`KeyError` if absent."""
        return self._services[name]

    def has_service(self, name: str) -> bool:
        """Whether a service of that name is in the ecosystem."""
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[ServiceProfile]:
        return iter(self._services.values())

    def __contains__(self, name: object) -> bool:
        return name in self._services

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    @property
    def accounts(self) -> Tuple[OnlineAccount, ...]:
        """All registered accounts."""
        return tuple(self._accounts)

    def add_account(self, account: OnlineAccount) -> None:
        """Register a victim account; its service must be in the ecosystem."""
        if account.service.name not in self._services:
            raise ValueError(
                f"account references unknown service {account.service.name!r}"
            )
        self._accounts.append(account)

    def accounts_of(self, identity: Identity) -> Tuple[OnlineAccount, ...]:
        """All accounts held by ``identity``."""
        return tuple(
            a for a in self._accounts if a.identity.person_id == identity.person_id
        )

    def account_on(
        self, service_name: str, identity: Identity
    ) -> Optional[OnlineAccount]:
        """The account ``identity`` holds on ``service_name``, if any."""
        for account in self._accounts:
            if (
                account.service.name == service_name
                and account.identity.person_id == identity.person_id
            ):
                return account
        return None

    def identities(self) -> Tuple[Identity, ...]:
        """Distinct identities holding at least one account."""
        seen: Dict[str, Identity] = {}
        for account in self._accounts:
            seen.setdefault(account.identity.person_id, account.identity)
        return tuple(seen.values())

    # ------------------------------------------------------------------
    # Views and statistics
    # ------------------------------------------------------------------

    def domains(self) -> FrozenSet[str]:
        """Distinct service domains present in the ecosystem."""
        return frozenset(s.domain for s in self._services.values())

    def in_domain(self, domain: str) -> Tuple[ServiceProfile, ...]:
        """Services belonging to ``domain``."""
        return tuple(s for s in self._services.values() if s.domain == domain)

    def on_platform(self, platform: Platform) -> Tuple[ServiceProfile, ...]:
        """Services with at least one auth path on ``platform``."""
        return tuple(
            s for s in self._services.values() if platform in s.platforms
        )

    def fringe_services(self) -> Tuple[ServiceProfile, ...]:
        """Services takeover-able with phone + SMS code alone (fringe nodes)."""
        return tuple(s for s in self._services.values() if s.is_fringe)

    def total_auth_paths(self) -> int:
        """Total auth paths across all services (paper: 405 over 201)."""
        return count_paths(self._services.values())

    def restricted_to(self, names: Iterable[str]) -> "Ecosystem":
        """Return a sub-ecosystem containing only the named services.

        Accounts whose service falls outside the restriction are dropped.
        Used for the 44-account connection graph (Fig. 4) and the seed-only
        TDG (Fig. 11).
        """
        keep = set(names)
        missing = keep - set(self._services)
        if missing:
            raise KeyError(f"unknown services: {sorted(missing)}")
        services = [s for s in self._services.values() if s.name in keep]
        accounts = [a for a in self._accounts if a.service.name in keep]
        return Ecosystem(services, accounts)

    def with_service_added(self, profile: ServiceProfile) -> "Ecosystem":
        """Return a copy with ``profile`` appended to the catalog.

        The new service lands at the end of the insertion order, exactly
        where a from-scratch construction over the extended service list
        would put it -- the property the incremental index maintainer
        (:mod:`repro.dynamic.incremental`) relies on.
        """
        if profile.name in self._services:
            raise ValueError(f"duplicate service name: {profile.name!r}")
        return Ecosystem(
            list(self._services.values()) + [profile], self._accounts
        )

    def with_service_removed(self, name: str) -> "Ecosystem":
        """Return a copy without the named service.

        The relative insertion order of the remaining services is
        preserved; accounts on the removed service are dropped.
        """
        if name not in self._services:
            raise KeyError(f"unknown service: {name!r}")
        services = [s for s in self._services.values() if s.name != name]
        accounts = [a for a in self._accounts if a.service.name != name]
        return Ecosystem(services, accounts)

    def apply(self, mutation) -> Tuple["Ecosystem", object]:
        """Apply one dynamic mutation; returns ``(new_ecosystem, delta)``.

        ``mutation`` is any object implementing the
        :class:`repro.dynamic.events.Mutation` protocol (an ``apply_to``
        method returning the mutated copy plus an
        :class:`~repro.dynamic.events.EcosystemDelta` record of exactly
        which services were added, removed, or replaced).  The receiver is
        never modified; deltas are what the incremental engine consumes to
        update live indexes without a rebuild.
        """
        return mutation.apply_to(self)

    def with_services_replaced(
        self, replacements: Mapping[str, ServiceProfile]
    ) -> "Ecosystem":
        """Return a copy with some services swapped for hardened variants.

        Accounts are re-pointed at the replacement profiles.  This is how
        the defense layer applies countermeasures without mutating the
        baseline ecosystem.
        """
        for name, profile in replacements.items():
            if name not in self._services:
                raise KeyError(f"unknown service: {name!r}")
            if profile.name != name:
                raise ValueError(
                    f"replacement for {name!r} is named {profile.name!r}"
                )
        services = [
            replacements.get(s.name, s) for s in self._services.values()
        ]
        accounts = [
            dataclasses.replace(
                a, service=replacements.get(a.service.name, a.service)
            )
            for a in self._accounts
        ]
        return Ecosystem(services, accounts)

    def summary(self) -> Dict[str, object]:
        """A small statistics dict used by reports and examples."""
        return {
            "services": len(self._services),
            "accounts": len(self._accounts),
            "domains": sorted(self.domains()),
            "auth_paths": self.total_auth_paths(),
            "fringe_services": len(self.fringe_services()),
        }
