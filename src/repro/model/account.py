"""Service profiles, authentication paths and per-victim online accounts.

A :class:`ServiceProfile` is the static description of one Internet service:
which platforms it runs on, which authentication paths each platform offers
for sign-in and password reset, what personal information its logged-in user
interface exposes (per platform -- the paper's Insight 2 asymmetry), and how
it masks sensitive values.

An :class:`AuthPath` is the paper's ``vp_ik``: one way to authenticate,
defined by the set of credential factors ``cp_ik`` it demands.  Paths are
classified into the paper's three types (general / info / unique,
Section IV-B-1).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.model.factors import (
    CredentialFactor,
    FactorClass,
    PersonalInfoKind,
    Platform,
)
from repro.model.identity import Identity


class AuthPurpose(enum.Enum):
    """What an authentication path is for.

    The paper measures sign-in and password-reset separately and finds that
    "the percentage of services using merely SMS codes for sign-in is
    significantly lower than for password resetting, which implies that
    attacking accounts using password resetting is easier."
    """

    SIGN_IN = "sign_in"
    PASSWORD_RESET = "password_reset"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PathType(enum.Enum):
    """The paper's three-way classification of authentication paths.

    - ``GENERAL``: "uses basic authentication factors" -- passwords,
      usernames, phone/email handles and OTP codes.
    - ``INFO``: "requires factors like real names and phone numbers" --
      i.e. knowledge factors recoverable from exposed personal information.
    - ``UNIQUE``: "uses factors like biometrics" -- biometric, hardware and
      human-process factors an attacker cannot harvest.
    """

    GENERAL = "general"
    INFO = "info"
    UNIQUE = "unique"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# Basic factors whose presence does not lift a path out of GENERAL.
_BASIC_FACTORS: FrozenSet[CredentialFactor] = frozenset(
    {
        CredentialFactor.PASSWORD,
        CredentialFactor.USERNAME,
        CredentialFactor.CELLPHONE_NUMBER,
        CredentialFactor.EMAIL_ADDRESS,
        CredentialFactor.SMS_CODE,
        CredentialFactor.EMAIL_CODE,
        CredentialFactor.EMAIL_LINK,
        CredentialFactor.LINKED_ACCOUNT,
    }
)

_UNIQUE_FACTORS: FrozenSet[CredentialFactor] = frozenset(
    {
        CredentialFactor.FACE_SCAN,
        CredentialFactor.FINGERPRINT,
        CredentialFactor.U2F_KEY,
        CredentialFactor.TRUSTED_DEVICE,
        CredentialFactor.AUTHENTICATOR_TOTP,
        CredentialFactor.CUSTOMER_SERVICE,
    }
)


@dataclasses.dataclass(frozen=True)
class AuthPath:
    """One authentication path of one service on one platform.

    ``factors`` is the credential-factor set ``cp_ik`` the path demands; all
    factors must be supplied together for the path to succeed.  When the path
    includes :data:`CredentialFactor.LINKED_ACCOUNT`, ``linked_providers``
    names the identity providers whose accounts are accepted.
    """

    service: str
    platform: Platform
    purpose: AuthPurpose
    factors: FrozenSet[CredentialFactor]
    linked_providers: FrozenSet[str] = frozenset()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("an authentication path must demand at least one factor")
        if self.linked_providers and (
            CredentialFactor.LINKED_ACCOUNT not in self.factors
        ):
            raise ValueError(
                "linked_providers given but LINKED_ACCOUNT is not a factor"
            )

    def __hash__(self) -> int:
        # Paths key every hot memo in the indexed TDG engine (coverage,
        # pool covers), and the dataclass-generated hash re-hashes two
        # frozensets per lookup; memoizing it keeps warm-cache level
        # recomputation -- the incremental engine's steady state -- cheap.
        # Equal paths hash equally: the hash is a pure function of the
        # same fields the generated __eq__ compares.
        try:
            return self._cached_hash
        except AttributeError:
            value = hash(
                (
                    self.service,
                    self.platform,
                    self.purpose,
                    self.factors,
                    self.linked_providers,
                    self.label,
                )
            )
            object.__setattr__(self, "_cached_hash", value)
            return value

    @property
    def path_type(self) -> PathType:
        """Classify the path per the paper's general/info/unique taxonomy.

        ``UNIQUE`` dominates: a path demanding a fingerprint is unique even
        if it also wants a real name.  A path is ``INFO`` when it demands any
        non-basic knowledge factor.  Everything else is ``GENERAL``.
        """
        if self.factors & _UNIQUE_FACTORS:
            return PathType.UNIQUE
        if any(
            f.factor_class is FactorClass.KNOWLEDGE and f not in _BASIC_FACTORS
            for f in self.factors
        ):
            return PathType.INFO
        return PathType.GENERAL

    @property
    def is_sms_only(self) -> bool:
        """Whether the path needs nothing beyond a phone number and SMS code.

        These are the paper's *fringe* paths: the ones a Chain Reaction
        Attack can satisfy with interception alone, no prior compromise.
        """
        return self.factors <= frozenset(
            {CredentialFactor.CELLPHONE_NUMBER, CredentialFactor.SMS_CODE}
        )

    def describe(self) -> str:
        """Short human-readable rendering, e.g. ``reset[web]: PN+SC``."""
        shorthand = {
            CredentialFactor.SMS_CODE: "SC",
            CredentialFactor.EMAIL_CODE: "EMC",
            CredentialFactor.EMAIL_LINK: "EML",
            CredentialFactor.CELLPHONE_NUMBER: "PN",
            CredentialFactor.EMAIL_ADDRESS: "EM",
            CredentialFactor.CITIZEN_ID: "CID",
            CredentialFactor.REAL_NAME: "Name",
            CredentialFactor.BANKCARD_NUMBER: "BN",
            CredentialFactor.PASSWORD: "PW",
            CredentialFactor.CUSTOMER_SERVICE: "AS",
            CredentialFactor.USER_ID: "UID",
        }
        parts = sorted(shorthand.get(f, f.value) for f in self.factors)
        purpose = "login" if self.purpose is AuthPurpose.SIGN_IN else "reset"
        return f"{purpose}[{self.platform.value}]: " + "+".join(parts)


@dataclasses.dataclass(frozen=True)
class MaskSpec:
    """How a provider masks one sensitive value on its profile pages.

    ``reveal_prefix`` / ``reveal_suffix`` count characters left visible at
    each end; ``reveal_middle`` optionally names an explicit (start, stop)
    slice left visible in the middle (some providers mask the *ends* of the
    citizen ID instead of the middle, which is exactly the inconsistency
    Insight 4 exploits).
    """

    reveal_prefix: int = 0
    reveal_suffix: int = 0
    reveal_middle: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.reveal_prefix < 0 or self.reveal_suffix < 0:
            raise ValueError("reveal counts must be non-negative")
        if self.reveal_middle is not None:
            start, stop = self.reveal_middle
            if start < 0 or stop < start:
                raise ValueError("reveal_middle must be a valid (start, stop) slice")

    def revealed_positions(self, length: int) -> FrozenSet[int]:
        """Return the set of positions revealed for a value of ``length``."""
        positions = set(range(min(self.reveal_prefix, length)))
        positions.update(range(max(0, length - self.reveal_suffix), length))
        if self.reveal_middle is not None:
            start, stop = self.reveal_middle
            positions.update(range(min(start, length), min(stop, length)))
        return frozenset(positions)

    @classmethod
    def full(cls) -> "MaskSpec":
        """A spec that reveals the entire value (no masking at all)."""
        return cls(reveal_prefix=10_000)

    @classmethod
    def hidden(cls) -> "MaskSpec":
        """A spec that reveals nothing."""
        return cls()


@dataclasses.dataclass(frozen=True)
class ServiceProfile:
    """Static description of one Internet service across its platforms.

    ``exposed_info`` maps each platform to the information kinds visible on
    the logged-in user interface; ``mask_specs`` maps ``(platform, kind)`` to
    the provider's masking rule for maskable kinds (citizen ID, bankcard
    number).  Kinds absent from ``mask_specs`` are exposed in full.
    """

    name: str
    domain: str
    auth_paths: Tuple[AuthPath, ...]
    exposed_info: Mapping[Platform, FrozenSet[PersonalInfoKind]]
    mask_specs: Mapping[Tuple[Platform, PersonalInfoKind], MaskSpec] = (
        dataclasses.field(default_factory=dict)
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        for path in self.auth_paths:
            if path.service != self.name:
                raise ValueError(
                    f"auth path belongs to {path.service!r}, not {self.name!r}"
                )

    @property
    def platforms(self) -> FrozenSet[Platform]:
        """Platforms on which this service has at least one auth path."""
        return frozenset(p.platform for p in self.auth_paths)

    def paths(
        self,
        platform: Optional[Platform] = None,
        purpose: Optional[AuthPurpose] = None,
    ) -> Tuple[AuthPath, ...]:
        """Return auth paths, optionally filtered by platform and purpose."""
        result = self.auth_paths
        if platform is not None:
            result = tuple(p for p in result if p.platform is platform)
        if purpose is not None:
            result = tuple(p for p in result if p.purpose is purpose)
        return result

    def reset_paths(self, platform: Optional[Platform] = None) -> Tuple[AuthPath, ...]:
        """Return the password-reset paths (the attack-relevant ones)."""
        return self.paths(platform=platform, purpose=AuthPurpose.PASSWORD_RESET)

    def signin_paths(self, platform: Optional[Platform] = None) -> Tuple[AuthPath, ...]:
        """Return the sign-in paths."""
        return self.paths(platform=platform, purpose=AuthPurpose.SIGN_IN)

    def takeover_paths(
        self, platform: Optional[Platform] = None
    ) -> Tuple[AuthPath, ...]:
        """Return every path that yields account control.

        Both a successful sign-in and a successful password reset hand the
        attacker the account, so the TDG considers the union.
        """
        return self.paths(platform=platform)

    def info_on(self, platform: Platform) -> FrozenSet[PersonalInfoKind]:
        """Information kinds exposed on ``platform`` after login."""
        return self.exposed_info.get(platform, frozenset())

    def all_exposed_info(self) -> FrozenSet[PersonalInfoKind]:
        """Union of exposed information across all platforms.

        An attacker who controls the account can inspect every client, so
        the TDG uses the union (the paper's Gome example: the mobile end
        exposes the SSN part the web end covers).
        """
        union: FrozenSet[PersonalInfoKind] = frozenset()
        for kinds in self.exposed_info.values():
            union |= kinds
        return union

    def mask_for(self, platform: Platform, kind: PersonalInfoKind) -> MaskSpec:
        """Return the masking rule for ``kind`` on ``platform``.

        Kinds without an explicit rule are exposed in full, mirroring the
        measurement's finding that most services show phone numbers, emails
        and names unmasked.
        """
        return self.mask_specs.get((platform, kind), MaskSpec.full())

    @property
    def is_fringe(self) -> bool:
        """Whether the service is a *fringe node* (Fig. 4's red dots).

        Fringe services "only need cellphone plus SMS Code for
        authentication" on at least one takeover path.
        """
        return any(p.is_sms_only for p in self.auth_paths)

    def strongest_path_type(self) -> PathType:
        """Return the most demanding path type the service offers anywhere."""
        order = {PathType.GENERAL: 0, PathType.INFO: 1, PathType.UNIQUE: 2}
        best = PathType.GENERAL
        for path in self.auth_paths:
            if order[path.path_type] > order[best]:
                best = path.path_type
        return best


@dataclasses.dataclass(frozen=True)
class OnlineAccount:
    """One victim's concrete account on one service.

    The analytical machinery (TDG, strategy engine) works at the
    :class:`ServiceProfile` level; :class:`OnlineAccount` is the runtime
    object the simulated internet and the attack executor manipulate.
    """

    service: ServiceProfile
    identity: Identity

    @property
    def key(self) -> Tuple[str, str]:
        """Stable (service name, person id) identifier."""
        return (self.service.name, self.identity.person_id)

    def exposed_values(
        self, platform: Platform
    ) -> Dict[PersonalInfoKind, str]:
        """Ground-truth values for every kind exposed on ``platform``.

        Masking is *not* applied here; that is the responsibility of the
        simulated profile page (:mod:`repro.websim.profile_page`), which is
        what the attacker actually reads.
        """
        values: Dict[PersonalInfoKind, str] = {}
        for kind in self.service.info_on(platform):
            try:
                values[kind] = self.identity.info_value(kind)
            except KeyError:
                # Kinds with no canonical identity value (order history,
                # chat history, cloud photos) render as opaque markers.
                values[kind] = f"<{kind.value}:{self.identity.person_id}>"
        return values


def count_paths(profiles: Iterable[ServiceProfile]) -> int:
    """Total number of authentication paths across ``profiles``.

    The paper reports "405 authentication paths in total" across its 201
    services; the catalog builder calibrates against this via the same
    counting rule.
    """
    return sum(len(p.auth_paths) for p in profiles)
