"""Domain model substrate for the Online Account Ecosystem.

This package defines the vocabulary the rest of the library speaks:

- :mod:`repro.model.factors` -- the credential-factor and personal-information
  taxonomies, plus the *reciprocal transformation* mapping between them that
  the paper identifies as the root cause of Chain Reaction Attacks.
- :mod:`repro.model.identity` -- a victim's real-world identity (name, citizen
  ID, phone number, bank cards, ...), the ground truth that services expose
  fragments of.
- :mod:`repro.model.account` -- service profiles, authentication paths and
  per-person online accounts.
- :mod:`repro.model.attacker` -- the attacker profile (``AP`` in the paper):
  capabilities such as SMS-code interception and access to a social
  engineering database.
- :mod:`repro.model.ecosystem` -- the container tying services, accounts and
  identities into one analyzable Online Account Ecosystem.
"""

from repro.model.factors import (
    CredentialFactor,
    FactorClass,
    InfoCategory,
    PersonalInfoKind,
    factor_satisfied_by_info,
    info_satisfying_factor,
    is_interceptable_otp,
    is_robust_factor,
)
from repro.model.identity import Identity, IdentityGenerator, MaskedValue
from repro.model.account import (
    AuthPath,
    AuthPurpose,
    OnlineAccount,
    PathType,
    Platform,
    ServiceProfile,
)
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.ecosystem import Ecosystem

__all__ = [
    "AttackerCapability",
    "AttackerProfile",
    "AuthPath",
    "AuthPurpose",
    "CredentialFactor",
    "Ecosystem",
    "FactorClass",
    "Identity",
    "IdentityGenerator",
    "InfoCategory",
    "MaskedValue",
    "OnlineAccount",
    "PathType",
    "PersonalInfoKind",
    "Platform",
    "ServiceProfile",
    "factor_satisfied_by_info",
    "info_satisfying_factor",
    "is_interceptable_otp",
    "is_robust_factor",
]
