"""Credential-factor and personal-information taxonomies.

The paper's central observation (Section II) is the *reciprocal
transformation* between two families of values:

- **Credential factors** (``CF`` in the paper's notation): what a service
  demands before it lets you sign in or reset a password -- an SMS code, an
  email code, a citizen ID, a bankcard number, a face scan, ...
- **Personal information** (``PI``): what a service *exposes* on its
  logged-in user-interface pages -- the real name, the phone number, masked
  digits of a bankcard, acquaintance names, ...

Personal information harvested from a compromised account becomes a
credential factor for the next account in the chain.  This module encodes
both taxonomies and the transformation mapping between them, which the
Transformation Dependency Graph (:mod:`repro.core.tdg`) is built on.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Mapping


class Platform(enum.Enum):
    """A service's client platform.

    The paper measures websites and mobile applications separately and finds
    a systematic asymmetry between them (Insight 2), so the platform is part
    of almost every observable in this library.
    """

    WEB = "web"
    MOBILE = "mobile"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class FactorClass(enum.Enum):
    """Coarse classification of credential factors.

    ``KNOWLEDGE`` factors are recoverable from leaked or exposed personal
    information.  ``OTP`` factors are one-time codes delivered over some
    channel and are only as strong as the channel.  ``POSSESSION`` and
    ``BIOMETRIC`` factors require physical access to a device or the victim's
    body and form the robust end of the spectrum (Insight 5).  ``PROCESS``
    factors are human-in-the-loop flows such as customer service.
    """

    KNOWLEDGE = "knowledge"
    OTP = "otp"
    POSSESSION = "possession"
    BIOMETRIC = "biometric"
    PROCESS = "process"


class CredentialFactor(enum.Enum):
    """A single credential factor a service may demand on an auth path.

    The set follows Table II of the paper (``SC``, ``PN``, ``EM``, ``EMC``,
    ``CID``, ``BN``, ``AS``...), widened with the factors the measurement
    section mentions (biometrics, U2F keys, device checks, security
    questions).
    """

    # Knowledge factors -- recoverable from exposed personal information.
    PASSWORD = "password"
    USERNAME = "username"
    CELLPHONE_NUMBER = "cellphone_number"
    EMAIL_ADDRESS = "email_address"
    REAL_NAME = "real_name"
    CITIZEN_ID = "citizen_id"
    BANKCARD_NUMBER = "bankcard_number"
    ADDRESS = "address"
    USER_ID = "user_id"
    STUDENT_ID = "student_id"
    ACQUAINTANCE_NAME = "acquaintance_name"
    SECURITY_QUESTION = "security_question"

    # OTP factors -- one-time codes over a delivery channel.
    SMS_CODE = "sms_code"
    EMAIL_CODE = "email_code"
    EMAIL_LINK = "email_link"
    AUTHENTICATOR_TOTP = "authenticator_totp"

    # Possession factors.
    U2F_KEY = "u2f_key"
    TRUSTED_DEVICE = "trusted_device"
    LINKED_ACCOUNT = "linked_account"

    # Biometric factors.
    FACE_SCAN = "face_scan"
    FINGERPRINT = "fingerprint"

    # Process factors.
    CUSTOMER_SERVICE = "customer_service"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def factor_class(self) -> FactorClass:
        """Return the coarse :class:`FactorClass` of this factor."""
        return _FACTOR_CLASS[self]


_FACTOR_CLASS: Mapping[CredentialFactor, FactorClass] = {
    CredentialFactor.PASSWORD: FactorClass.KNOWLEDGE,
    CredentialFactor.USERNAME: FactorClass.KNOWLEDGE,
    CredentialFactor.CELLPHONE_NUMBER: FactorClass.KNOWLEDGE,
    CredentialFactor.EMAIL_ADDRESS: FactorClass.KNOWLEDGE,
    CredentialFactor.REAL_NAME: FactorClass.KNOWLEDGE,
    CredentialFactor.CITIZEN_ID: FactorClass.KNOWLEDGE,
    CredentialFactor.BANKCARD_NUMBER: FactorClass.KNOWLEDGE,
    CredentialFactor.ADDRESS: FactorClass.KNOWLEDGE,
    CredentialFactor.USER_ID: FactorClass.KNOWLEDGE,
    CredentialFactor.STUDENT_ID: FactorClass.KNOWLEDGE,
    CredentialFactor.ACQUAINTANCE_NAME: FactorClass.KNOWLEDGE,
    CredentialFactor.SECURITY_QUESTION: FactorClass.KNOWLEDGE,
    CredentialFactor.SMS_CODE: FactorClass.OTP,
    CredentialFactor.EMAIL_CODE: FactorClass.OTP,
    CredentialFactor.EMAIL_LINK: FactorClass.OTP,
    CredentialFactor.AUTHENTICATOR_TOTP: FactorClass.OTP,
    CredentialFactor.U2F_KEY: FactorClass.POSSESSION,
    CredentialFactor.TRUSTED_DEVICE: FactorClass.POSSESSION,
    CredentialFactor.LINKED_ACCOUNT: FactorClass.POSSESSION,
    CredentialFactor.FACE_SCAN: FactorClass.BIOMETRIC,
    CredentialFactor.FINGERPRINT: FactorClass.BIOMETRIC,
    CredentialFactor.CUSTOMER_SERVICE: FactorClass.PROCESS,
}


class InfoCategory(enum.Enum):
    """The paper's five categories of personal information (Section III-C)."""

    IDENTITY = "identity"
    ACCOUNT = "account"
    RELATIONSHIP = "relationship"
    PROPERTY = "property"
    HISTORY = "history"


class PersonalInfoKind(enum.Enum):
    """A kind of personal information an account may expose after login.

    The list follows the paper's PIA attribute list (Section III-D): "real
    name, citizen ID, cellphone number, e-mail address, bankcard number,
    address, user ID, binding account, acquaintance name, device type, and
    other potential authentication required information", plus the history
    records the collection module classifies (shopping lists, chat history,
    cloud photos -- Section III-C and the cloud-storage discussion in
    Section IV-B).
    """

    REAL_NAME = "real_name"
    CITIZEN_ID = "citizen_id"
    CELLPHONE_NUMBER = "cellphone_number"
    EMAIL_ADDRESS = "email_address"
    ADDRESS = "address"
    USER_ID = "user_id"
    BINDING_ACCOUNT = "binding_account"
    ACQUAINTANCE_NAME = "acquaintance_name"
    DEVICE_TYPE = "device_type"
    BANKCARD_NUMBER = "bankcard_number"
    STUDENT_ID = "student_id"
    SECURITY_ANSWERS = "security_answers"
    ID_PHOTO = "id_photo"
    ORDER_HISTORY = "order_history"
    CHAT_HISTORY = "chat_history"
    CLOUD_PHOTOS = "cloud_photos"
    #: Not a profile-page field: controlling the account *is* the asset.
    #: Email services yield their mailbox to whoever controls them, which is
    #: what converts a compromised email account into EMAIL_CODE/EMAIL_LINK
    #: factors everywhere else (Insight 1, Case II).
    MAILBOX_ACCESS = "mailbox_access"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def category(self) -> InfoCategory:
        """Return the paper's five-way category for this kind."""
        return _INFO_CATEGORY[self]


_INFO_CATEGORY: Mapping[PersonalInfoKind, InfoCategory] = {
    PersonalInfoKind.REAL_NAME: InfoCategory.IDENTITY,
    PersonalInfoKind.CITIZEN_ID: InfoCategory.IDENTITY,
    PersonalInfoKind.ID_PHOTO: InfoCategory.IDENTITY,
    PersonalInfoKind.ADDRESS: InfoCategory.IDENTITY,
    PersonalInfoKind.STUDENT_ID: InfoCategory.IDENTITY,
    PersonalInfoKind.CELLPHONE_NUMBER: InfoCategory.ACCOUNT,
    PersonalInfoKind.EMAIL_ADDRESS: InfoCategory.ACCOUNT,
    PersonalInfoKind.USER_ID: InfoCategory.ACCOUNT,
    PersonalInfoKind.BINDING_ACCOUNT: InfoCategory.ACCOUNT,
    PersonalInfoKind.DEVICE_TYPE: InfoCategory.ACCOUNT,
    PersonalInfoKind.SECURITY_ANSWERS: InfoCategory.ACCOUNT,
    PersonalInfoKind.ACQUAINTANCE_NAME: InfoCategory.RELATIONSHIP,
    PersonalInfoKind.BANKCARD_NUMBER: InfoCategory.PROPERTY,
    PersonalInfoKind.ORDER_HISTORY: InfoCategory.HISTORY,
    PersonalInfoKind.CHAT_HISTORY: InfoCategory.HISTORY,
    PersonalInfoKind.CLOUD_PHOTOS: InfoCategory.HISTORY,
    PersonalInfoKind.MAILBOX_ACCESS: InfoCategory.ACCOUNT,
}


# The reciprocal transformation: which exposed personal-information kinds
# satisfy which credential factors.  An edge PI -> CF in the Transformation
# Dependency Graph exists exactly when the PI kind appears in this mapping
# for the CF (Section III-D: "Add e(v_im, v_jm) in G if PI_jn = CF_im").
_TRANSFORMATION: Mapping[CredentialFactor, FrozenSet[PersonalInfoKind]] = {
    CredentialFactor.CELLPHONE_NUMBER: frozenset({PersonalInfoKind.CELLPHONE_NUMBER}),
    CredentialFactor.EMAIL_ADDRESS: frozenset({PersonalInfoKind.EMAIL_ADDRESS}),
    CredentialFactor.REAL_NAME: frozenset({PersonalInfoKind.REAL_NAME}),
    # A citizen ID can be read directly off a profile page that exposes it,
    # or off an ID-card photo backed up to cloud storage (Section IV-B's
    # Baidu Pan / Dropbox discussion).
    CredentialFactor.CITIZEN_ID: frozenset(
        {PersonalInfoKind.CITIZEN_ID, PersonalInfoKind.ID_PHOTO}
    ),
    CredentialFactor.BANKCARD_NUMBER: frozenset({PersonalInfoKind.BANKCARD_NUMBER}),
    CredentialFactor.ADDRESS: frozenset({PersonalInfoKind.ADDRESS}),
    CredentialFactor.USER_ID: frozenset({PersonalInfoKind.USER_ID}),
    CredentialFactor.STUDENT_ID: frozenset({PersonalInfoKind.STUDENT_ID}),
    CredentialFactor.ACQUAINTANCE_NAME: frozenset(
        {PersonalInfoKind.ACQUAINTANCE_NAME, PersonalInfoKind.CHAT_HISTORY}
    ),
    CredentialFactor.SECURITY_QUESTION: frozenset(
        {PersonalInfoKind.SECURITY_ANSWERS}
    ),
    CredentialFactor.USERNAME: frozenset(
        {PersonalInfoKind.USER_ID, PersonalInfoKind.EMAIL_ADDRESS}
    ),
    # Controlling a bound account satisfies a login-with / linked-account
    # factor (the Gmail -> Expedia example in Section III-D).
    CredentialFactor.LINKED_ACCOUNT: frozenset({PersonalInfoKind.BINDING_ACCOUNT}),
    # Controlling the victim's email account yields every email-delivered
    # OTP (Case II: Gmail hands over PayPal's token).
    CredentialFactor.EMAIL_CODE: frozenset({PersonalInfoKind.MAILBOX_ACCESS}),
    CredentialFactor.EMAIL_LINK: frozenset({PersonalInfoKind.MAILBOX_ACCESS}),
}

# Factors that can never be satisfied by harvested information alone.
_ROBUST: FrozenSet[CredentialFactor] = frozenset(
    {
        CredentialFactor.U2F_KEY,
        CredentialFactor.FACE_SCAN,
        CredentialFactor.FINGERPRINT,
        CredentialFactor.TRUSTED_DEVICE,
        CredentialFactor.AUTHENTICATOR_TOTP,
    }
)

# OTP factors whose delivery channel the paper's attacker can tap.  SMS codes
# fall to GSM sniffing / active MitM; email codes and links fall once the
# email account itself is compromised (which is why email is "the gateway").
_CHANNEL_OTPS: FrozenSet[CredentialFactor] = frozenset(
    {
        CredentialFactor.SMS_CODE,
        CredentialFactor.EMAIL_CODE,
        CredentialFactor.EMAIL_LINK,
    }
)


def info_satisfying_factor(factor: CredentialFactor) -> FrozenSet[PersonalInfoKind]:
    """Return the personal-information kinds that satisfy ``factor``.

    Returns the empty set for factors that cannot be recovered from exposed
    information (biometrics, hardware keys, OTP codes -- those have their own
    acquisition channels).
    """
    return _TRANSFORMATION.get(factor, frozenset())


def factor_satisfied_by_info(
    factor: CredentialFactor, available: Iterable[PersonalInfoKind]
) -> bool:
    """Return whether any information kind in ``available`` satisfies ``factor``."""
    kinds = _TRANSFORMATION.get(factor)
    if not kinds:
        return False
    return any(kind in kinds for kind in available)


def is_robust_factor(factor: CredentialFactor) -> bool:
    """Return whether ``factor`` resists information-driven attacks entirely.

    These are the paper's Insight 5 factors: biometrics and U2F keys (plus
    trusted devices and authenticator apps), which "are hard for attackers to
    mimic" and terminate Chain Reaction Attack paths.
    """
    return factor in _ROBUST


def is_interceptable_otp(factor: CredentialFactor) -> bool:
    """Return whether ``factor`` is an OTP with an attackable delivery channel.

    SMS codes are interceptable over the air; email codes and links become
    available once the email account is compromised.  Authenticator TOTP is
    *not* included: it never transits an attackable channel.
    """
    return factor in _CHANNEL_OTPS


def knowledge_factors() -> FrozenSet[CredentialFactor]:
    """Return all knowledge-class factors (recoverable from exposed info)."""
    return frozenset(f for f in CredentialFactor if f.factor_class is FactorClass.KNOWLEDGE)


def all_transformation_pairs() -> FrozenSet[tuple]:
    """Return every (info kind, factor) pair in the transformation mapping.

    Exposed primarily for property-based tests that check the TDG generator
    creates exactly the edges this mapping licenses.
    """
    pairs = set()
    for factor, kinds in _TRANSFORMATION.items():
        for kind in kinds:
            pairs.add((kind, factor))
    return frozenset(pairs)
