"""Attacker profiles -- the paper's ``AP``.

The Transformation Dependency Graph carries "an attacker profile (AP) which
contains information about an assumed attacker's capabilities, such as SMS
Code interception, social engineering database, and etc." (Section III-D).
The profile determines which credential factors the attacker can satisfy
*without* compromising any account first, which in turn decides which nodes
are fringe nodes and where chains can start.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Iterable

from repro.model.factors import CredentialFactor, PersonalInfoKind


class AttackerCapability(enum.Enum):
    """One capability an attacker profile may include."""

    #: Can intercept SMS codes over the air (GSM sniffing or active MitM).
    SMS_INTERCEPTION = "sms_interception"
    #: Knows the victim's cellphone number (recon prerequisite of both the
    #: random and the targeted attack in Section II).
    KNOWS_PHONE_NUMBER = "knows_phone_number"
    #: Knows the victim's home address (needed to get within radio range).
    KNOWS_ADDRESS = "knows_address"
    #: Has a leaked-PII / social-engineering database to draw identity
    #: details from (Section V-A-1's "existing illegal databases").
    SE_DATABASE = "se_database"
    #: Willing to run human social-engineering against customer service
    #: (the Alipay web-client reset option in Case III).
    SOCIAL_ENGINEERING = "social_engineering"
    #: Can read codes/links delivered to an email account *it has already
    #: compromised*.  This is implicit in the paper's chains; modelling it
    #: as a capability lets ablations turn it off.
    EMAIL_CHANNEL_AFTER_COMPROMISE = "email_channel_after_compromise"


#: Capabilities of the paper's baseline attacker: within radio range of the
#: victim, phone number in hand, SMS interception rig running.
BASELINE_CAPABILITIES: FrozenSet[AttackerCapability] = frozenset(
    {
        AttackerCapability.SMS_INTERCEPTION,
        AttackerCapability.KNOWS_PHONE_NUMBER,
        AttackerCapability.KNOWS_ADDRESS,
        AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE,
    }
)


@dataclasses.dataclass(frozen=True)
class AttackerProfile:
    """The attacker's standing capabilities plus any pre-known information.

    ``known_info`` holds information kinds the attacker starts with
    independent of any account compromise (e.g. the phone number from
    phishing Wi-Fi, or name/citizen-ID from an SE database).
    """

    capabilities: FrozenSet[AttackerCapability] = BASELINE_CAPABILITIES
    known_info: FrozenSet[PersonalInfoKind] = frozenset()

    @classmethod
    def baseline(cls) -> "AttackerProfile":
        """The paper's default attacker: phone number + SMS interception."""
        return cls(
            capabilities=BASELINE_CAPABILITIES,
            known_info=frozenset({PersonalInfoKind.CELLPHONE_NUMBER}),
        )

    @classmethod
    def with_se_database(cls) -> "AttackerProfile":
        """Baseline attacker plus a leaked-PII database.

        The SE database supplies the targeted-attack extras the paper
        mentions: the victim's name, address and (in the Chinese ecosystem,
        per Case III) frequently also the citizen ID.
        """
        return cls(
            capabilities=BASELINE_CAPABILITIES
            | frozenset(
                {
                    AttackerCapability.SE_DATABASE,
                    AttackerCapability.SOCIAL_ENGINEERING,
                }
            ),
            known_info=frozenset(
                {
                    PersonalInfoKind.CELLPHONE_NUMBER,
                    PersonalInfoKind.REAL_NAME,
                    PersonalInfoKind.ADDRESS,
                }
            ),
        )

    @classmethod
    def passive_observer(cls) -> "AttackerProfile":
        """An attacker with no interception ability at all (control case)."""
        return cls(capabilities=frozenset(), known_info=frozenset())

    def can_intercept_sms(self) -> bool:
        """Whether the profile includes over-the-air SMS interception."""
        return AttackerCapability.SMS_INTERCEPTION in self.capabilities

    def innately_satisfiable(self) -> FrozenSet[CredentialFactor]:
        """Credential factors satisfiable with zero compromised accounts.

        This is the seed set for forward closure: typically
        ``{CELLPHONE_NUMBER, SMS_CODE}`` for the baseline profile.  Email
        codes are *not* innate -- they require the email account first.
        """
        factors = set()
        if AttackerCapability.KNOWS_PHONE_NUMBER in self.capabilities or (
            PersonalInfoKind.CELLPHONE_NUMBER in self.known_info
        ):
            factors.add(CredentialFactor.CELLPHONE_NUMBER)
        if self.can_intercept_sms() and (
            CredentialFactor.CELLPHONE_NUMBER in factors
        ):
            # Interception requires knowing which number to watch for.
            factors.add(CredentialFactor.SMS_CODE)
        if PersonalInfoKind.REAL_NAME in self.known_info:
            factors.add(CredentialFactor.REAL_NAME)
        if PersonalInfoKind.ADDRESS in self.known_info:
            factors.add(CredentialFactor.ADDRESS)
        if PersonalInfoKind.CITIZEN_ID in self.known_info:
            factors.add(CredentialFactor.CITIZEN_ID)
        if PersonalInfoKind.BANKCARD_NUMBER in self.known_info:
            factors.add(CredentialFactor.BANKCARD_NUMBER)
        # CUSTOMER_SERVICE is deliberately absent: social-engineering a
        # human agent additionally needs a dossier of personal facts, which
        # the TDG and strategy engine check against accumulated information.
        return frozenset(factors)

    def with_known_info(
        self, extra: Iterable[PersonalInfoKind]
    ) -> "AttackerProfile":
        """Return a copy whose ``known_info`` additionally contains ``extra``."""
        return dataclasses.replace(
            self, known_info=self.known_info | frozenset(extra)
        )

    def without_capability(
        self, capability: AttackerCapability
    ) -> "AttackerProfile":
        """Return a copy lacking ``capability`` (for defense ablations)."""
        return dataclasses.replace(
            self, capabilities=self.capabilities - {capability}
        )
