"""Victim identities and partially-masked values.

An :class:`Identity` is the ground truth a victim carries through the
ecosystem: their legal name, citizen ID, cellphone number, bank cards and so
on.  Simulated services expose *fragments* of this ground truth on their
logged-in profile pages -- often masked, and (critically, Insight 4 of the
paper) masked *inconsistently across providers*, which lets an attacker
reconstruct a full value by combining several masked views.

:class:`MaskedValue` models one masked view: the underlying string plus the
set of character positions the provider reveals.  Combining views is set
union over revealed positions.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.model.factors import PersonalInfoKind

_GIVEN_NAMES: Sequence[str] = (
    "Wei", "Li", "Fang", "Min", "Jing", "Yan", "Lei", "Tao", "Hui", "Jun",
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
)

_FAMILY_NAMES: Sequence[str] = (
    "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
    "Zhou", "Smith", "Johnson", "Brown", "Garcia", "Miller", "Davis",
    "Martinez", "Lopez", "Wilson", "Anderson",
)

_STREETS: Sequence[str] = (
    "Zheda Rd", "Wensan Rd", "Moganshan Rd", "Nanshan Ave", "Main St",
    "Oak Ave", "2nd St", "Harbor Blvd", "Lakeview Dr", "Hilltop Ln",
)

_CITIES: Sequence[str] = (
    "Hangzhou", "Shanghai", "Beijing", "Shenzhen", "Chengdu",
    "Springfield", "Riverton", "Lakewood", "Fairview", "Georgetown",
)

_DEVICES: Sequence[str] = (
    "iPhone 12", "iPhone SE", "Pixel 4", "Huawei P40", "Xiaomi Mi 10",
    "Galaxy S21", "OnePlus 8T", "iPad Air", "Redmi Note 9",
)


class MaskedValue:
    """A string value of which only some character positions are revealed.

    Providers mask sensitive strings such as citizen IDs and bankcard numbers
    by replacing most characters with ``*``.  The paper's Insight 4 observes
    that "masked digits ... are inconsistent in different online accounts",
    so an attacker holding several differently-masked views of the same value
    can union the revealed positions and recover the full string.
    """

    __slots__ = ("_value", "_revealed")

    def __init__(self, value: str, revealed: Iterable[int]) -> None:
        self._value = value
        revealed_set = frozenset(revealed)
        for index in revealed_set:
            if not 0 <= index < len(value):
                raise ValueError(
                    f"revealed position {index} outside value of length {len(value)}"
                )
        self._revealed = revealed_set

    @classmethod
    def fully_revealed(cls, value: str) -> "MaskedValue":
        """Return a view revealing every character of ``value``."""
        return cls(value, range(len(value)))

    @classmethod
    def fully_masked(cls, value: str) -> "MaskedValue":
        """Return a view revealing no characters of ``value``."""
        return cls(value, ())

    @property
    def length(self) -> int:
        """Length of the underlying value."""
        return len(self._value)

    @property
    def revealed_positions(self) -> FrozenSet[int]:
        """The set of character positions this view reveals."""
        return self._revealed

    @property
    def is_complete(self) -> bool:
        """Whether every position is revealed."""
        return len(self._revealed) == len(self._value)

    def rendered(self, mask_char: str = "*") -> str:
        """Return the string as a user would see it on a profile page."""
        return "".join(
            ch if i in self._revealed else mask_char
            for i, ch in enumerate(self._value)
        )

    def reveal(self) -> str:
        """Return the full underlying value.

        Only valid when the view is complete; partial views raise
        :class:`ValueError` because the attacker genuinely does not know the
        hidden characters.
        """
        if not self.is_complete:
            raise ValueError("cannot reveal an incomplete masked value")
        return self._value

    def combine(self, other: "MaskedValue") -> "MaskedValue":
        """Union this view with another view *of the same underlying value*.

        This is the combining attack of Insight 4.  Combining views of
        different values raises :class:`ValueError` -- an attacker can detect
        the mismatch because overlapping revealed positions would disagree.
        """
        if other._value != self._value:
            raise ValueError("masked views are not of the same underlying value")
        return MaskedValue(self._value, self._revealed | other._revealed)

    def matches(self, candidate: str) -> bool:
        """Whether ``candidate`` is consistent with the revealed positions."""
        if len(candidate) != len(self._value):
            return False
        return all(candidate[i] == self._value[i] for i in self._revealed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskedValue):
            return NotImplemented
        return self._value == other._value and self._revealed == other._revealed

    def __hash__(self) -> int:
        return hash((self._value, self._revealed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaskedValue({self.rendered()!r})"


def combine_views(views: Sequence[MaskedValue]) -> Optional[str]:
    """Combine several masked views; return the full value if recoverable.

    Returns ``None`` when the union of revealed positions still has gaps or
    when ``views`` is empty.  Raises :class:`ValueError` if the views are not
    of the same underlying value (length or character conflicts).
    """
    if not views:
        return None
    merged = views[0]
    for view in views[1:]:
        merged = merged.combine(view)
    if merged.is_complete:
        return merged.reveal()
    return None


@dataclasses.dataclass(frozen=True)
class Identity:
    """The ground-truth identity of one victim.

    Field names deliberately parallel :class:`~repro.model.factors.PersonalInfoKind`
    so that :meth:`info_value` can map an info kind to its concrete value.
    """

    person_id: str
    real_name: str
    citizen_id: str
    cellphone_number: str
    email_address: str
    address: str
    bankcard_number: str
    student_id: str
    acquaintances: Tuple[str, ...]
    device_type: str
    security_answer: str

    def info_value(self, kind: PersonalInfoKind) -> str:
        """Return the concrete string value for an information kind.

        Compound kinds (acquaintances, histories) are rendered as a single
        canonical string; the attack engine only needs equality semantics.
        """
        mapping: Dict[PersonalInfoKind, str] = {
            PersonalInfoKind.REAL_NAME: self.real_name,
            PersonalInfoKind.CITIZEN_ID: self.citizen_id,
            PersonalInfoKind.CELLPHONE_NUMBER: self.cellphone_number,
            PersonalInfoKind.EMAIL_ADDRESS: self.email_address,
            PersonalInfoKind.ADDRESS: self.address,
            PersonalInfoKind.BANKCARD_NUMBER: self.bankcard_number,
            PersonalInfoKind.STUDENT_ID: self.student_id,
            PersonalInfoKind.DEVICE_TYPE: self.device_type,
            PersonalInfoKind.SECURITY_ANSWERS: self.security_answer,
            PersonalInfoKind.ACQUAINTANCE_NAME: ";".join(self.acquaintances),
            PersonalInfoKind.ID_PHOTO: self.citizen_id,
            PersonalInfoKind.USER_ID: self.person_id,
        }
        try:
            return mapping[kind]
        except KeyError:
            raise KeyError(f"identity has no canonical value for {kind}") from None


class IdentityGenerator:
    """Deterministic synthetic-identity factory.

    All randomness flows from the seed passed at construction, so a catalog
    built twice from the same seed contains byte-identical identities -- a
    property the measurement benchmarks rely on.
    """

    def __init__(self, seed: int = 0, id_prefix: str = "u") -> None:
        self._rng = random.Random(seed)
        self._counter = 0
        self._used_phones: set = set()
        self._used_emails: set = set()
        # Scope person ids by seed so identities from two differently-seeded
        # generators never collide on one service (e.g. a measurement canary
        # vs. a victim population).
        self._id_scope = f"{id_prefix}{seed & 0xFFFF:04x}"

    def generate(self) -> Identity:
        """Generate one fresh identity with globally-unique phone and email."""
        rng = self._rng
        self._counter += 1
        given = rng.choice(_GIVEN_NAMES)
        family = rng.choice(_FAMILY_NAMES)
        name = f"{given} {family}"
        person_id = f"{self._id_scope}-{self._counter:05d}"

        phone = self._unique_phone()
        email = self._unique_email(given, family)

        citizen_id = "".join(str(rng.randrange(10)) for _ in range(18))
        bankcard = "62" + "".join(str(rng.randrange(10)) for _ in range(14))
        street_no = rng.randrange(1, 999)
        address = f"{street_no} {rng.choice(_STREETS)}, {rng.choice(_CITIES)}"
        student_id = f"3{rng.randrange(10**8, 10**9 - 1)}"
        acquaintances = tuple(
            f"{rng.choice(_GIVEN_NAMES)} {rng.choice(_FAMILY_NAMES)}"
            for _ in range(rng.randrange(2, 6))
        )
        device = rng.choice(_DEVICES)
        answer = f"{rng.choice(_CITIES)}-{rng.randrange(1950, 2005)}"

        return Identity(
            person_id=person_id,
            real_name=name,
            citizen_id=citizen_id,
            cellphone_number=phone,
            email_address=email,
            address=address,
            bankcard_number=bankcard,
            student_id=student_id,
            acquaintances=acquaintances,
            device_type=device,
            security_answer=answer,
        )

    def generate_many(self, count: int) -> List[Identity]:
        """Generate ``count`` fresh identities."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate() for _ in range(count)]

    def _unique_phone(self) -> str:
        while True:
            phone = "1" + str(self._rng.choice([3, 5, 7, 8])) + "".join(
                str(self._rng.randrange(10)) for _ in range(9)
            )
            if phone not in self._used_phones:
                self._used_phones.add(phone)
                return phone

    def _unique_email(self, given: str, family: str) -> str:
        base = f"{given}.{family}".lower().replace(" ", "")
        while True:
            suffix = self._rng.randrange(10000)
            domain = self._rng.choice(
                ("gmail.test", "163.test", "outlook.test", "aliyun.test")
            )
            email = f"{base}{suffix}@{domain}"
            if email not in self._used_emails:
                self._used_emails.add(email)
                return email
