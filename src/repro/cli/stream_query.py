"""Query execution as record streams: one CLI kind -> NDJSON records.

:func:`records_for` is the single source of truth for what ``repro
query`` emits -- the CLI command, the ``--url`` proxy path, the golden
fixtures and the differential suite all flow through it, so "piped
output equals the in-process service" reduces to both sides calling the
same function over executors that agree.

The executor only needs ``execute(query) -> result`` --
:class:`~repro.api.service.AnalysisService` locally,
:class:`~repro.cli.remote.RemoteSession` over HTTP -- which is exactly
why local pipes and remote serving share one record schema.

Paged kinds (``couples``, ``weak-edges``) stream through the session's
segment engine with the existing watermark cursors: each fetch is capped
so a ``--max-records`` bound always lands on a page boundary, the items
flatten into one record each (bounded memory end to end), and the stream
finishes with a ``cursor`` record whose ``next`` token resumes the
enumeration -- in a later invocation, even across mutations.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.api.queries import (
    ClosureQuery,
    CoupleFileQuery,
    LevelReportQuery,
    MeasurementQuery,
    WeakEdgeQuery,
)
from repro.api.wire import result_to_dict
from repro.cli.records import RecordError
from repro.model.factors import PersonalInfoKind
from repro.utils.serialization import auth_path_to_dict

__all__ = ["QUERY_KINDS", "QuerySpec", "records_for"]

#: The ``--kind`` vocabulary, in documentation order.
QUERY_KINDS = ("levels", "couples", "weak-edges", "closure", "measurement")


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """One ``repro query --kind ...`` request, fully resolved.

    ``cursor``/``max_records``/``page_size``/``max_size`` apply to the
    paged kinds; ``compromised``/``extra_info``/``email_provider``
    parameterize ``closure``.
    """

    kind: str
    page_size: int = 256
    max_records: Optional[int] = None
    cursor: Any = 0
    max_size: int = 3
    compromised: Tuple[str, ...] = ()
    extra_info: Tuple[str, ...] = ()
    email_provider: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise RecordError(
                "bad-query",
                f"unknown query kind {self.kind!r} "
                f"(expected one of {list(QUERY_KINDS)})",
            )
        if self.page_size <= 0:
            raise RecordError("bad-query", "page size must be positive")
        if self.max_records is not None and self.max_records <= 0:
            raise RecordError("bad-query", "max records must be positive")


def _couple_record(record) -> Dict[str, Any]:
    # Field-for-field the CouplePage.to_dict per-record encoding, so one
    # couple serializes identically whether it rides a page or a stream.
    return {
        "kind": "couple",
        "data": {
            "providers": sorted(record.providers),
            "target": record.target,
            "path": auth_path_to_dict(record.path),
        },
    }


def _weak_edge_record(edge: Tuple[str, str]) -> Dict[str, Any]:
    provider, target = edge
    return {
        "kind": "weak_edge",
        "data": {"provider": provider, "target": target},
    }


def _cursor_record(kind: str, token: Optional[str]) -> Dict[str, Any]:
    """The trailing watermark record of a paged stream.

    ``next`` is ``None`` when the enumeration is exhausted, otherwise a
    segment-watermark token that a later ``repro query --cursor`` resumes
    from -- tokens name absolute stream positions, so they stay valid
    across mutations.
    """
    return {"kind": "cursor", "data": {"stream": kind, "next": token}}


def _paged_records(executor, spec: QuerySpec) -> Iterator[Dict[str, Any]]:
    if spec.kind == "couples":
        make_query, items_of, encode = (
            lambda cursor, size: CoupleFileQuery(
                cursor=cursor, page_size=size, max_size=spec.max_size
            ),
            lambda page: page.records,
            _couple_record,
        )
    else:
        make_query, items_of, encode = (
            lambda cursor, size: WeakEdgeQuery(
                cursor=cursor, page_size=size, max_size=spec.max_size
            ),
            lambda page: page.edges,
            _weak_edge_record,
        )
    cursor = spec.cursor
    emitted = 0
    while True:
        size = spec.page_size
        if spec.max_records is not None:
            size = min(size, spec.max_records - emitted)
        if size == 0:
            break
        page = executor.execute(make_query(cursor, size))
        for item in items_of(page):
            yield encode(item)
            emitted += 1
        cursor = page.next_cursor
        if cursor is None:
            break
    yield _cursor_record(spec.kind, cursor)


def records_for(executor, spec: QuerySpec) -> Iterator[Dict[str, Any]]:
    """The records one query spec produces against one executor."""
    if spec.kind in ("couples", "weak-edges"):
        yield from _paged_records(executor, spec)
        return
    if spec.kind == "levels":
        query = LevelReportQuery()
    elif spec.kind == "measurement":
        query = MeasurementQuery()
    else:
        try:
            extra = tuple(
                PersonalInfoKind(value) for value in spec.extra_info
            )
        except ValueError as exc:
            raise RecordError("bad-query", f"unknown info kind: {exc}")
        query = ClosureQuery(
            initially_compromised=spec.compromised,
            extra_info=extra,
            email_provider=spec.email_provider,
        )
    yield result_to_dict(executor.execute(query))
