"""The pipe-composable ``repro`` command-line interface.

``python -m repro`` dispatches into :func:`repro.cli.main.main`; the
package layers are :mod:`~repro.cli.records` (NDJSON codec + exit-code
contract), :mod:`~repro.cli.session_io` (event-sourced stream <->
engine state), :mod:`~repro.cli.stream_query` (queries as record
streams), and :mod:`~repro.cli.remote` (the ``--url`` proxy).  See
``docs/cli.md`` for the user-facing reference.
"""

from repro.cli.main import main

__all__ = ["main"]
