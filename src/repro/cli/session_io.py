"""Between the NDJSON stream and the analysis engines.

A ``repro`` pipeline carries an **event-sourced** ecosystem: the base
service profiles plus the ordered log of typed mutations applied so far.
Every consuming stage reconstructs the live state the same way --
:func:`build_service` builds the :class:`~repro.model.ecosystem.Ecosystem`
from the profile records (insertion order preserved, so the graph
layer's ordinal id-space and therefore every enumeration order matches
the upstream stage exactly) and replays the mutation log through a
:class:`~repro.dynamic.session.DynamicAnalysisSession`.  Replaying --
rather than shipping post-mutation profiles -- keeps the session
``version`` equal to a live in-process session that applied the same
events, exercises the incremental engines on every consumer, and lets
``repro mutate`` stages chain (each appends to the log).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Optional, TextIO

from repro.api.service import AnalysisService, MutationReceipt
from repro.cli.records import (
    STREAM_FORMAT,
    RecordError,
    RecordWriter,
    iter_records,
)
from repro.dynamic.events import Mutation
from repro.model.ecosystem import Ecosystem
from repro.utils.serialization import (
    mutation_from_dict,
    service_profile_from_dict,
    service_profile_to_dict,
)

__all__ = [
    "MUTATION_KINDS",
    "StreamState",
    "build_service",
    "decode_mutation",
    "load_stream",
    "meta_record",
    "mutation_record",
    "profile_records",
    "receipt_record",
]

#: The wire mutation kinds of :func:`repro.utils.serialization.mutation_from_dict`.
MUTATION_KINDS = frozenset(
    {
        "add_service",
        "remove_service",
        "add_auth_path",
        "remove_auth_path",
        "change_masking",
        "apply_hardening",
    }
)


@dataclasses.dataclass
class StreamState:
    """One fully-read input stream: header, base profiles, mutation log."""

    meta: Optional[Dict[str, Any]] = None
    profiles: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    mutations: List[Dict[str, Any]] = dataclasses.field(default_factory=list)

    @property
    def remote(self) -> Optional[Dict[str, Any]]:
        """The upstream stage's ``--url`` target, if it proxied one."""
        if self.meta is None:
            return None
        remote = self.meta.get("remote")
        return remote if isinstance(remote, dict) else None


def meta_record(
    services: Optional[int] = None,
    seed: Optional[int] = None,
    version: int = 0,
    remote: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The stream-header record every source stage emits first."""
    return {
        "kind": "meta",
        "data": {
            "format": STREAM_FORMAT,
            "services": services,
            "seed": seed,
            "version": version,
            "remote": remote,
        },
    }


def profile_records(ecosystem: Ecosystem) -> Iterator[Dict[str, Any]]:
    """One ``profile`` record per service, in catalog order."""
    for profile in ecosystem:
        yield {"kind": "profile", "data": service_profile_to_dict(profile)}


def mutation_record(document: Dict[str, Any]) -> Dict[str, Any]:
    return {"kind": "mutation", "data": document}


def receipt_record(
    document: Dict[str, Any], receipt: MutationReceipt
) -> Dict[str, Any]:
    """The outcome record of one locally-applied mutation."""
    delta = receipt.delta
    return {
        "kind": "receipt",
        "data": {
            "version": receipt.version,
            "outcome": "noop" if delta.is_noop else "applied",
            "mutation": document,
            "delta": delta.describe(),
            "added": sorted(delta.added_names),
            "removed": sorted(delta.removed_names),
            "replaced": sorted(delta.replaced_names),
        },
    }


def _check_meta(data: Any, line: int) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise RecordError(
            "bad-record", "meta payload must be an object", line=line
        )
    fmt = data.get("format")
    if fmt != STREAM_FORMAT:
        raise RecordError(
            "bad-record",
            f"unsupported stream format {fmt!r} "
            f"(this reader speaks {STREAM_FORMAT!r})",
            line=line,
        )
    return data


def load_stream(
    stream: TextIO, forward: Optional[RecordWriter] = None
) -> StreamState:
    """Read one record stream into a :class:`StreamState`.

    With ``forward`` given (the ``repro mutate`` path), stream-state
    records -- meta, profiles, mutations, receipts -- are re-emitted
    canonically in arrival order as they are read, so the stage streams
    instead of buffering its whole output.

    Ordering is enforced: profiles belong to the base state, so a
    ``profile`` record arriving after the first ``mutation`` record is a
    malformed stream.  An incoming ``error`` record is forwarded (when
    forwarding) and re-raised so the failure propagates downstream with
    its original exit code.
    """
    state = StreamState()
    for line, record in iter_records(stream):
        kind = record["kind"]
        data = record["data"]
        if kind == "error":
            if forward is not None:
                forward.record(record)
            payload = data if isinstance(data, dict) else {}
            raise RecordError(
                str(payload.get("code", "upstream-error")),
                str(payload.get("message", "upstream stage failed")),
                line=line,
                exit_code=int(payload.get("exit", 65)),
            )
        if kind == "meta":
            state.meta = _check_meta(data, line)
        elif kind == "profile":
            if state.mutations:
                raise RecordError(
                    "bad-record",
                    "profile record arrived after a mutation record; "
                    "profiles are the base state and must precede the "
                    "mutation log",
                    line=line,
                )
            if not isinstance(data, dict):
                raise RecordError(
                    "bad-record",
                    "profile payload must be an object",
                    line=line,
                )
            state.profiles.append(data)
        elif kind == "mutation":
            if not isinstance(data, dict) or not isinstance(
                data.get("kind"), str
            ):
                raise RecordError(
                    "bad-mutation",
                    "mutation payload must be an object with a 'kind'",
                    line=line,
                )
            if data["kind"] not in MUTATION_KINDS:
                raise RecordError(
                    "bad-mutation",
                    f"unknown mutation kind {data['kind']!r} "
                    f"(expected one of {sorted(MUTATION_KINDS)})",
                    line=line,
                )
            state.mutations.append(data)
        elif kind == "receipt":
            pass  # informational; replaying the log regenerates state
        else:
            raise RecordError(
                "bad-record",
                f"{kind!r} records do not belong in a profile stream",
                line=line,
            )
        if forward is not None:
            forward.record(record)
    return state


def decode_mutation(document: Dict[str, Any]) -> Mutation:
    """One wire mutation document as a typed event; failures are
    :class:`RecordError` (``bad-mutation``), never raw codec exceptions."""
    try:
        return mutation_from_dict(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise RecordError(
            "bad-mutation", f"undecodable mutation document: {exc}"
        )


def build_service(state: StreamState) -> AnalysisService:
    """Reconstruct the live analysis state one stream describes.

    Base profiles -> :class:`~repro.model.ecosystem.Ecosystem` (insertion
    order preserved) -> :class:`~repro.api.service.AnalysisService`, then
    the mutation log replays through the incremental engines, so the
    resulting session version and every enumeration order agree with a
    live session that applied the same events.
    """
    profiles = []
    for index, document in enumerate(state.profiles):
        try:
            profiles.append(service_profile_from_dict(document))
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordError(
                "bad-record",
                f"undecodable profile record #{index + 1}: {exc}",
            )
    service = AnalysisService(Ecosystem(profiles))
    for document in state.mutations:
        apply_mutation(service, document)
    return service


def apply_mutation(
    service: AnalysisService, document: Dict[str, Any]
) -> MutationReceipt:
    """Decode and apply one mutation document through the session."""
    mutation = decode_mutation(document)
    try:
        return service.apply(mutation)
    except (KeyError, ValueError) as exc:
        raise RecordError(
            "bad-mutation",
            f"mutation {document.get('kind')!r} is infeasible against "
            f"the current state: {exc}",
        )
