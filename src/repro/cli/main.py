"""``python -m repro``: the pipe-composable command-line surface.

Subcommands are small filters composing over stdin/stdout NDJSON::

    repro build | repro mutate --script churn.ndjson \\
                | repro query --kind couples | repro table

``build`` is a source (catalog -> profile records), ``mutate`` is a
filter (forwards the stream, appends to the mutation log), ``query``
turns the stream into result records, and ``table``/``summarize`` are
human-facing sinks.  Every stage with ``--url`` proxies the same
commands against a running ``repro.serve`` HTTP tier instead of
rebuilding locally; the remote target rides the ``meta`` record, so
only the first stage of a pipeline needs the flag.

The module holds argument parsing and the process-level contracts
(SIGPIPE, exit codes); stream semantics live in
:mod:`repro.cli.session_io` and :mod:`repro.cli.stream_query`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.catalog import CatalogBuilder, CatalogSpec
from repro.cli.records import (
    EXIT_INTERNAL,
    EXIT_OK,
    RecordError,
    RecordWriter,
    iter_records,
)
from repro.cli.remote import RemoteSession
from repro.cli.session_io import (
    build_service,
    load_stream,
    meta_record,
    mutation_record,
    profile_records,
    receipt_record,
)
from repro.cli.stream_query import QUERY_KINDS, QuerySpec, records_for
from repro.utils.tables import format_table

__all__ = ["main"]

_PROG = "repro"


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------


def _add_remote_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        default=None,
        help="proxy against a running repro.serve tier at this base URL "
        "instead of computing locally",
    )
    parser.add_argument(
        "--tenant",
        default="cli",
        help="tenant name on the serving tier (default: cli)",
    )
    parser.add_argument(
        "--session",
        default="pipeline",
        help="session name on the serving tier (default: pipeline)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=_PROG,
        description="Pipe-composable analysis CLI over NDJSON record "
        "streams (see docs/cli.md).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build",
        help="generate the seeded catalog ecosystem as profile records",
    )
    build.add_argument(
        "--services",
        type=int,
        default=201,
        help="catalog size incl. the seed services (default: 201)",
    )
    build.add_argument(
        "--seed", type=int, default=2021, help="catalog seed (default: 2021)"
    )
    _add_remote_options(build)
    build.set_defaults(handler=_cmd_build)

    mutate = commands.add_parser(
        "mutate",
        help="forward the stream and append typed mutation events",
    )
    mutate.add_argument(
        "--script",
        action="append",
        default=[],
        metavar="FILE",
        help="NDJSON file of mutation events (bare wire documents or "
        "wrapped mutation records); repeatable, applied in order",
    )
    mutate.add_argument(
        "--event",
        action="append",
        default=[],
        metavar="JSON",
        help="one inline mutation document; repeatable, applied after "
        "--script files",
    )
    _add_remote_options(mutate)
    mutate.set_defaults(handler=_cmd_mutate)

    query = commands.add_parser(
        "query", help="run analysis queries, streaming result records"
    )
    query.add_argument(
        "--kind",
        action="append",
        default=[],
        choices=list(QUERY_KINDS),
        help="query kind; repeatable, answered in order "
        "(default: levels)",
    )
    query.add_argument(
        "--page-size",
        type=int,
        default=256,
        help="records fetched per page for paged kinds (default: 256)",
    )
    query.add_argument(
        "--max-records",
        type=int,
        default=None,
        help="stop a paged stream after this many records and emit the "
        "resume cursor",
    )
    query.add_argument(
        "--cursor",
        default="0",
        help="resume a paged stream: a watermark token from a previous "
        "cursor record, or an integer offset (default: 0)",
    )
    query.add_argument(
        "--max-size",
        type=int,
        default=3,
        help="maximum couple size enumerated (default: 3)",
    )
    query.add_argument(
        "--compromised",
        action="append",
        default=[],
        metavar="SERVICE",
        help="closure: an initially compromised service; repeatable",
    )
    query.add_argument(
        "--extra-info",
        action="append",
        default=[],
        metavar="KIND",
        help="closure: personal-info kind the attacker already holds; "
        "repeatable",
    )
    query.add_argument(
        "--email-provider",
        default=None,
        help="closure: email provider whose inbox the attacker controls",
    )
    _add_remote_options(query)
    query.set_defaults(handler=_cmd_query)

    table = commands.add_parser(
        "table", help="render a record stream as aligned text tables"
    )
    table.set_defaults(handler=_cmd_table)

    summarize = commands.add_parser(
        "summarize", help="reduce a record stream to per-kind counts"
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one summary record instead of text",
    )
    summarize.set_defaults(handler=_cmd_summarize)

    return parser


# ----------------------------------------------------------------------
# Sources and filters
# ----------------------------------------------------------------------


def _remote_from_args(args: argparse.Namespace) -> Optional[RemoteSession]:
    if args.url is None:
        return None
    return RemoteSession(args.url, args.tenant, args.session)


def _cmd_build(args: argparse.Namespace, writer: RecordWriter) -> int:
    if args.services < 1:
        raise RecordError("bad-query", "--services must be >= 1")
    remote = _remote_from_args(args)
    if remote is not None:
        # State lives server-side: create the session there and emit a
        # meta record naming the target for downstream stages to proxy.
        document = remote.create(args.services, args.seed)
        writer.record(
            meta_record(
                services=args.services,
                seed=args.seed,
                version=int(document.get("version", 0)),
                remote=remote.describe(),
            )
        )
        return EXIT_OK
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=args.services), seed=args.seed
    ).build_ecosystem()
    writer.record(
        meta_record(services=args.services, seed=args.seed, version=0)
    )
    for record in profile_records(ecosystem):
        writer.record(record)
    return EXIT_OK


def _mutation_documents(args: argparse.Namespace) -> List[Dict[str, Any]]:
    """The new mutation documents this stage appends, in apply order.

    Script files are NDJSON of either bare wire mutation documents or
    wrapped ``mutation`` records -- both spellings decode to the same
    event, so a recorded pipeline segment replays as a script.
    """
    documents: List[Dict[str, Any]] = []
    for path in args.script:
        try:
            text = open(path, "r", encoding="utf-8").read()
        except OSError as exc:
            raise RecordError("bad-script", f"cannot read {path}: {exc}")
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                value = json.loads(line)
            except ValueError as exc:
                raise RecordError(
                    "not-json",
                    f"{path}:{number}: not valid JSON: {exc}",
                    line=number,
                )
            if not isinstance(value, dict):
                raise RecordError(
                    "bad-mutation",
                    f"{path}:{number}: mutation must be an object",
                    line=number,
                )
            if value.get("kind") == "mutation" and isinstance(
                value.get("data"), dict
            ):
                value = value["data"]
            documents.append(value)
    for text in args.event:
        try:
            value = json.loads(text)
        except ValueError as exc:
            raise RecordError(
                "not-json", f"--event is not valid JSON: {exc}"
            )
        if not isinstance(value, dict):
            raise RecordError("bad-mutation", "--event must be an object")
        documents.append(value)
    return documents


def _cmd_mutate(args: argparse.Namespace, writer: RecordWriter) -> int:
    documents = _mutation_documents(args)
    remote = _remote_from_args(args)
    if remote is None:
        # No explicit --url: the stream decides.  Forward it as read so
        # downstream stages see the base state before the appended log.
        state = load_stream(sys.stdin, forward=writer)
        if state.remote is not None:
            remote = RemoteSession.from_meta(state.remote)
    else:
        writer.record(meta_record(remote=remote.describe()))
    if remote is not None:
        for document in documents:
            receipt = remote.apply(document)
            writer.record(mutation_record(document))
            writer.record(
                {
                    "kind": "receipt",
                    "data": {
                        "version": receipt.get("version"),
                        "outcome": receipt.get("outcome"),
                        "mutation": document,
                        "delta": receipt.get("delta"),
                    },
                }
            )
        return EXIT_OK
    service = build_service(state)
    for document in documents:
        receipt = _apply_locally(service, document)
        writer.record(mutation_record(document))
        writer.record(receipt_record(document, receipt))
    return EXIT_OK


def _apply_locally(service, document):
    from repro.cli.session_io import apply_mutation

    return apply_mutation(service, document)


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------


def _parse_cursor(text: str) -> Any:
    """``--cursor`` accepts an integer offset or a watermark token."""
    try:
        return int(text)
    except ValueError:
        return text


def _query_specs(args: argparse.Namespace) -> List[QuerySpec]:
    kinds = args.kind if args.kind else ["levels"]
    return [
        QuerySpec(
            kind=kind,
            page_size=args.page_size,
            max_records=args.max_records,
            cursor=_parse_cursor(args.cursor),
            max_size=args.max_size,
            compromised=tuple(args.compromised),
            extra_info=tuple(args.extra_info),
            email_provider=args.email_provider,
        )
        for kind in kinds
    ]


def _cmd_query(args: argparse.Namespace, writer: RecordWriter) -> int:
    specs = _query_specs(args)
    remote = _remote_from_args(args)
    if remote is None:
        state = load_stream(sys.stdin)
        if state.remote is not None:
            remote = RemoteSession.from_meta(state.remote)
    executor = remote if remote is not None else build_service(state)
    for spec in specs:
        try:
            for record in records_for(executor, spec):
                writer.record(record)
        except RecordError:
            raise
        except (KeyError, ValueError) as exc:
            raise RecordError(
                "bad-query", f"query {spec.kind!r} failed: {exc}"
            )
    return EXIT_OK


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


def _auth_path_label(path: Dict[str, Any]) -> str:
    # Wire auth paths carry factors as value strings (auth_path_to_dict).
    names = [str(factor) for factor in path.get("factors", [])]
    return f"{path.get('platform', '?')}:{'+'.join(names) or '-'}"


def _render_levels(writer: RecordWriter, data: Dict[str, Any]) -> None:
    rows = []
    for platform, fractions in data.get("fractions", {}).items():
        for level, fraction in fractions.items():
            rows.append((platform, level, f"{100.0 * fraction:.2f}%"))
    writer.text(
        format_table(
            ("platform", "level", "fraction"),
            rows,
            title=f"dependency levels (attacker={data.get('attacker')}, "
            f"version={data.get('version')})",
        )
    )


def _render_closure(writer: RecordWriter, data: Dict[str, Any]) -> None:
    rows = [
        (number, len(names), ", ".join(names[:6]) + (" ..." if len(names) > 6 else ""))
        for number, names in sorted(
            data.get("rounds", {}).items(), key=lambda item: int(item[0])
        )
    ]
    writer.text(
        format_table(
            ("round", "fell", "services"),
            rows,
            title=f"forward closure: {len(data.get('compromised', []))} "
            f"compromised, {len(data.get('safe', []))} safe "
            f"(version={data.get('version')})",
        )
    )


def _render_measurement(writer: RecordWriter, data: Dict[str, Any]) -> None:
    from repro.analysis.measurement import MeasurementResults

    results = MeasurementResults.from_dict(data)
    for line in results.summary_lines():
        writer.text(line)


def _cmd_table(args: argparse.Namespace, writer: RecordWriter) -> int:
    couples: List[tuple] = []
    weak_edges: List[tuple] = []
    extra_counts: Dict[str, int] = {}
    cursors: List[Dict[str, Any]] = []
    for _line, record in iter_records(sys.stdin):
        kind = record["kind"]
        data = record["data"]
        if kind == "error":
            payload = data if isinstance(data, dict) else {}
            raise RecordError(
                str(payload.get("code", "upstream-error")),
                str(payload.get("message", "upstream stage failed")),
                exit_code=int(payload.get("exit", 65)),
            )
        if kind == "couple":
            couples.append(
                (
                    " + ".join(data.get("providers", [])),
                    data.get("target", "?"),
                    _auth_path_label(data.get("path", {})),
                )
            )
        elif kind == "weak_edge":
            weak_edges.append(
                (data.get("provider", "?"), data.get("target", "?"))
            )
        elif kind == "cursor":
            cursors.append(data)
        elif kind == "level_report":
            _render_levels(writer, data)
        elif kind == "closure":
            _render_closure(writer, data)
        elif kind == "measurement":
            _render_measurement(writer, data)
        else:
            extra_counts[kind] = extra_counts.get(kind, 0) + 1
    if couples:
        writer.text(
            format_table(
                ("providers", "target", "path"),
                couples,
                title=f"couple file ({len(couples)} records)",
            )
        )
    if weak_edges:
        writer.text(
            format_table(
                ("provider", "target"),
                weak_edges,
                title=f"weak edges ({len(weak_edges)} edges)",
            )
        )
    for data in cursors:
        token = data.get("next")
        writer.text(
            f"[{data.get('stream')}] "
            + (
                f"resume with --cursor '{token}'"
                if token
                else "stream exhausted"
            )
        )
    if extra_counts:
        writer.text(
            "other records: "
            + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(extra_counts.items())
            )
        )
    return EXIT_OK


def _cmd_summarize(args: argparse.Namespace, writer: RecordWriter) -> int:
    counts: Dict[str, int] = {}
    meta: Optional[Dict[str, Any]] = None
    version: Optional[int] = None
    error: Optional[RecordError] = None
    for _line, record in iter_records(sys.stdin):
        kind = record["kind"]
        data = record["data"]
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "meta" and isinstance(data, dict) and meta is None:
            meta = data
        if isinstance(data, dict) and isinstance(data.get("version"), int):
            version = data["version"]
        if kind == "error":
            payload = data if isinstance(data, dict) else {}
            error = RecordError(
                str(payload.get("code", "upstream-error")),
                str(payload.get("message", "upstream stage failed")),
                exit_code=int(payload.get("exit", 65)),
            )
    summary = {
        "records": sum(counts.values()),
        "by_kind": dict(sorted(counts.items())),
        "services": meta.get("services") if meta else None,
        "seed": meta.get("seed") if meta else None,
        "version": version,
    }
    if args.as_json:
        writer.record({"kind": "summary", "data": summary})
    else:
        writer.text(
            format_table(
                ("kind", "count"),
                sorted(counts.items()),
                title=f"{summary['records']} records "
                f"(services={summary['services']}, "
                f"seed={summary['seed']}, version={summary['version']})",
            )
        )
    if error is not None:
        raise error
    return EXIT_OK


# ----------------------------------------------------------------------
# Process contract
# ----------------------------------------------------------------------


def _silence_stdout() -> None:
    """Point fd 1 at /dev/null so interpreter teardown cannot trip a
    second BrokenPipeError flushing the dead pipe."""
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    except OSError:
        pass


def main(argv: Optional[List[str]] = None) -> int:
    """Run one ``repro`` subcommand; returns the process exit status.

    This is the single place the exit-code and SIGPIPE contracts are
    enforced: a downstream consumer closing the pipe (``... | head``)
    exits 0, a :class:`RecordError` becomes an ``error`` record plus its
    carried status, and anything unexpected is an ``error`` record with
    :data:`EXIT_INTERNAL` (set ``REPRO_CLI_DEBUG=1`` to re-raise).
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    writer = RecordWriter()
    try:
        return args.handler(args, writer)
    except BrokenPipeError:
        _silence_stdout()
        return EXIT_OK
    except RecordError as failure:
        try:
            return writer.fail(failure)
        except BrokenPipeError:
            _silence_stdout()
            return EXIT_OK
    except KeyboardInterrupt:
        return 130
    except Exception as exc:  # noqa: BLE001 - the CLI's last-resort boundary
        if os.environ.get("REPRO_CLI_DEBUG"):
            raise
        sys.stderr.write(f"{_PROG}: internal error: {exc}\n")
        try:
            writer.record(
                RecordError(
                    "internal", str(exc), exit_code=EXIT_INTERNAL
                ).record()
            )
        except BrokenPipeError:
            _silence_stdout()
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
