"""The ``--url`` proxy: drive a running ``repro.serve`` HTTP tier.

A :class:`RemoteSession` exposes the same ``execute(query)`` surface the
local :class:`~repro.api.service.AnalysisService` does -- queries encode
through :func:`repro.api.wire.query_to_dict`, travel as the serving
tier's request bodies, and decode back through ``result_from_dict`` into
the same typed result objects.  :mod:`repro.cli.stream_query` therefore
emits **byte-identical records** for a local pipeline and a remote one
over the same session state: one record schema, two transports.

Failures map onto the CLI exit-code contract: an unreachable server or a
5xx is ``unavailable`` (exit 69), a 4xx is the server telling us the
request was bad (``server-rejected``, exit 65), and a 429 surfaces its
``Retry-After`` in the error message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.api.wire import query_from_dict, query_to_dict, result_from_dict
from repro.cli.records import EXIT_DATA, EXIT_UNAVAILABLE, RecordError

__all__ = ["RemoteSession"]

#: Guard against a misbehaving server streaming forever into a CLI stage.
_MAX_RESPONSE_BYTES = 256 * 1024 * 1024


class RemoteSession:
    """One (url, tenant, session) target on a ``repro.serve`` tier."""

    def __init__(
        self, url: str, tenant: str, session: str, timeout: float = 60.0
    ) -> None:
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.session = session
        self.timeout = timeout

    @classmethod
    def from_meta(cls, remote: Dict[str, Any]) -> "RemoteSession":
        """Rebuild the target an upstream stage recorded in its meta."""
        try:
            return cls(
                url=remote["url"],
                tenant=remote["tenant"],
                session=remote["session"],
            )
        except KeyError as exc:
            raise RecordError(
                "bad-record",
                f"meta 'remote' entry is missing {exc}; expected "
                "{'url', 'tenant', 'session'}",
            )

    def describe(self) -> Dict[str, Any]:
        """The meta-record form downstream stages proxy from."""
        return {
            "url": self.url,
            "tenant": self.tenant,
            "session": self.session,
        }

    # -- transport --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.url + path,
            data=payload,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read(_MAX_RESPONSE_BYTES)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (ValueError, AttributeError, OSError):
                detail = ""
            retry_after = exc.headers.get("Retry-After")
            if retry_after:
                detail = f"{detail} (Retry-After: {retry_after}s)".strip()
            message = (
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            )
            if 400 <= exc.code < 500:
                raise RecordError(
                    "server-rejected", message, exit_code=EXIT_DATA
                )
            raise RecordError(
                "server-error", message, exit_code=EXIT_UNAVAILABLE
            )
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise RecordError(
                "unreachable",
                f"cannot reach {self.url}: {exc}",
                exit_code=EXIT_UNAVAILABLE,
            )
        try:
            document = json.loads(raw)
        except ValueError as exc:
            raise RecordError(
                "server-error",
                f"{method} {path} returned non-JSON: {exc}",
                exit_code=EXIT_UNAVAILABLE,
            )
        if not isinstance(document, dict):
            raise RecordError(
                "server-error",
                f"{method} {path} returned a non-object document",
                exit_code=EXIT_UNAVAILABLE,
            )
        return document

    def _session_path(self, suffix: str = "") -> str:
        return f"/v1/{self.tenant}/sessions/{self.session}{suffix}"

    # -- the serving surface ----------------------------------------------

    def create(self, services: int, seed: int) -> Dict[str, Any]:
        """Cold-build this session server-side; returns the creation doc."""
        return self._request(
            "POST",
            f"/v1/{self.tenant}/sessions",
            {"name": self.session, "services": services, "seed": seed},
        )

    def info(self) -> Dict[str, Any]:
        return self._request("GET", self._session_path())

    def execute(self, query) -> Any:
        """Run one typed query remotely; returns the typed result.

        The round-trip is the wire codec both ways -- the same documents
        the HTTP tier serves its other clients -- so the decoded result
        feeds :func:`repro.cli.stream_query.records_for` exactly like a
        local execution does.
        """
        document = self._request(
            "POST", self._session_path("/query"), query_to_dict(query)
        )
        try:
            return result_from_dict(document)
        except (KeyError, TypeError, ValueError) as exc:
            raise RecordError(
                "server-error",
                f"undecodable result document: {exc}",
                exit_code=EXIT_UNAVAILABLE,
            )

    def apply(self, mutation_document: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one wire mutation document; returns the server receipt."""
        # Validate locally first so an undecodable document is a typed
        # data error before any network traffic.
        from repro.cli.session_io import decode_mutation

        decode_mutation(mutation_document)
        return self._request(
            "POST", self._session_path("/mutations"), mutation_document
        )


# query_from_dict is re-exported for the proxy tests' convenience.
_ = query_from_dict
