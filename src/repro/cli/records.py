"""The NDJSON record layer every ``repro`` subcommand speaks.

A pipeline stage reads records from stdin and writes records to stdout,
one JSON object per line, so stages compose with ordinary Unix pipes and
the OS provides the backpressure.  Every record is a two-field document::

    {"kind": "<record kind>", "data": <payload>}

encoded **canonically** -- sorted keys, no whitespace, one trailing
newline -- so equal records are equal bytes and the differential suite
(`tests/test_cli_pipeline.py`) can assert a piped pipeline against the
in-process :class:`~repro.api.service.AnalysisService` bit-for-bit.

Record kinds
------------

Stream-state records (the event-sourced ecosystem log):

- ``meta`` -- stream header: format string, catalog seed, service count,
  session version, and the optional ``remote`` target a downstream stage
  should proxy to;
- ``profile`` -- one base service profile
  (:func:`repro.utils.serialization.service_profile_to_dict`);
- ``mutation`` -- one typed mutation event
  (:func:`repro.utils.serialization.mutation_to_dict`); consumers replay
  the ordered mutation log through a
  :class:`~repro.dynamic.session.DynamicAnalysisSession`, so version
  counting and incremental engine state match a live session exactly;
- ``receipt`` -- the outcome of one applied mutation.

Query-result records reuse the :mod:`repro.api.wire` result kinds
verbatim (``level_report``, ``closure``, ``measurement``, ...), plus the
flattened per-item stream kinds ``couple`` and ``weak_edge`` and the
``cursor`` record carrying the watermark token a truncated stream
resumes from.

Failure records:

- ``error`` -- a typed error: ``{"code", "message", "line", "exit"}``.
  A stage that *produces* one exits with the carried exit status; a
  stage that *reads* one forwards it verbatim and exits with the same
  status, so a failure propagates down a pipeline instead of vanishing.

Exit-code contract
------------------

========  ====================================================
``0``     success -- including a downstream consumer closing the
          pipe early (``... | head`` must never trip an upstream
          traceback; see :data:`EXIT_OK`)
``1``     unexpected internal error (:data:`EXIT_INTERNAL`)
``2``     command-line usage error (argparse's own convention)
``65``    malformed input data -- bad NDJSON, unknown record or
          mutation kind, undecodable payload (:data:`EXIT_DATA`,
          BSD ``EX_DATAERR``)
``69``    a ``--url`` target is unreachable or failed server-side
          (:data:`EXIT_UNAVAILABLE`, BSD ``EX_UNAVAILABLE``)
========  ====================================================
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterator, Optional, TextIO, Tuple

__all__ = [
    "EXIT_DATA",
    "EXIT_INTERNAL",
    "EXIT_OK",
    "EXIT_UNAVAILABLE",
    "EXIT_USAGE",
    "RECORD_KINDS",
    "RecordError",
    "RecordWriter",
    "STREAM_FORMAT",
    "dump_record",
    "error_record",
    "iter_records",
    "parse_record",
]

#: The one stream format this reader/writer pair speaks; a ``meta``
#: record naming any other format is rejected, never guessed at.
STREAM_FORMAT = "repro/cli-stream@1"

EXIT_OK = 0
EXIT_INTERNAL = 1
EXIT_USAGE = 2
#: BSD ``EX_DATAERR``: the input stream carried malformed records.
EXIT_DATA = 65
#: BSD ``EX_UNAVAILABLE``: a ``--url`` server was unreachable/failed.
EXIT_UNAVAILABLE = 69

#: Result kinds shared verbatim with :mod:`repro.api.wire`.
WIRE_RESULT_KINDS = frozenset(
    {
        "level_report",
        "dependency_levels",
        "closure",
        "measurement",
        "edge_summary",
        "couple_page",
        "edge_page",
        "defense_eval",
    }
)

#: Every record kind a conforming stream may carry.
RECORD_KINDS = (
    frozenset(
        {
            "meta",
            "profile",
            "mutation",
            "receipt",
            "couple",
            "weak_edge",
            "cursor",
            "summary",
            "error",
        }
    )
    | WIRE_RESULT_KINDS
)


class RecordError(Exception):
    """A typed stream failure: what went wrong, where, and the exit code.

    Commands convert this into an ``error`` record on stdout plus a
    nonzero exit per the module's exit-code contract.  ``line`` is the
    1-indexed input line the failure was detected on (``None`` when the
    failure is not tied to one line, e.g. a server error).
    """

    def __init__(
        self,
        code: str,
        message: str,
        line: Optional[int] = None,
        exit_code: int = EXIT_DATA,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.line = line
        self.exit_code = exit_code

    def record(self) -> Dict[str, Any]:
        """This failure as its ``error`` record."""
        return error_record(
            self.code, str(self), line=self.line, exit_code=self.exit_code
        )


def error_record(
    code: str,
    message: str,
    line: Optional[int] = None,
    exit_code: int = EXIT_DATA,
) -> Dict[str, Any]:
    """One typed ``error`` record."""
    return {
        "kind": "error",
        "data": {
            "code": code,
            "message": message,
            "line": line,
            "exit": exit_code,
        },
    }


def dump_record(record: Dict[str, Any]) -> str:
    """One record as its canonical NDJSON line (trailing newline).

    Sorted keys and compact separators make encoding a pure function of
    the record's value: equal records are equal bytes, which is what the
    golden fixtures and the differential pipeline suite pin.
    """
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    )


def parse_record(line: str, line_number: Optional[int] = None) -> Dict[str, Any]:
    """Parse and validate one NDJSON line into a record.

    Raises :class:`RecordError` -- never a raw ``json`` exception -- with
    one of the documented codes: ``not-json`` (including truncated or
    interleaved fragments), ``not-object``, ``missing-kind``,
    ``unknown-kind``, ``missing-data``.
    """
    try:
        value = json.loads(line)
    except ValueError as exc:
        raise RecordError(
            "not-json",
            f"input line is not valid JSON: {exc}",
            line=line_number,
        )
    if not isinstance(value, dict):
        raise RecordError(
            "not-object",
            f"record must be a JSON object, got {type(value).__name__}",
            line=line_number,
        )
    kind = value.get("kind")
    if kind is None:
        raise RecordError(
            "missing-kind", "record carries no 'kind' tag", line=line_number
        )
    if not isinstance(kind, str) or kind not in RECORD_KINDS:
        raise RecordError(
            "unknown-kind",
            f"unknown record kind {kind!r} "
            f"(expected one of {sorted(RECORD_KINDS)})",
            line=line_number,
        )
    if "data" not in value:
        raise RecordError(
            "missing-data",
            f"{kind!r} record carries no 'data' payload",
            line=line_number,
        )
    return value


def iter_records(
    stream: TextIO,
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(line_number, record)`` per non-empty input line.

    Validation failures raise :class:`RecordError` at the offending
    line; records already consumed were yielded, so a streaming consumer
    has processed the valid prefix when the failure surfaces.
    """
    for number, line in enumerate(stream, start=1):
        if not line.strip():
            continue
        yield number, parse_record(line, number)


class RecordWriter:
    """The one sanctioned stdout writer for ``repro`` commands.

    Record-producing stages call :meth:`record`; human-readable sinks
    (``repro table`` / ``repro summarize``) call :meth:`text`.  Every
    write flushes, so a downstream consumer sees records as they are
    produced and a closed pipe surfaces as ``BrokenPipeError`` at the
    next record boundary -- which the command runner maps to a clean
    exit 0 (the SIGPIPE contract).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def record(self, record: Dict[str, Any]) -> None:
        self._stream.write(dump_record(record))
        self._stream.flush()

    def text(self, line: str = "") -> None:
        self._stream.write(line + "\n")
        self._stream.flush()

    def fail(self, failure: RecordError) -> int:
        """Emit the failure's error record; returns its exit code."""
        self.record(failure.record())
        return failure.exit_code
