"""A shared logical clock.

Both the simulated internet (OTP expiry, session lifetimes, rate-limit
windows) and the simulated telecom network (radio events, crack times) need
a notion of time.  Wall-clock time would make tests flaky and benchmarks
non-reproducible, so everything runs on one logical clock measured in
seconds that only moves when something advances it.
"""

from __future__ import annotations

from typing import Callable, List, Tuple


class Clock:
    """Monotonic logical clock with schedulable callbacks.

    Callbacks registered via :meth:`call_at` fire (in time order, ties in
    registration order) whenever :meth:`advance` moves the clock past their
    deadline.  This is the minimal discrete-event core the telecom simulator
    builds on.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._pending: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    def now(self) -> float:
        """Current logical time in seconds."""
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``when``.

        Deadlines in the past fire on the next :meth:`advance` (or
        :meth:`tick`) call, not immediately.
        """
        self._sequence += 1
        self._pending.append((float(when), self._sequence, callback))
        self._pending.sort(key=lambda item: (item[0], item[1]))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.call_at(self._now + delay, callback)

    def advance(self, seconds: float) -> None:
        """Move the clock forward, firing due callbacks in order."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        deadline = self._now + seconds
        while self._pending and self._pending[0][0] <= deadline:
            when, _seq, callback = self._pending.pop(0)
            self._now = max(self._now, when)
            callback()
        self._now = deadline

    def tick(self) -> None:
        """Advance by one second (convenience for step-by-step tests)."""
        self.advance(1.0)

    @property
    def pending_events(self) -> int:
        """Number of callbacks not yet fired."""
        return len(self._pending)
