"""Plain-text table rendering shared by benchmarks, reports and examples.

The benchmark harness prints the same rows the paper's tables report; this
module is the single place that turns row data into aligned monospace text.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller so precision stays under the caller's control.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction in [0, 1] as a percentage string like ``74.13%``."""
    return f"{100.0 * value:.{digits}f}%"
