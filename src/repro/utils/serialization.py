"""Wire-format codecs for the analysis result types.

The API layer (:mod:`repro.api`) promises JSON-serializable responses:
every result type exposes ``to_dict``/``from_dict`` built on the helpers
here.  The codecs live in :mod:`repro.utils` -- not next to the result
dataclasses -- because serialization is needed across layers that must
not import each other (``analysis``/``defense``/``dynamic`` results are
serialized by the API facade, which itself imports all three).

Conventions:

- enums serialize as their ``value`` strings (``Platform.WEB`` ->
  ``"web"``), and enum-keyed mappings become string-keyed dicts;
- frozensets serialize as *sorted* lists, so equal values produce equal
  documents (canonical wire form);
- nested structures round-trip exactly: ``from_dict(to_dict(x)) == x``
  for every supported type.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.levels.engine import DependencyLevel
from repro.model.account import AuthPath, AuthPurpose, MaskSpec, ServiceProfile
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import CredentialFactor, PersonalInfoKind, Platform

__all__ = [
    "AuthPathTable",
    "attacker_profile_from_dict",
    "attacker_profile_to_dict",
    "auth_path_from_dict",
    "auth_path_to_dict",
    "auth_report_from_dict",
    "auth_report_to_dict",
    "collection_report_from_dict",
    "collection_report_to_dict",
    "enum_keyed_dict",
    "enum_keyed_from_dict",
    "info_kinds_from_list",
    "info_kinds_to_list",
    "level_map_from_dict",
    "level_map_to_dict",
    "mask_spec_from_dict",
    "mask_spec_to_dict",
    "mutation_from_dict",
    "mutation_to_dict",
    "platform_map_from_dict",
    "platform_map_to_dict",
    "service_profile_from_dict",
    "service_profile_to_dict",
]


def enum_keyed_dict(mapping: Mapping, value=lambda v: v) -> Dict[str, Any]:
    """``{Enum: v}`` -> ``{enum.value: value(v)}``, insertion order kept."""
    return {key.value: value(item) for key, item in mapping.items()}


def enum_keyed_from_dict(
    document: Mapping[str, Any], enum_cls, value=lambda v: v
) -> Dict[Any, Any]:
    """Inverse of :func:`enum_keyed_dict` for one enum class."""
    return {enum_cls(key): value(item) for key, item in document.items()}


def platform_map_to_dict(
    mapping: Mapping[Platform, Mapping], inner=lambda v: dict(v)
) -> Dict[str, Any]:
    """Per-platform nested mapping -> plain dict keyed by platform value."""
    return enum_keyed_dict(mapping, inner)


def platform_map_from_dict(
    document: Mapping[str, Any], inner=lambda v: v
) -> Dict[Platform, Any]:
    """Inverse of :func:`platform_map_to_dict`."""
    return enum_keyed_from_dict(document, Platform, inner)


def level_map_to_dict(
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]],
) -> Dict[str, Dict[str, float]]:
    """The Section IV-B payload shape: platform -> level -> fraction."""
    return platform_map_to_dict(dependency, lambda by_level: enum_keyed_dict(by_level))


def level_map_from_dict(
    document: Mapping[str, Mapping[str, float]],
) -> Dict[Platform, Dict[DependencyLevel, float]]:
    """Inverse of :func:`level_map_to_dict`."""
    return platform_map_from_dict(
        document,
        lambda by_level: enum_keyed_from_dict(by_level, DependencyLevel, float),
    )


def info_kinds_to_list(kinds: Iterable[PersonalInfoKind]) -> List[str]:
    """Canonical (sorted) wire form of an information-kind set."""
    return sorted(kind.value for kind in kinds)


def info_kinds_from_list(values: Iterable[str]) -> FrozenSet[PersonalInfoKind]:
    """Inverse of :func:`info_kinds_to_list`."""
    return frozenset(PersonalInfoKind(value) for value in values)


def auth_path_to_dict(path: Optional[AuthPath]) -> Optional[Dict[str, Any]]:
    """One authentication path as a plain document (``None`` passes through,
    matching round-0 closure entries with no takeover path)."""
    if path is None:
        return None
    return {
        "service": path.service,
        "platform": path.platform.value,
        "purpose": path.purpose.value,
        "factors": sorted(factor.value for factor in path.factors),
        "linked_providers": sorted(path.linked_providers),
        "label": path.label,
    }


def auth_path_from_dict(
    document: Optional[Mapping[str, Any]],
) -> Optional[AuthPath]:
    """Inverse of :func:`auth_path_to_dict`."""
    if document is None:
        return None
    return AuthPath(
        service=document["service"],
        platform=Platform(document["platform"]),
        purpose=AuthPurpose(document["purpose"]),
        factors=frozenset(
            CredentialFactor(value) for value in document["factors"]
        ),
        linked_providers=frozenset(document.get("linked_providers", ())),
        label=document.get("label", ""),
    )


def attacker_profile_to_dict(profile: AttackerProfile) -> Dict[str, Any]:
    """Attacker profile as a plain document (capabilities + known info)."""
    return {
        "capabilities": sorted(c.value for c in profile.capabilities),
        "known_info": info_kinds_to_list(profile.known_info),
    }


def attacker_profile_from_dict(
    document: Mapping[str, Any],
) -> AttackerProfile:
    """Inverse of :func:`attacker_profile_to_dict`."""
    return AttackerProfile(
        capabilities=frozenset(
            AttackerCapability(value) for value in document["capabilities"]
        ),
        known_info=info_kinds_from_list(document["known_info"]),
    )


# ----------------------------------------------------------------------
# Service profiles and mask specs
# ----------------------------------------------------------------------


class AuthPathTable:
    """Interning encoder/decoder for :class:`AuthPath` references.

    A snapshot mentions the same path objects many times (a profile's
    ``auth_paths``, then every stage-1 flow that groups them).  The table
    serializes each distinct path once and hands out integer references,
    so documents stay small and decoding constructs each path exactly
    once (flows then share the decoded objects, like the live pipeline
    shares the profile's).
    """

    def __init__(self) -> None:
        self._refs: Dict[AuthPath, int] = {}
        #: Path documents in reference order (the wire-side table).
        self.documents: List[Dict[str, Any]] = []

    def ref(self, path: AuthPath) -> int:
        """Intern one path; returns its table index."""
        index = self._refs.get(path)
        if index is None:
            index = len(self.documents)
            self._refs[path] = index
            self.documents.append(auth_path_to_dict(path))
        return index

    @staticmethod
    def decode(documents: Sequence[Mapping[str, Any]]) -> List[AuthPath]:
        """Materialize the table: one :class:`AuthPath` per entry."""
        return [auth_path_from_dict(document) for document in documents]


def mask_spec_to_dict(spec: MaskSpec) -> Dict[str, Any]:
    """One masking rule as a plain document."""
    return {
        "reveal_prefix": spec.reveal_prefix,
        "reveal_suffix": spec.reveal_suffix,
        "reveal_middle": (
            list(spec.reveal_middle) if spec.reveal_middle is not None else None
        ),
    }


def mask_spec_from_dict(document: Mapping[str, Any]) -> MaskSpec:
    """Inverse of :func:`mask_spec_to_dict`."""
    middle = document.get("reveal_middle")
    return MaskSpec(
        reveal_prefix=document.get("reveal_prefix", 0),
        reveal_suffix=document.get("reveal_suffix", 0),
        reveal_middle=tuple(middle) if middle is not None else None,
    )


def service_profile_to_dict(
    profile: ServiceProfile, paths: Optional[AuthPathTable] = None
) -> Dict[str, Any]:
    """One service profile as a plain document.

    With ``paths`` the auth paths serialize as integer references into
    the shared table (the snapshot form); without it they inline as full
    path documents (the wire-mutation form).
    """
    return {
        "name": profile.name,
        "domain": profile.domain,
        "auth_paths": [
            paths.ref(path) if paths is not None else auth_path_to_dict(path)
            for path in profile.auth_paths
        ],
        "exposed_info": {
            platform.value: info_kinds_to_list(kinds)
            for platform, kinds in profile.exposed_info.items()
        },
        "mask_specs": [
            [platform.value, kind.value, mask_spec_to_dict(spec)]
            for (platform, kind), spec in profile.mask_specs.items()
        ],
    }


def service_profile_from_dict(
    document: Mapping[str, Any],
    paths: Optional[Sequence[AuthPath]] = None,
) -> ServiceProfile:
    """Inverse of :func:`service_profile_to_dict` (``paths`` is the
    decoded table when the document used integer references)."""

    def decode_path(entry: Union[int, Mapping[str, Any]]) -> AuthPath:
        if isinstance(entry, int):
            if paths is None:
                raise ValueError(
                    "profile document references a path table but none "
                    "was provided"
                )
            return paths[entry]
        return auth_path_from_dict(entry)

    return ServiceProfile(
        name=document["name"],
        domain=document["domain"],
        auth_paths=tuple(
            decode_path(entry) for entry in document["auth_paths"]
        ),
        exposed_info={
            Platform(platform): info_kinds_from_list(kinds)
            for platform, kinds in document["exposed_info"].items()
        },
        mask_specs={
            (Platform(platform), PersonalInfoKind(kind)): mask_spec_from_dict(
                spec
            )
            for platform, kind, spec in document.get("mask_specs", ())
        },
    )


# ----------------------------------------------------------------------
# Stage-1/2 reports (the snapshot's warm-start payload)
# ----------------------------------------------------------------------


def _flow_node_to_list(node) -> List[Any]:
    """Compact ``[requirement, factor, children]`` form of one flow node."""
    return [
        node.requirement,
        node.factor.value if node.factor is not None else None,
        [_flow_node_to_list(child) for child in node.children],
    ]


def _flow_node_from_list(entry: Sequence[Any]):
    from repro.core.authproc import AuthFlowNode

    requirement, factor, children = entry
    return AuthFlowNode(
        requirement=requirement,
        factor=CredentialFactor(factor) if factor is not None else None,
        children=tuple(_flow_node_from_list(child) for child in children),
    )


def auth_report_to_dict(report, paths: AuthPathTable) -> Dict[str, Any]:
    """Stage-1 report as a document over the shared path table."""
    return {
        "service": report.service,
        "domain": report.domain,
        "distinct_path_signatures": report.distinct_path_signatures,
        "flows": [
            [
                flow.platform.value,
                flow.purpose.value,
                [paths.ref(path) for path in flow.paths],
                _flow_node_to_list(flow.root),
            ]
            for flow in report.flows
        ],
    }


def auth_report_from_dict(
    document: Mapping[str, Any], paths: Sequence[AuthPath]
):
    """Inverse of :func:`auth_report_to_dict`."""
    from repro.core.authproc import AuthFlow, ServiceAuthReport

    service = document["service"]
    return ServiceAuthReport(
        service=service,
        domain=document["domain"],
        distinct_path_signatures=document["distinct_path_signatures"],
        flows=tuple(
            AuthFlow(
                service=service,
                platform=Platform(platform),
                purpose=AuthPurpose(purpose),
                paths=tuple(paths[ref] for ref in refs),
                root=_flow_node_from_list(root),
            )
            for platform, purpose, refs, root in document["flows"]
        ),
    )


def collection_report_to_dict(report) -> Dict[str, Any]:
    """Stage-2 report as a document (``revealed`` sorts positions so equal
    reports produce equal documents)."""
    return {
        "service": report.service,
        "domain": report.domain,
        "items": [
            [
                item.kind.value,
                item.platform.value,
                (
                    sorted(item.revealed_positions)
                    if item.revealed_positions is not None
                    else None
                ),
            ]
            for item in report.items
        ],
    }


def collection_report_from_dict(document: Mapping[str, Any]):
    """Inverse of :func:`collection_report_to_dict`."""
    from repro.core.collection import CollectionReport, ExposedItem

    return CollectionReport(
        service=document["service"],
        domain=document["domain"],
        items=tuple(
            ExposedItem(
                kind=PersonalInfoKind(kind),
                platform=Platform(platform),
                revealed_positions=(
                    frozenset(revealed) if revealed is not None else None
                ),
            )
            for kind, platform, revealed in document["items"]
        ),
    )


# ----------------------------------------------------------------------
# Mutations (the HTTP tier's command wire format)
# ----------------------------------------------------------------------


def _standard_hardening_transforms() -> Dict[str, Any]:
    """Named no-argument defense transforms :func:`mutation_from_dict`
    resolves ``apply_hardening`` documents against (the same four the
    :class:`~repro.api.AnalysisService` defense registry preloads)."""
    from repro.defense.builtin_auth import BuiltinAuthUpgrade
    from repro.defense.hardening import EmailHardening, SymmetryRepair
    from repro.defense.masking_policy import UnifiedMaskingPolicy

    return {
        "unified_masking": UnifiedMaskingPolicy(),
        "email_hardening": EmailHardening(),
        "symmetry_repair": SymmetryRepair(),
        "builtin_auth": BuiltinAuthUpgrade(),
    }


def mutation_to_dict(mutation) -> Dict[str, Any]:
    """One typed mutation as a plain document.

    :class:`~repro.dynamic.events.ApplyHardening` serializes by *defense
    name*: only the four standard transforms (matched by class) have a
    wire form; a custom transform object raises ``ValueError`` -- ship
    those as explicit per-profile mutations instead.
    """
    from repro.dynamic import events

    if isinstance(mutation, events.AddService):
        return {
            "kind": "add_service",
            "profile": service_profile_to_dict(mutation.profile),
        }
    if isinstance(mutation, events.RemoveService):
        return {"kind": "remove_service", "service": mutation.service}
    if isinstance(mutation, events.AddAuthPath):
        return {
            "kind": "add_auth_path",
            "service": mutation.service,
            "path": auth_path_to_dict(mutation.path),
        }
    if isinstance(mutation, events.RemoveAuthPath):
        return {
            "kind": "remove_auth_path",
            "service": mutation.service,
            "path": auth_path_to_dict(mutation.path),
        }
    if isinstance(mutation, events.ChangeMasking):
        return {
            "kind": "change_masking",
            "service": mutation.service,
            "platform": mutation.platform.value,
            "info_kind": mutation.kind.value,
            "spec": (
                mask_spec_to_dict(mutation.spec)
                if mutation.spec is not None
                else None
            ),
        }
    if isinstance(mutation, events.ApplyHardening):
        for name, transform in _standard_hardening_transforms().items():
            if type(transform) is type(mutation.transform):
                return {
                    "kind": "apply_hardening",
                    "defense": name,
                    "services": (
                        list(mutation.services)
                        if mutation.services is not None
                        else None
                    ),
                }
        raise ValueError(
            f"no wire form for custom hardening transform "
            f"{type(mutation.transform).__name__!r}"
        )
    raise ValueError(f"no wire form for mutation {mutation!r}")


def mutation_from_dict(
    document: Mapping[str, Any],
    transforms: Optional[Mapping[str, Any]] = None,
):
    """Inverse of :func:`mutation_to_dict`.

    ``transforms`` overrides the named-defense registry
    ``apply_hardening`` documents resolve against (defaults to the four
    standard transforms).  Unknown kinds and unknown defense names raise
    ``ValueError`` -- the HTTP tier maps that to a 400, never a dead
    letter.
    """
    from repro.dynamic import events

    kind = document.get("kind")
    if kind == "add_service":
        return events.AddService(
            profile=service_profile_from_dict(document["profile"])
        )
    if kind == "remove_service":
        return events.RemoveService(service=document["service"])
    if kind == "add_auth_path":
        return events.AddAuthPath(
            service=document["service"],
            path=auth_path_from_dict(document["path"]),
        )
    if kind == "remove_auth_path":
        return events.RemoveAuthPath(
            service=document["service"],
            path=auth_path_from_dict(document["path"]),
        )
    if kind == "change_masking":
        spec = document.get("spec")
        return events.ChangeMasking(
            service=document["service"],
            platform=Platform(document["platform"]),
            kind=PersonalInfoKind(document["info_kind"]),
            spec=mask_spec_from_dict(spec) if spec is not None else None,
        )
    if kind == "apply_hardening":
        registry = (
            dict(transforms)
            if transforms is not None
            else _standard_hardening_transforms()
        )
        name = document["defense"]
        if name not in registry:
            raise ValueError(f"unknown defense {name!r}")
        services = document.get("services")
        return events.ApplyHardening(
            transform=registry[name],
            services=tuple(services) if services is not None else None,
        )
    raise ValueError(f"unknown mutation kind {kind!r}")
